"""Shim so `pip install -e .` works without the `wheel` package.

The environment has setuptools but no `wheel`, so the PEP 660 editable
path is unavailable; this file lets pip fall back to the legacy
`setup.py develop` route.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
