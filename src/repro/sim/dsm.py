"""Shared memory on message passing — the Section 3.2 reading costs.

"Although the model is stated in terms of primitive message events, we
do not assume that algorithms must be described in terms of explicit
message passing operations ... Shared memory models are implemented on
distributed memory machines through an implicit exchange of messages.
Under LogP, reading a remote location requires time 2L + 4o.  Prefetch
operations, which initiate a read and continue, can be issued every g
cycles and cost 2o units of processing time."

This module provides that layer.  A global array is block-distributed;
application programs yield DSM operations —

* ``Read(addr)`` — blocking remote (or local) read;
* ``Write(addr, value)`` — acknowledged remote write;
* ``Prefetch(addr)`` — issue the request and continue; returns a handle;
* ``AwaitPrefetch(handle)`` — block until the prefetched value arrived;

— freely mixed with ``Compute`` and the other simulator actions.  Each
rank's program is wrapped in a *driver* that multiplexes the rank's own
replies with service of other ranks' requests over a single receive
loop: whenever the application is waiting (or finished), the processor
answers incoming requests in arrival order — the active-message server
discipline.  Termination uses a done-token protocol so every processor
keeps serving until all applications have completed.

The costs fall out of the machine semantics, not from bespoke charging:
a remote read on an idle owner takes exactly ``2L + 4o``; a prefetch
consumes ``2o`` of requester processor time (one send now, one receive
later); contention at a hot owner emerges as queueing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator, Sequence

import numpy as np

from ..core.params import LogPParams
from .machine import LogPMachine, MachineResult
from .program import Barrier, Compute, Now, Poll, Recv, Send, Sleep

__all__ = [
    "Read",
    "Write",
    "Prefetch",
    "AwaitPrefetch",
    "Fence",
    "DSMResult",
    "run_dsm",
    "block_owner",
]


@dataclass(frozen=True, slots=True)
class Read:
    """Blocking read of global address ``addr``; yields the value."""

    addr: int


@dataclass(frozen=True, slots=True)
class Write:
    """Acknowledged write of global address ``addr``; yields when the
    owner has applied it."""

    addr: int
    value: Any


@dataclass(frozen=True, slots=True)
class Prefetch:
    """Issue a read and continue; yields a handle for AwaitPrefetch."""

    addr: int


@dataclass(frozen=True, slots=True)
class AwaitPrefetch:
    """Block until the prefetch identified by ``handle`` has landed;
    yields the value."""

    handle: int


@dataclass(frozen=True, slots=True)
class Fence:
    """A DSM-aware global barrier.

    Unlike the machine's hardware ``Barrier`` — which would park the
    driver and deadlock against another rank's pending read — a Fence
    keeps every waiting processor *serving* remote requests until all P
    applications have reached the same fence.  This is the
    synchronization primitive PRAM-on-LogP emulation uses between the
    read and write phases of each synchronous step.

    ``name`` must be globally unique per fence (e.g. a step counter).
    """

    name: Any


@dataclass(slots=True)
class DSMResult:
    """Outcome of a DSM run."""

    machine: MachineResult
    memory: np.ndarray  # final global array contents
    values: list[Any]  # application return values

    @property
    def makespan(self) -> float:
        return self.machine.makespan


def block_owner(addr: int, size: int, P: int) -> int:
    """Owner of a global address under block distribution."""
    if not 0 <= addr < size:
        raise IndexError(f"address {addr} outside global array of {size}")
    chunk = -(-size // P)
    return min(addr // chunk, P - 1)


_REQ = "dsm-req"
_REP = "dsm-rep"
_DONE = "dsm-done"
_STOP = "dsm-stop"
_FUP = "dsm-fence-up"
_FDN = "dsm-fence-down"


def run_dsm(
    params: LogPParams,
    app_factory: Callable[[int, int], Generator],
    initial: Sequence[Any],
    cache_reads: bool = False,
    **machine_kwargs: Any,
) -> DSMResult:
    """Run one DSM application program per processor.

    ``initial`` seeds the block-distributed global array.  Application
    programs may yield DSM operations plus ``Compute``/``Sleep``/``Now``/
    ``Poll`` (raw ``Send``/``Recv`` are rejected — the driver owns the
    message namespace).

    ``cache_reads=True`` models the migration note of Section 3.2
    ("some recent machines migrate locations to local caches when they
    are referenced; this would be addressed in algorithm analysis by
    adjusting which references are remote"): a remote read caches the
    value locally and repeat reads become local.  No coherence protocol
    is modeled — a processor's own write invalidates its own cached
    copy, but remote caches are not invalidated, so enable this only
    for data that is read-only or single-writer during the cached
    phase, exactly as the paper's cost-accounting framing implies.
    """
    size = len(initial)

    def driver_factory(rank: int, P: int):
        chunk = -(-size // P)
        lo = rank * chunk
        shard = list(initial[lo : min(size, lo + chunk)])
        app = app_factory(rank, P)

        def owner_of(addr: int) -> int:
            return block_owner(addr, size, P)

        def run():
            handles = itertools.count()
            arrived: dict[int, Any] = {}  # handle -> value
            read_cache: dict[int, Any] = {}
            app_value = None
            app_done = False
            to_app: Any = None
            state = {
                "done_seen": 0,  # rank 0 only
                "stop": False,
            }
            fence_counts: dict[Any, int] = {}  # rank 0 only
            fence_released: set = set()

            def serve(msg) -> list:
                """Handle one incoming driver message; returns sends."""
                kind = msg.payload[0]
                if kind == "read":
                    _, addr, handle = msg.payload
                    return [
                        Send(
                            msg.src,
                            payload=("value", handle, shard[addr - lo]),
                            tag=_REP,
                        )
                    ]
                if kind == "write":
                    _, addr, value, handle = msg.payload
                    shard[addr - lo] = value
                    return [
                        Send(msg.src, payload=("ack", handle, None), tag=_REP)
                    ]
                raise AssertionError(f"unknown request {msg.payload!r}")

            def pump(done) -> Any:
                """Serve all driver traffic until ``done()`` is true."""
                while not done():
                    msg = yield Recv()
                    if msg.tag == _REQ:
                        for action in serve(msg):
                            yield action
                    elif msg.tag == _REP:
                        _, h, value = msg.payload
                        arrived[h] = value
                    elif msg.tag == _DONE:
                        state["done_seen"] += 1
                    elif msg.tag == _FUP:
                        fid = msg.payload
                        fence_counts[fid] = fence_counts.get(fid, 0) + 1
                    elif msg.tag == _FDN:
                        fence_released.add(msg.payload)
                    elif msg.tag == _STOP:
                        state["stop"] = True
                    else:  # pragma: no cover - defensive
                        raise AssertionError(f"stray message {msg.tag!r}")

            def wait_for(handle: int):
                """Serve the loop until ``handle``'s reply arrives."""
                yield from pump(lambda: handle in arrived)
                return arrived.pop(handle)

            def fence(fid) -> Any:
                """Global DSM barrier that keeps serving while waiting."""
                if rank == 0:
                    fence_counts[fid] = fence_counts.get(fid, 0) + 1
                    yield from pump(lambda: fence_counts.get(fid, 0) >= P)
                    del fence_counts[fid]
                    for other in range(1, P):
                        yield Send(other, payload=fid, tag=_FDN)
                else:
                    yield Send(0, payload=fid, tag=_FUP)
                    yield from pump(lambda: fid in fence_released)
                    fence_released.discard(fid)

            def issue(addr: int, payload_kind: str, value: Any = None):
                handle = next(handles)
                owner = owner_of(addr)
                if owner == rank:
                    # Local: serviced by the memory system without
                    # messages; charge one local access cycle.
                    if payload_kind == "write":
                        shard[addr - lo] = value
                    result = shard[addr - lo]
                    arrived[handle] = (
                        None if payload_kind == "write" else result
                    )
                    return handle, True
                if payload_kind == "read":
                    payload = ("read", addr, handle)
                else:
                    payload = ("write", addr, value, handle)
                return handle, False, Send(owner, payload=payload, tag=_REQ)

            # ---- main loop: advance the app, serving in the gaps ----
            while not app_done:
                try:
                    op = app.send(to_app)
                except StopIteration as fin:
                    app_value = fin.value
                    app_done = True
                    break
                to_app = None
                if isinstance(op, Read):
                    if cache_reads and op.addr in read_cache:
                        yield Compute(1, label="cached-read")
                        to_app = read_cache[op.addr]
                        continue
                    out = issue(op.addr, "read")
                    if out[1]:
                        yield Compute(1, label="local-read")
                        to_app = arrived.pop(out[0])
                    else:
                        yield out[2]
                        to_app = yield from wait_for(out[0])
                        if cache_reads:
                            read_cache[op.addr] = to_app
                elif isinstance(op, Write):
                    read_cache.pop(op.addr, None)
                    out = issue(op.addr, "write", op.value)
                    if out[1]:
                        yield Compute(1, label="local-write")
                        arrived.pop(out[0])
                        to_app = None
                    else:
                        yield out[2]
                        yield from wait_for(out[0])
                        to_app = None
                elif isinstance(op, Prefetch):
                    out = issue(op.addr, "read")
                    if not out[1]:
                        yield out[2]
                    to_app = out[0]
                elif isinstance(op, AwaitPrefetch):
                    if op.handle in arrived:
                        to_app = arrived.pop(op.handle)
                    else:
                        to_app = yield from wait_for(op.handle)
                elif isinstance(op, Fence):
                    yield from fence(op.name)
                    to_app = None
                elif isinstance(op, Barrier):
                    raise RuntimeError(
                        "DSM applications must use Fence, not the "
                        "machine Barrier: a parked driver cannot serve "
                        "remote requests and would deadlock"
                    )
                elif isinstance(op, (Compute, Sleep, Now, Poll)):
                    to_app = yield op
                elif isinstance(op, (Send, Recv)):
                    raise RuntimeError(
                        "DSM applications must not use raw Send/Recv; "
                        "the driver owns the message namespace"
                    )
                else:
                    raise RuntimeError(f"unknown DSM app action {op!r}")

            # ---- termination: keep serving until everyone is done ----
            if rank == 0:
                state["done_seen"] += 1  # self
                yield from pump(lambda: state["done_seen"] >= P)
                for other in range(1, P):
                    yield Send(other, payload=("stop",), tag=_STOP)
            else:
                yield Send(0, payload=("done",), tag=_DONE)
                yield from pump(lambda: state["stop"])
            return (app_value, shard)

        return run()

    machine = LogPMachine(params, **machine_kwargs)
    res = machine.run(driver_factory)
    memory = np.empty(size, dtype=object)
    values = []
    chunk = -(-size // params.P)
    for rank in range(params.P):
        app_value, shard = res.value(rank)
        values.append(app_value)
        lo = rank * chunk
        for i, v in enumerate(shard):
            memory[lo + i] = v
    return DSMResult(machine=res, memory=memory, values=values)
