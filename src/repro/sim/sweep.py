"""Deterministic parallel sweep runner.

Seed sweeps — the fuzz harness, saturation curves, parameter grids — are
embarrassingly parallel: every item is an independent, fully seeded
simulation.  :func:`sweep_map` fans such a sweep out over a process pool
while keeping the *result* exactly what the serial loop would produce:

* **Submission-order merge.**  Results are returned in the order the
  items were submitted, never in completion order, so a parallel sweep
  is a drop-in replacement for ``[fn(x) for x in items]``.
* **No shared randomness.**  The worker function must derive all of its
  randomness from the item itself (every sweep in this repository seeds
  a fresh generator per item, e.g. ``make_case(seed)``); the runner adds
  no nondeterminism of its own, so the merged output is bit-identical to
  the serial run for any worker count.  This is test-enforced by
  ``tests/test_sweep.py``.
* **Deterministic chunking.**  The chunk size is a pure function of the
  item count and worker count (or caller-supplied) — never derived from
  timing — so scheduling jitter cannot change what any worker computes.
* **Amortized dispatch.**  ``min_chunk`` sets the smallest per-worker
  share worth shipping to a process: the worker count is lowered until
  every worker gets at least that many items, degrading to the serial
  loop for sweeps too small to amortize pool startup and per-task IPC
  (~10ms of pure overhead on a small fuzz sweep).  The result is
  unchanged — only where the work runs.

Parameter-grid sweeps have a second fast path: :func:`grid_map`
evaluates one program family across a whole grid of ``LogPParams``
through the compiled schedule evaluator (:mod:`repro.sim.compiled`) —
compile once per distinct ``P``, replay vectorized — with explicit
backend selection (``machine`` / ``compiled`` / ``auto``) that refuses
loudly, rather than silently slowing down, when the timing
configuration is nondeterministic.

Worker-count resolution (:func:`resolve_workers`): an explicit argument
wins; otherwise the ``REPRO_SWEEP_WORKERS`` environment variable;
otherwise ``os.cpu_count()``.  A resolved count of 1 (or a single item)
runs the plain serial loop in-process — no pool, no pickling.

``fn`` and the items must be picklable (a module-level function or a
:func:`functools.partial` over one).  If ``fn`` itself cannot be
pickled, the runner falls back to the serial loop with a warning rather
than failing mid-pool — the result is identical either way, only slower.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import warnings
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["ENV_WORKERS", "grid_map", "resolve_workers", "sweep_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment variable consulted when no explicit worker count is given.
ENV_WORKERS = "REPRO_SWEEP_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: argument > ``REPRO_SWEEP_WORKERS`` > auto.

    Returns at least 1.  ``workers=None`` consults the environment, then
    falls back to ``os.cpu_count()``.
    """
    if workers is None:
        env = os.environ.get(ENV_WORKERS, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{ENV_WORKERS} must be an integer, got {env!r}"
                ) from None
        else:
            workers = os.cpu_count() or 1
    return max(1, int(workers))


def _serial(fn: Callable[[_T], _R], items: list[_T]) -> list[_R]:
    return [fn(item) for item in items]


def sweep_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    workers: int | None = None,
    chunksize: int | None = None,
    min_chunk: int = 1,
) -> list[_R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Semantically identical to ``[fn(x) for x in items]`` for any worker
    count (see the module docstring for the determinism contract).  A
    worker raising propagates the exception to the caller, as the serial
    loop would.

    Args:
        fn: picklable single-argument callable.
        items: the sweep; materialized into a list up front.
        workers: process count; ``None`` resolves via
            :func:`resolve_workers`.  1 means serial in-process.
        chunksize: items handed to a worker per dispatch.  Default
            splits the sweep into ~4 chunks per worker, which amortizes
            IPC without letting one straggler chunk dominate.
        min_chunk: smallest per-worker share worth a process dispatch.
            The worker count is reduced to ``len(items) // min_chunk``
            when the sweep is too small to give every worker that many
            items; a single remaining worker means the serial loop.
            Callers with ~millisecond items (the fuzz sweep) set this
            high enough that pool startup cannot exceed the work shipped.
    """
    if min_chunk < 1:
        raise ValueError(f"min_chunk must be >= 1, got {min_chunk}")
    items = list(items)
    n = min(resolve_workers(workers), len(items))
    if n <= 1:
        return _serial(fn, items)
    try:
        pickle.dumps(fn)
    except Exception:  # noqa: BLE001 - any unpicklable fn means no pool
        warnings.warn(
            f"sweep_map: {fn!r} is not picklable; running serially "
            "(use a module-level function or functools.partial to "
            "parallelize)",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial(fn, items)
    if min_chunk > 1:
        n = min(n, len(items) // min_chunk)
        if n <= 1:
            return _serial(fn, items)
    if chunksize is None:
        chunksize = max(1, -(-len(items) // (4 * n)))
    # Prefer fork where available (cheap, inherits the imported repo);
    # elsewhere the default start method works, just with slower spawns.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ctx.Pool(processes=n) as pool:
        # Pool.map blocks until every chunk finishes and returns results
        # in submission order regardless of completion order.
        return pool.map(fn, items, chunksize=chunksize)


def grid_map(
    programs,
    grid: Sequence,
    *,
    backend: str = "auto",
    latency=None,
    fabric=None,
    enforce_capacity: bool = True,
    capacity: int | None = None,
    hw_barrier_cost: float = 0.0,
    compute_jitter: Callable[[int, float], float] | None = None,
    fault_plan=None,
    heartbeat=None,
    max_events: int = 50_000_000,
    use_numpy: bool | None = None,
) -> list[tuple[float, float]]:
    """Evaluate one program family at every parameter point of ``grid``.

    Returns ``(makespan, total_stall_time)`` per point, in submission
    order, exactly what :func:`repro.sim.machine.run_programs` reports
    there — the backend changes cost, never values.

    Args:
        programs: program factory ``(rank, P) -> generator``, the
            machine's usual form.  Called per distinct ``P`` (compiled)
            or per point (machine).
        grid: ``LogPParams`` points; ``P`` may vary — points are grouped
            by ``P`` and each group compiles once.
        backend: ``"machine"``, ``"compiled"``, or ``"auto"`` (see
            :func:`repro.sim.compiled.resolve_backend`): ``auto`` uses
            the compiled fast path, raises ``ValueError`` on a
            nondeterministic latency model or non-Latency fabric, and
            falls back to the machine only for programs that cannot be
            *lowered* (timing-dependent control flow).
        latency / fabric: timing configuration, shared across points
            (the machine path constructs one machine per point around
            them; the compiled path refuses anything nondeterministic).
        fault_plan / heartbeat: fault injection and failure detection
            (see :mod:`repro.sim.faults`), shared across points.  Both
            are machine-only: ``backend="auto"`` or ``"compiled"``
            refuses them loudly, exactly like a lossy fabric.
        use_numpy: forwarded to
            :func:`repro.sim.compiled.evaluate_grid`.
    """
    from .compiled import (
        CompileError,
        compile_programs,
        evaluate_grid,
        resolve_backend,
    )

    pts = list(grid)
    resolved = resolve_backend(
        backend,
        latency=latency,
        fabric=fabric,
        fault_plan=fault_plan,
        heartbeat=heartbeat,
    )
    out: list[tuple[float, float] | None] = [None] * len(pts)

    def _machine(indices: list[int]) -> None:
        from .machine import LogPMachine

        for i in indices:
            res = LogPMachine(
                pts[i],
                latency=latency,
                fabric=fabric,
                enforce_capacity=enforce_capacity,
                capacity=capacity,
                hw_barrier_cost=hw_barrier_cost,
                compute_jitter=compute_jitter,
                fault_plan=fault_plan,
                heartbeat=heartbeat,
                trace=False,
                max_events=max_events,
            ).run(programs)
            out[i] = (res.makespan, res.total_stall_time)

    if resolved == "machine":
        _machine(list(range(len(pts))))
        return [pair for pair in out if pair is not None]

    by_p: dict[int, list[int]] = {}
    for i, p in enumerate(pts):
        by_p.setdefault(p.P, []).append(i)
    for P, indices in by_p.items():
        try:
            prog = compile_programs(programs, P)
        except CompileError:
            if backend == "compiled":
                raise
            # auto: the *program* is timing-dependent at this P — a
            # property of the schedule, not a configuration error.
            _machine(indices)
            continue
        gr = evaluate_grid(
            prog,
            [pts[i] for i in indices],
            enforce_capacity=enforce_capacity,
            capacity=capacity,
            hw_barrier_cost=hw_barrier_cost,
            compute_jitter=compute_jitter,
            max_events=max_events,
            use_numpy=use_numpy,
        )
        for j, i in enumerate(indices):
            out[i] = (gr.makespans[j], gr.total_stall_times[j])
    return [pair for pair in out if pair is not None]
