"""Deterministic parallel sweep runner.

Seed sweeps — the fuzz harness, saturation curves, parameter grids — are
embarrassingly parallel: every item is an independent, fully seeded
simulation.  :func:`sweep_map` fans such a sweep out over a process pool
while keeping the *result* exactly what the serial loop would produce:

* **Submission-order merge.**  Results are returned in the order the
  items were submitted, never in completion order, so a parallel sweep
  is a drop-in replacement for ``[fn(x) for x in items]``.
* **No shared randomness.**  The worker function must derive all of its
  randomness from the item itself (every sweep in this repository seeds
  a fresh generator per item, e.g. ``make_case(seed)``); the runner adds
  no nondeterminism of its own, so the merged output is bit-identical to
  the serial run for any worker count.  This is test-enforced by
  ``tests/test_sweep.py``.
* **Deterministic chunking.**  The chunk size is a pure function of the
  item count and worker count (or caller-supplied) — never derived from
  timing — so scheduling jitter cannot change what any worker computes.

Worker-count resolution (:func:`resolve_workers`): an explicit argument
wins; otherwise the ``REPRO_SWEEP_WORKERS`` environment variable;
otherwise ``os.cpu_count()``.  A resolved count of 1 (or a single item)
runs the plain serial loop in-process — no pool, no pickling.

``fn`` and the items must be picklable (a module-level function or a
:func:`functools.partial` over one).  If ``fn`` itself cannot be
pickled, the runner falls back to the serial loop with a warning rather
than failing mid-pool — the result is identical either way, only slower.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import warnings
from typing import Callable, Iterable, TypeVar

__all__ = ["ENV_WORKERS", "resolve_workers", "sweep_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment variable consulted when no explicit worker count is given.
ENV_WORKERS = "REPRO_SWEEP_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: argument > ``REPRO_SWEEP_WORKERS`` > auto.

    Returns at least 1.  ``workers=None`` consults the environment, then
    falls back to ``os.cpu_count()``.
    """
    if workers is None:
        env = os.environ.get(ENV_WORKERS, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{ENV_WORKERS} must be an integer, got {env!r}"
                ) from None
        else:
            workers = os.cpu_count() or 1
    return max(1, int(workers))


def _serial(fn: Callable[[_T], _R], items: list[_T]) -> list[_R]:
    return [fn(item) for item in items]


def sweep_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    workers: int | None = None,
    chunksize: int | None = None,
) -> list[_R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Semantically identical to ``[fn(x) for x in items]`` for any worker
    count (see the module docstring for the determinism contract).  A
    worker raising propagates the exception to the caller, as the serial
    loop would.

    Args:
        fn: picklable single-argument callable.
        items: the sweep; materialized into a list up front.
        workers: process count; ``None`` resolves via
            :func:`resolve_workers`.  1 means serial in-process.
        chunksize: items handed to a worker per dispatch.  Default
            splits the sweep into ~4 chunks per worker, which amortizes
            IPC without letting one straggler chunk dominate.
    """
    items = list(items)
    n = min(resolve_workers(workers), len(items))
    if n <= 1:
        return _serial(fn, items)
    try:
        pickle.dumps(fn)
    except Exception:  # noqa: BLE001 - any unpicklable fn means no pool
        warnings.warn(
            f"sweep_map: {fn!r} is not picklable; running serially "
            "(use a module-level function or functools.partial to "
            "parallelize)",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial(fn, items)
    if chunksize is None:
        chunksize = max(1, -(-len(items) // (4 * n)))
    # Prefer fork where available (cheap, inherits the imported repo);
    # elsewhere the default start method works, just with slower spawns.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ctx.Pool(processes=n) as pool:
        # Pool.map blocks until every chunk finishes and returns results
        # in submission order regardless of completion order.
        return pool.map(fn, items, chunksize=chunksize)
