"""The general sweep scheduler: deterministic fan-out for CLI and server.

This module is the single scheduling layer every sweep in the repository
goes through — the fuzz harness (:mod:`repro.sim.fuzz`), the chaos
harness (:mod:`repro.sim.chaos`), saturation curves
(:mod:`repro.topology.saturation`), the benchmark entry point
(:mod:`repro.bench`), and the :mod:`repro.serve` job server.  It is
split into three layers:

1. **Planning** (:func:`plan_sweep`): a *pure* decision — given an item
   count, worker count, chunk size and ``min_chunk`` amortization
   threshold, produce a :class:`SweepPlan` saying where the work runs
   (serial in-process or across ``n`` pool workers, with which chunk
   size).  The plan is a deterministic function of its inputs — never of
   timing — so scheduling jitter cannot change what any worker computes.
2. **Execution** (:func:`sweep_map`, :func:`grid_map`): run a plan.
   :func:`sweep_map` fans an embarrassingly parallel sweep over a
   process pool; :func:`grid_map` evaluates one program family across a
   parameter grid with explicit backend resolution
   (``machine`` / ``compiled`` / ``auto``) through the compiled schedule
   evaluator (:mod:`repro.sim.compiled`) — compile once per distinct
   ``P``, replay vectorized.
3. **Pooling** (:class:`WorkerPool`): a persistent process pool with the
   same dispatch semantics as the ephemeral pool :func:`sweep_map`
   creates by default.  Long-lived callers (the :mod:`repro.serve`
   server) hold one open across requests so pool startup is paid once,
   not per sweep.

The determinism contract, shared by every layer:

* **Submission-order merge.**  Results are returned in the order the
  items were submitted, never in completion order, so a parallel sweep
  is a drop-in replacement for ``[fn(x) for x in items]``.
* **No shared randomness.**  The worker function must derive all of its
  randomness from the item itself (every sweep in this repository seeds
  a fresh generator per item, e.g. ``make_case(seed)``); the runner adds
  no nondeterminism of its own, so the merged output is bit-identical to
  the serial run for any worker count.  This is test-enforced by
  ``tests/test_sweep.py`` and, for the served paths, ``tests/test_serve.py``.
* **Deterministic chunking.**  The chunk size is a pure function of the
  item count and worker count (or caller-supplied) — never derived from
  timing.
* **Amortized dispatch.**  ``min_chunk`` sets the smallest per-worker
  share worth shipping to a process: the worker count is lowered until
  every worker gets at least that many items, degrading to the serial
  loop for sweeps too small to amortize pool startup and per-task IPC
  (~10ms of pure overhead on a small fuzz sweep).  The result is
  unchanged — only where the work runs.
* **Indexed failure.**  A worker exception is re-raised in the caller
  chained from a :class:`SweepItemError` naming the failing item's
  submission index — the lowest failing index, deterministically, even
  when several chunks fail — so error reports (the server's included)
  can say *which* grid point or seed died.
* **No silent shortfall.**  Every submitted index must come back: a
  pool that returns short (a dead worker's ``Pool.map`` can) raises
  :class:`SweepShortfallError` naming the missing indices instead of
  handing back a shortened, misaligned list.  Callers that need the
  sweep to *survive* worker death rather than merely diagnose it pass
  a :class:`repro.sim.supervise.SupervisedPool` via ``pool=`` — same
  contract, plus restart/retry/quarantine.

Worker-count resolution (:func:`resolve_workers`): an explicit argument
wins and is clamped to at least 1 (callers pass computed counts, e.g.
``len(items) // min_chunk``, that may legitimately reach 0); the
``REPRO_SWEEP_WORKERS`` environment variable is *validated* instead —
a value below 1 is a configuration error and raises ``ValueError``
loudly, consistent with the repository's refuse-loudly contract;
otherwise ``os.cpu_count()``.  A resolved count of 1 (or a single item)
runs the plain serial loop in-process — no pool, no pickling.

``fn`` and the items must be picklable (a module-level function or a
:func:`functools.partial` over one).  If ``fn`` itself cannot be
pickled, the runner falls back to the serial loop with a warning rather
than failing mid-pool — the result is identical either way, only slower.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import warnings
from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = [
    "ENV_WORKERS",
    "GridGroupReport",
    "GridMapReport",
    "SweepItemError",
    "SweepPlan",
    "SweepShortfallError",
    "WorkerPool",
    "grid_map",
    "plan_sweep",
    "resolve_workers",
    "sweep_map",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment variable consulted when no explicit worker count is given.
ENV_WORKERS = "REPRO_SWEEP_WORKERS"


class SweepItemError(RuntimeError):
    """Names the sweep item whose worker raised.

    Attached as the ``__cause__`` of the re-raised worker exception, so
    ``except ZeroDivisionError`` still works while the traceback (and
    the server's error report) shows which submission index died.
    """

    def __init__(self, index: int, total: int, original: BaseException):
        super().__init__(
            f"sweep item {index} of {total} raised "
            f"{type(original).__name__}: {original}"
        )
        self.index = index
        self.total = total


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: argument > ``REPRO_SWEEP_WORKERS`` > auto.

    An explicit argument is clamped to at least 1 — callers pass
    computed counts (``len(items) // min_chunk``) that may legitimately
    be 0, meaning "serial".  The environment variable is validated
    instead: a non-integer or a value below 1 raises ``ValueError``,
    because a misconfigured environment should refuse loudly, not
    silently serialize every sweep.  ``workers=None`` with the variable
    unset falls back to ``os.cpu_count()``.
    """
    if workers is None:
        env = os.environ.get(ENV_WORKERS, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{ENV_WORKERS} must be an integer, got {env!r}"
                ) from None
            if workers < 1:
                raise ValueError(
                    f"{ENV_WORKERS} must be >= 1, got {workers}"
                )
            return workers
        return os.cpu_count() or 1
    return max(1, int(workers))


@dataclass(frozen=True, slots=True)
class SweepPlan:
    """Where a sweep runs: the scheduler's pure placement decision.

    ``workers == 1`` means the serial in-process loop (no pool, no
    pickling); ``reason`` says why, for diagnostics and server stats.
    The plan never affects *results* — only placement and cost.
    """

    total: int
    workers: int
    chunksize: int
    reason: str

    @property
    def serial(self) -> bool:
        return self.workers <= 1


def plan_sweep(
    n_items: int,
    *,
    workers: int | None = None,
    chunksize: int | None = None,
    min_chunk: int = 1,
) -> SweepPlan:
    """Plan a sweep of ``n_items``: a pure function of its arguments.

    Applies the full placement policy — worker resolution
    (:func:`resolve_workers`), capping at the item count, ``min_chunk``
    amortization, and the default ~4-chunks-per-worker chunk size that
    amortizes IPC without letting one straggler chunk dominate.
    """
    if min_chunk < 1:
        raise ValueError(f"min_chunk must be >= 1, got {min_chunk}")
    n = min(resolve_workers(workers), n_items)
    if n <= 1:
        return SweepPlan(n_items, 1, n_items or 1, "single worker or item")
    if min_chunk > 1:
        n = min(n, n_items // min_chunk)
        if n <= 1:
            return SweepPlan(
                n_items, 1, n_items, f"under min_chunk={min_chunk}"
            )
    if chunksize is None:
        chunksize = max(1, -(-n_items // (4 * n)))
    return SweepPlan(n_items, n, chunksize, "pool")


def _serial(fn: Callable[[_T], _R], items: list[_T]) -> list[_R]:
    return [fn(item) for item in items]


def _guarded_call(fn, indexed):
    """Worker-side wrapper: carry the item index with every outcome.

    Returns ``(index, True, result)`` or ``(index, False, exc)``.
    Successes carry their index too, so the parent can *verify* the
    pool returned every submitted item (a dead worker's pool may
    return short) and pick the lowest failing submission index
    deterministically, rather than whichever chunk's failure crossed
    the pipe first.  An exception that cannot itself cross the process
    boundary is downgraded to a picklable ``RuntimeError`` carrying its
    repr.
    """
    i, item = indexed
    try:
        return i, True, fn(item)
    except Exception as exc:  # noqa: BLE001 - re-raised in the parent
        try:
            pickle.loads(pickle.dumps(exc))
        except Exception:  # noqa: BLE001 - unpicklable exception
            exc = RuntimeError(
                f"unpicklable worker exception {type(exc).__name__}: {exc!r}"
            )
        return i, False, exc


class SweepShortfallError(RuntimeError):
    """The pool returned fewer results than items were submitted.

    A healthy pool cannot do this; a dead or misbehaving one used to
    surface as a bare pipe error (or a silently misaligned result list)
    far from the cause.  Name the missing submission indices instead so
    the report says *which* items were lost.
    """

    def __init__(self, missing: list, total: int):
        shown = ", ".join(map(str, missing[:20]))
        if len(missing) > 20:
            shown += f", ... ({len(missing) - 20} more)"
        super().__init__(
            f"sweep pool returned {total - len(missing)} of {total} "
            f"result(s); missing submission indices: {shown} — the pool "
            "lost work (dead worker?) without raising"
        )
        self.missing = list(missing)
        self.total = total


def _merge_guarded(wrapped: list, n_items: int) -> list:
    """Unwrap ``_guarded_call`` results in submission order.

    Raises :class:`SweepShortfallError` if any submitted index is
    missing or duplicated, else re-raises the lowest-index failure.
    """
    slots: list = [None] * n_items
    seen = [False] * n_items
    first: tuple | None = None
    for i, ok, payload in wrapped:
        if not 0 <= i < n_items or seen[i]:
            raise SweepShortfallError(
                [j for j in range(n_items) if not seen[j]], n_items
            )
        seen[i] = True
        slots[i] = payload
        if not ok and (first is None or i < first[0]):
            first = (i, payload)
    if not all(seen):
        raise SweepShortfallError(
            [j for j in range(n_items) if not seen[j]], n_items
        )
    if first is not None:
        index, exc = first
        raise exc from SweepItemError(index, n_items, exc)
    return slots


class WorkerPool:
    """A persistent process pool with :func:`sweep_map`'s semantics.

    The ephemeral pool :func:`sweep_map` creates by default pays fork
    and import startup on every call; a long-lived caller (the
    :mod:`repro.serve` server, a bench loop) holds a ``WorkerPool`` open
    and passes it via ``sweep_map(..., pool=...)`` instead.  The pool is
    created lazily on first use, so constructing one costs nothing until
    a sweep actually needs processes.  Results are identical either way
    — the pool only changes where (and how often) processes start.
    """

    def __init__(self, workers: int | None = None):
        self.workers = resolve_workers(workers)
        self._pool = None

    def _ensure(self):
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._pool = ctx.Pool(processes=self.workers)
        return self._pool

    @property
    def started(self) -> bool:
        return self._pool is not None

    def map(self, fn, items: list, chunksize: int) -> list:
        # Pool.map blocks until every chunk finishes and returns results
        # in submission order regardless of completion order.
        return self._ensure().map(fn, items, chunksize=chunksize)

    def close(self, drain: bool = True) -> None:
        """Tear the pool down; ``drain`` picks outstanding work's fate.

        The teardown contract (mirroring the server's
        ``aclose(drain=...)``): ``drain=True`` (default) closes the
        inbox and *joins* outstanding chunks so already-dispatched work
        finishes cleanly — since :meth:`map` is synchronous there is
        normally nothing in flight, making the drain free; it matters
        for subclasses or futures-based callers.  ``drain=False``
        terminates the workers immediately (the old unconditional
        behaviour), abandoning anything in flight — the right call on
        an error path where results are already moot.
        """
        if self._pool is not None:
            if drain:
                self._pool.close()
            else:
                self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def sweep_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    workers: int | None = None,
    chunksize: int | None = None,
    min_chunk: int = 1,
    pool: WorkerPool | None = None,
) -> list[_R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Semantically identical to ``[fn(x) for x in items]`` for any worker
    count (see the module docstring for the determinism contract).  A
    worker raising propagates the exception to the caller as the serial
    loop would, chained from a :class:`SweepItemError` naming the
    failing submission index.

    Args:
        fn: picklable single-argument callable.
        items: the sweep; materialized into a list up front.
        workers: process count; ``None`` resolves via
            :func:`resolve_workers`.  1 means serial in-process.
        chunksize: items handed to a worker per dispatch.  Default
            splits the sweep into ~4 chunks per worker, which amortizes
            IPC without letting one straggler chunk dominate.
        min_chunk: smallest per-worker share worth a process dispatch.
            The worker count is reduced to ``len(items) // min_chunk``
            when the sweep is too small to give every worker that many
            items; a single remaining worker means the serial loop.
            Callers with ~millisecond items (the fuzz sweep) set this
            high enough that pool startup cannot exceed the work shipped.
        pool: an open :class:`WorkerPool` (or the crash-tolerant
            :class:`repro.sim.supervise.SupervisedPool` — anything with
            ``workers`` / ``map(fn, items, chunksize)`` / ``close``) to
            dispatch through instead of an ephemeral pool (its worker
            count caps the plan).  The pool is left open for the caller
            to reuse.
    """
    items = list(items)
    eff_workers = (
        pool.workers if pool is not None and workers is None else workers
    )
    plan = plan_sweep(
        len(items),
        workers=eff_workers,
        chunksize=chunksize,
        min_chunk=min_chunk,
    )
    if min(resolve_workers(eff_workers), len(items)) > 1:
        # Warn about unpicklable work whenever parallelism was even
        # plausible (before the min_chunk degrade), so callers learn
        # their fn cannot parallelize rather than silently never scaling.
        try:
            pickle.dumps(fn)
        except Exception:  # noqa: BLE001 - any unpicklable fn means no pool
            warnings.warn(
                f"sweep_map: {fn!r} is not picklable; running serially "
                "(use a module-level function or functools.partial to "
                "parallelize)",
                RuntimeWarning,
                stacklevel=2,
            )
            return _serial(fn, items)
    if plan.serial:
        return _serial(fn, items)
    guarded = partial(_guarded_call, fn)
    indexed = list(enumerate(items))
    if pool is not None:
        wrapped = pool.map(guarded, indexed, plan.chunksize)
    else:
        # Prefer fork where available (cheap, inherits the imported repo);
        # elsewhere the default start method works, just with slower spawns.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        with ctx.Pool(processes=plan.workers) as mp_pool:
            wrapped = mp_pool.map(guarded, indexed, chunksize=plan.chunksize)
    return _merge_guarded(wrapped, len(items))


def _require_filled(out: list) -> list:
    """The grid invariant: every submitted point produced a result.

    An unfilled slot would silently *shorten and misalign* the
    submission-order result — downstream consumers (the server's batch
    coalescer maps results back to requests by position) would read the
    wrong point's value.  Refuse loudly instead.
    """
    missing = [i for i, pair in enumerate(out) if pair is None]
    if missing:
        shown = ", ".join(map(str, missing[:20]))
        if len(missing) > 20:
            shown += f", ... ({len(missing) - 20} more)"
        raise RuntimeError(
            f"grid_map: {len(missing)} of {len(out)} grid point(s) were "
            f"never filled (indices {shown}); this is a backend dispatch "
            "bug — no backend claimed these points"
        )
    return out


@dataclass(frozen=True, slots=True)
class GridGroupReport:
    """How one ``P`` group of a :func:`grid_map` call was evaluated.

    ``path`` is ``"compiled"`` (one straight-line tape set),
    ``"compiled-folded"`` (rank equivalence classes, Θ(classes) tapes),
    ``"compiled-forked"`` (branch-split regions for a ``Now``-observing
    program), or ``"machine"`` (the group degraded to the event
    machine).  ``reason`` mirrors :class:`SweepPlan.reason`: for a
    machine degrade it carries the ``CompileError`` text verbatim, so
    callers (and the server's stats) can report *why* a sweep ran on
    the slow path, not merely that it did.

    The fold dimension: ``fold`` is ``"on"`` when the group evaluated
    by symmetry classes and ``"off"`` otherwise; ``classes`` is the
    equivalence-class count (0 when unfolded); ``fold_reason`` carries
    the ``FoldError`` text verbatim when folding was attempted under
    ``fold="auto"`` but the program's shape refused, or a note when
    individual points diverged back to the unfolded evaluator.
    """

    P: int
    n_points: int
    path: str
    reason: str = ""
    tapes: int = 0
    fallbacks: int = 0
    fold: str = "off"
    classes: int = 0
    fold_reason: str = ""


@dataclass(slots=True)
class GridMapReport:
    """Filled in by ``grid_map(..., report=...)``: the dispatch story.

    ``backend`` is the resolved backend; ``groups`` holds one
    :class:`GridGroupReport` per distinct ``P``, in first-appearance
    order.
    """

    backend: str = ""
    groups: list = None  # list[GridGroupReport]; None until filled

    def __post_init__(self):
        if self.groups is None:
            self.groups = []

    @property
    def degraded(self) -> list:
        """The groups that fell back to the event machine."""
        return [g for g in self.groups if g.path == "machine"]

    @property
    def folded(self) -> list:
        """The groups that evaluated by rank equivalence classes."""
        return [g for g in self.groups if g.fold == "on"]


def grid_map(
    programs,
    grid: Sequence,
    *,
    backend: str = "auto",
    fold: str = "auto",
    latency=None,
    fabric=None,
    enforce_capacity: bool = True,
    capacity: int | None = None,
    hw_barrier_cost: float = 0.0,
    compute_jitter: Callable[[int, float], float] | None = None,
    fault_plan=None,
    heartbeat=None,
    max_events: int = 50_000_000,
    max_tapes: int = 32,
    use_numpy: bool | None = None,
    report: GridMapReport | None = None,
) -> list[tuple[float, float]]:
    """Evaluate one program family at every parameter point of ``grid``.

    Returns ``(makespan, total_stall_time)`` per point, in submission
    order, exactly what :func:`repro.sim.machine.run_programs` reports
    there — the backend changes cost, never values.  Every submitted
    point is guaranteed a result slot: an internal dispatch gap raises
    ``RuntimeError`` naming the unfilled indices rather than returning
    a shortened, misaligned list.

    Args:
        programs: program factory ``(rank, P) -> generator``, the
            machine's usual form.  Called per distinct ``P`` (compiled)
            or per point (machine).
        grid: ``LogPParams`` points; ``P`` may vary — points are grouped
            by ``P`` and each group compiles once.
        backend: ``"machine"``, ``"compiled"``, or ``"auto"`` (see
            :func:`repro.sim.compiled.resolve_backend`): ``auto`` uses
            the compiled fast path, raises ``ValueError`` on an
            ineligible timing configuration (contended or lossy
            fabrics, faults), and falls back to the machine only for
            programs that cannot be *lowered* at all.
        fold: ``"auto"``, ``"on"``, or ``"off"`` (see
            :func:`repro.sim.compiled.resolve_fold`): whether the
            compiled path collapses ranks into equivalence classes and
            evaluates Θ(classes) per point instead of Θ(P).  ``auto``
            folds when the timing configuration is class-invariant,
            the program's shape folds, and folding actually compresses
            (fewer classes than ranks) — a shape refusal degrades to
            the unfolded compiled path with the ``FoldError`` reason
            in the report's ``fold_reason``.  ``on`` raises instead:
            ``ValueError`` for an ineligible timing configuration,
            ``FoldError`` for an unfoldable program.  Results are
            bit-identical either way; only the cost changes.
        latency / fabric: timing configuration, shared across points.
            The compiled path lowers any seeded
            :class:`~repro.sim.latency.LatencyModel` (bare or in a
            ``LatencyFabric``) and the deterministic per-hop
            :class:`~repro.sim.net.TopologyFabric`; everything that
            resolves delivery from runtime load stays machine-only.
        fault_plan / heartbeat: fault injection and failure detection
            (see :mod:`repro.sim.faults`), shared across points.  Both
            are machine-only: ``backend="auto"`` or ``"compiled"``
            refuses them loudly, exactly like a lossy fabric.
        max_tapes / use_numpy: forwarded to
            :func:`repro.sim.compiled.evaluate_grid`.
        report: a :class:`GridMapReport` to fill with the per-``P``
            dispatch decisions (which path ran, and the ``CompileError``
            reason when a group degraded to the machine).
    """
    from .compiled import (
        CompileError,
        FoldError,
        TimingDependentError,
        compile_programs,
        evaluate_folded_grid,
        evaluate_forked,
        evaluate_grid,
        fold_program,
        resolve_backend,
        resolve_fold,
    )

    pts = list(grid)
    resolved = resolve_backend(
        backend,
        latency=latency,
        fabric=fabric,
        fault_plan=fault_plan,
        heartbeat=heartbeat,
    )
    want_fold = resolve_fold(
        fold, latency=latency, fabric=fabric, compute_jitter=compute_jitter
    )
    timing_fold_reason = ""
    if fold != "off" and want_fold == "off":
        from .compiled import fold_ineligibility

        timing_fold_reason = (
            fold_ineligibility(
                latency=latency, fabric=fabric, compute_jitter=compute_jitter
            )
            or ""
        )
    if resolved == "machine" and fold == "on":
        raise ValueError(
            "fold='on' requires the compiled backend; "
            f"backend={backend!r} resolved to the event machine"
        )
    if report is not None:
        report.backend = resolved
        report.groups = []
    out: list[tuple[float, float] | None] = [None] * len(pts)

    def _machine(indices: list[int]) -> None:
        from .machine import LogPMachine

        for i in indices:
            res = LogPMachine(
                pts[i],
                latency=latency,
                fabric=fabric,
                enforce_capacity=enforce_capacity,
                capacity=capacity,
                hw_barrier_cost=hw_barrier_cost,
                compute_jitter=compute_jitter,
                fault_plan=fault_plan,
                heartbeat=heartbeat,
                trace=False,
                max_events=max_events,
            ).run(programs)
            out[i] = (res.makespan, res.total_stall_time)

    def _note(**kw) -> None:
        if report is not None:
            report.groups.append(GridGroupReport(**kw))

    if resolved == "machine":
        _machine(list(range(len(pts))))
        if report is not None and pts:
            _note(
                P=pts[0].P, n_points=len(pts), path="machine",
                reason="backend='machine' requested",
            )
        return _require_filled(out)

    by_p: dict[int, list[int]] = {}
    for i, p in enumerate(pts):
        by_p.setdefault(p.P, []).append(i)
    for P, indices in by_p.items():
        group_pts = [pts[i] for i in indices]
        common = dict(
            latency=latency,
            fabric=fabric,
            enforce_capacity=enforce_capacity,
            capacity=capacity,
            hw_barrier_cost=hw_barrier_cost,
            compute_jitter=compute_jitter,
            max_events=max_events,
            max_tapes=max_tapes,
            use_numpy=use_numpy,
        )
        try:
            prog = compile_programs(programs, P)
        except TimingDependentError:
            # The program observes Now: lower it per parameter point at
            # an assumed clock and branch-split across the grid.
            try:
                gr = evaluate_forked(programs, P, group_pts, **common)
            except CompileError as exc:
                if backend == "compiled":
                    raise
                _machine(indices)
                _note(
                    P=P, n_points=len(indices), path="machine",
                    reason=str(exc),
                )
                continue
            _note(
                P=P, n_points=len(indices), path="compiled-forked",
                tapes=gr.tapes, fallbacks=gr.fallbacks,
            )
        except CompileError as exc:
            if backend == "compiled":
                raise
            # auto: the *program* cannot be lowered at this P — a
            # property of the schedule, not a configuration error.
            _machine(indices)
            _note(
                P=P, n_points=len(indices), path="machine",
                reason=str(exc),
            )
            continue
        else:
            gr = None
            unfold_reason = timing_fold_reason
            if want_fold == "on":
                try:
                    folded_prog = fold_program(prog)
                except FoldError as exc:
                    if fold == "on":
                        raise
                    # auto: the program's shape does not fold — a
                    # property of the schedule; run unfolded and say why.
                    unfold_reason = str(exc)
                else:
                    if fold == "auto" and folded_prog.n_classes >= P:
                        unfold_reason = (
                            f"no compression: {folded_prog.n_classes} "
                            f"classes for P={P}"
                        )
                    else:
                        gr = evaluate_folded_grid(
                            folded_prog, group_pts, **common
                        )
                        fold_reason = ""
                        div = gr.divergent
                        if div:
                            # Per-point fold refusals (capacity stalls
                            # at a recording reference): fill from the
                            # unfolded evaluator — bit-identical values,
                            # just the Θ(P) cost for those points.
                            sub = evaluate_grid(
                                prog,
                                [group_pts[j] for j in div],
                                **common,
                            )
                            for k, j in enumerate(div):
                                gr.makespans[j] = sub.makespans[k]
                                gr.total_stall_times[j] = (
                                    sub.total_stall_times[k]
                                )
                            fold_reason = (
                                f"{len(div)} point(s) diverged to the "
                                "unfolded evaluator"
                            )
                            div.clear()
                        _note(
                            P=P, n_points=len(indices),
                            path="compiled-folded",
                            tapes=gr.tapes, fallbacks=gr.fallbacks,
                            fold="on", classes=gr.classes,
                            fold_reason=fold_reason,
                        )
            if gr is None:
                gr = evaluate_grid(prog, group_pts, **common)
                _note(
                    P=P, n_points=len(indices), path="compiled",
                    tapes=gr.tapes, fallbacks=gr.fallbacks,
                    fold_reason=unfold_reason,
                )
        # zip, not indexing: a backend returning too few results leaves
        # holes for _require_filled to name instead of crashing here.
        divergent = set(gr.divergent)
        for j, (i, mk, st) in enumerate(
            zip(indices, gr.makespans, gr.total_stall_times)
        ):
            if j not in divergent:
                out[i] = (mk, st)
    return _require_filled(out)
