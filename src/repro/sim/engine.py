"""A minimal deterministic discrete-event simulation kernel.

The LogP machine simulator (:mod:`repro.sim.machine`) is built on this
kernel.  It is intentionally tiny: a priority queue of ``(time, seq,
callback)`` entries with strictly deterministic ordering — ties in time
are broken by insertion sequence number, so two runs of the same program
produce bit-identical traces.

No external simulation framework is used; this is the event engine the
reproduction runs on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

__all__ = ["Engine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for simulator-level failures: deadlock, exhausted event
    budget, or events scheduled in the past."""


class Engine:
    """Deterministic event queue.

    Events are zero-argument callables executed in ``(time, seq)`` order.
    ``seq`` is a global insertion counter, which makes simultaneous
    events execute in the order they were scheduled.

    Args:
        max_events: safety valve — :meth:`run` raises
            :class:`SimulationError` after this many events, which turns
            accidental infinite zero-delay loops into a clean failure.
    """

    def __init__(self, max_events: int = 50_000_000) -> None:
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._max_events = max_events
        self._events_run = 0

    @property
    def now(self) -> float:
        """Current simulation time (cycles)."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of events executed so far."""
        return self._events_run

    def schedule(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute ``time``.

        Scheduling at the current time is allowed (the event runs after
        all previously scheduled events at that time); scheduling in the
        past is an error.
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"event scheduled at {time} before current time {self._now}"
            )
        heapq.heappush(self._queue, (max(time, self._now), next(self._seq), fn))

    def schedule_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` cycles from now (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule(self._now + delay, fn)

    def run(self, until: float | None = None) -> float:
        """Run events until the queue drains (or past ``until``).

        Returns the final simulation time.  If ``until`` is given, events
        at times ``> until`` are left queued and the clock stops at
        ``until`` (or the last executed event, whichever is later).
        """
        while self._queue:
            time, _, fn = self._queue[0]
            if until is not None and time > until:
                self._now = max(self._now, until)
                return self._now
            heapq.heappop(self._queue)
            self._now = time
            self._events_run += 1
            if self._events_run > self._max_events:
                raise SimulationError(
                    f"event budget of {self._max_events} exhausted at "
                    f"t={self._now}; likely a zero-delay loop or a "
                    "runaway program"
                )
            fn()
        return self._now

    def peek(self) -> float | None:
        """Time of the next queued event, or ``None`` if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def empty(self) -> bool:
        return not self._queue
