"""A minimal deterministic discrete-event simulation kernel.

The LogP machine simulator (:mod:`repro.sim.machine`) is built on this
kernel.  It is intentionally tiny — a time-ordered queue of ``(time,
seq, fn, args)`` event records with strictly deterministic ordering:
ties in time are broken by insertion sequence number, so two runs of
the same program produce bit-identical traces.

Performance notes (this kernel is the hottest loop in the repository;
see the "Performance" section of DESIGN.md):

* Event records carry their payload in the record (``fn(*args)``), so
  schedulers dispatch to *bound methods* instead of allocating a fresh
  closure per event.
* The queue is a sorted list consumed through a moving head index, not
  a binary heap.  Discrete-event workloads schedule with strong time
  locality (mostly near-future, mostly in nondecreasing order), which
  makes ``bisect.insort`` an append or a short C memmove in practice,
  and makes the pop side O(1) — versus O(log n) sift-downs per pop for
  a heap.  The worst case (large pending sets scheduled in strictly
  decreasing time order) degrades to O(n) per insert; no workload in
  this repository is within orders of magnitude of that regime.
* Cancellation is *lazy*: :meth:`cancel` marks the event id and the run
  loop discards the record when it surfaces, without paying a dispatch.
  This is what lets the machine deduplicate superseded processor
  activations at pop time.

No external simulation framework is used; this is the event engine the
reproduction runs on.
"""

from __future__ import annotations

from bisect import insort
from typing import Any, Callable

__all__ = ["Engine", "SimulationError"]

#: Scheduling earlier than ``now`` by at most this much is treated as
#: float noise and clamped to ``now``; anything earlier raises.
PAST_TOLERANCE = 1e-12

#: Processed-prefix length at which the run loop compacts the queue.
_COMPACT = 8192


class SimulationError(RuntimeError):
    """Raised for simulator-level failures: deadlock, exhausted event
    budget, or events scheduled in the past."""


class Engine:
    """Deterministic event queue.

    Events are records ``(time, seq, fn, args)`` executed as
    ``fn(*args)`` in ``(time, seq)`` order.  ``seq`` is a global
    insertion counter, which makes simultaneous events execute in the
    order they were scheduled.

    Args:
        max_events: safety valve — :meth:`run` raises
            :class:`SimulationError` after this many events, which turns
            accidental infinite zero-delay loops into a clean failure.
    """

    __slots__ = (
        "_queue",
        "_head",
        "_seq",
        "now",
        "_max_events",
        "_events_run",
        "_cancelled",
    )

    def __init__(self, max_events: int = 50_000_000) -> None:
        self._queue: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._head = 0  # index of the next unprocessed record
        self._seq = 0
        #: Current simulation time (cycles).  Public read-only by
        #: convention; only :meth:`run` writes it.
        self.now = 0.0
        self._max_events = max_events
        self._events_run = 0
        self._cancelled: set[int] = set()

    @property
    def events_run(self) -> int:
        """Number of events executed so far."""
        return self._events_run

    def schedule(
        self, time: float, fn: Callable[..., None], *args: Any
    ) -> int:
        """Schedule ``fn(*args)`` to run at absolute ``time``.

        Returns the event id (usable with :meth:`cancel`).

        Edge contract, pinned by ``tests/test_sim_engine.py``:

        * ``time >= now`` — runs at ``time``, after all previously
          scheduled events at that time;
        * ``now - 1e-12 <= time < now`` — *silently clamped* to ``now``:
          times this close behind the clock are accumulated float noise
          from chains of exact-grid arithmetic, not logic errors, and
          clamping keeps them deterministic (the event still runs after
          everything already queued at ``now``);
        * ``time < now - 1e-12`` — raises :class:`SimulationError`: an
          event genuinely in the past is always a scheduling bug.
        """
        now = self.now
        if time < now:
            if time < now - PAST_TOLERANCE:
                raise SimulationError(
                    f"event scheduled at {time} before current time {now}"
                )
            time = now
        seq = self._seq
        self._seq = seq + 1
        queue = self._queue
        entry = (time, seq, fn, args)
        # Nondecreasing-time scheduling (the overwhelmingly common case)
        # is a plain append; anything else is a C-speed binary insert.
        if not queue or queue[-1] < entry:
            queue.append(entry)
        else:
            insort(queue, entry)
        return seq

    def schedule_after(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> int:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now
        (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self.now + delay, fn, *args)

    def cancel(self, event_id: int) -> None:
        """Lazily cancel a scheduled event.

        The record stays queued; when it reaches the head of the queue
        it is discarded without being dispatched or counted against the
        event budget.  The caller must cancel an event at most once and
        only while it is still pending — the machine's activation
        bookkeeping (``_Proc.pending_activations``) guarantees this.
        """
        self._cancelled.add(event_id)

    def run(self, until: float | None = None) -> float:
        """Run events until the queue drains (or past ``until``).

        Returns the final simulation time.  If ``until`` is given,
        events at times ``> until`` are left queued and the clock stops
        at ``until`` (or the last executed event, whichever is later).
        """
        queue = self._queue
        cancelled = self._cancelled
        head = self._head
        events = self._events_run
        budget = self._max_events
        try:
            if until is None:
                # Drain-everything fast path: no explicit bound check —
                # running off the end of the queue is the termination
                # condition, caught as IndexError instead of paying a
                # len() per event.
                while True:
                    try:
                        time, seq, fn, args = queue[head]
                    except IndexError:
                        break
                    head += 1
                    if head == _COMPACT:
                        del queue[:head]
                        head = 0
                    if cancelled and seq in cancelled:
                        cancelled.remove(seq)
                        continue
                    self.now = time
                    events += 1
                    if events > budget:
                        raise SimulationError(
                            f"event budget of {budget} exhausted at "
                            f"t={self.now}; likely a zero-delay loop or a "
                            "runaway program"
                        )
                    fn(*args)
                return self.now
            while head < len(queue):
                if head >= _COMPACT:
                    del queue[:head]
                    head = 0
                entry = queue[head]
                head += 1
                if cancelled and entry[1] in cancelled:
                    cancelled.remove(entry[1])
                    continue
                time = entry[0]
                if time > until:
                    head -= 1
                    if until > self.now:
                        self.now = until
                    break
                self.now = time
                events += 1
                if events > budget:
                    raise SimulationError(
                        f"event budget of {budget} exhausted at "
                        f"t={self.now}; likely a zero-delay loop or a "
                        "runaway program"
                    )
                entry[2](*entry[3])
        finally:
            self._events_run = events
            if head:
                del queue[:head]
            self._head = 0
        return self.now

    def peek(self) -> float | None:
        """Time of the next queued (non-cancelled) event, or ``None`` if
        the queue is empty."""
        cancelled = self._cancelled
        for i in range(self._head, len(self._queue)):
            entry = self._queue[i]
            if entry[1] not in cancelled:
                return entry[0]
        return None

    def empty(self) -> bool:
        return self.peek() is None
