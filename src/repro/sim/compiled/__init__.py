"""Compiled evaluation of deterministic LogP schedules.

The event machine (:mod:`repro.sim.machine`) is the semantics; this
package is the fast path.  A program whose control flow does not depend
on simulated time is *lowered once* — generators driven at compile
time, actions flattened to opcode tuples, message matching resolved
(:mod:`.compiler`) — and the resulting :class:`CompiledProgram` can
then be evaluated:

* at one parameter point, bit-identical to the machine, with
  :func:`evaluate` (:mod:`.evaluator`);
* across a whole ``(L, o, g)`` grid with :func:`evaluate_grid`
  (:mod:`.grid`), which records one evaluation as a *tape* of float
  operations and branch constraints and replays it vectorized (numpy
  when available) over every grid point whose control flow matches,
  re-recording for the points where it does not.

Eligibility is deterministic timing: a fixed latency model (the
default ``FixedLatency``, bare or wrapped in a ``LatencyFabric``).
Random latency draws, topology contention and lossy fabrics change
event *order* at runtime, which a static schedule cannot represent —
:func:`backend_ineligibility` explains refusals, and the ``auto``
backend in :mod:`repro.sim.sweep` / :mod:`repro.bench` raises rather
than silently falling back.
"""

from .backend import BACKENDS, backend_ineligibility, resolve_backend
from .compiler import (
    CompiledProgram,
    CompileError,
    compile_programs,
)
from .evaluator import CompiledResult, evaluate
from .grid import GridResult, evaluate_grid

__all__ = [
    "BACKENDS",
    "CompileError",
    "CompiledProgram",
    "CompiledResult",
    "GridResult",
    "backend_ineligibility",
    "compile_programs",
    "evaluate",
    "evaluate_grid",
    "resolve_backend",
]
