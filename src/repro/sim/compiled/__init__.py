"""Compiled evaluation of deterministic LogP schedules.

The event machine (:mod:`repro.sim.machine`) is the semantics; this
package is the fast path.  A program whose control flow does not depend
on simulated time is *lowered once* — generators driven at compile
time, actions flattened to opcode tuples, message matching resolved
(:mod:`.compiler`) — and the resulting :class:`CompiledProgram` can
then be evaluated:

* at one parameter point, bit-identical to the machine, with
  :func:`evaluate` (:mod:`.evaluator`);
* across a whole ``(L, o, g)`` grid with :func:`evaluate_grid`
  (:mod:`.grid`), which records one evaluation as a *tape* of float
  operations and branch constraints and replays it vectorized (numpy
  when available) over every grid point whose control flow matches,
  re-recording for the points where it does not;
* across a ``(point, seed)`` product with :func:`evaluate_seed_grid`:
  seeded latency draws become per-column tape inputs, so a 500-seed
  sweep replays as one vectorized evaluation instead of 500 machine
  runs.

Eligibility is deterministic timing: any latency model honouring the
``reset()`` reproducibility contract (bare or in a ``LatencyFabric``)
and the deterministic per-hop :class:`~repro.sim.net.TopologyFabric`
all lower exactly.  Contention and lossy fabrics resolve delivery from
runtime load, which a static schedule cannot represent —
:func:`backend_ineligibility` explains refusals, and the ``auto``
backend in :mod:`repro.sim.sweep` / :mod:`repro.bench` raises rather
than silently falling back.  Programs observing ``Now`` lower per
parameter point via :func:`compile_at` (fixed-point clock assumption)
and per grid region via :func:`evaluate_forked` (branch-splitting on
the recorded ``OP_NOW`` constraints).

On top of the compiled path sits *symmetry folding* (:mod:`.fold`):
ranks whose opcode schedules are identical up to peer renaming are
collapsed into equivalence classes, one representative is evaluated
per class (:func:`evaluate_folded`, Θ(classes) instead of Θ(P)), and
grid tapes weight aggregate terms by class multiplicity
(:func:`evaluate_folded_grid`).  A binomial broadcast at ``P = 2**20``
folds to ~6 000 classes; the dyadic-exactness guard keeps every
aggregate bit-identical to the unfolded evaluator.  Folding is a
stricter tier than compilation — it needs class-invariant flight and a
restricted program shape — and refuses loudly with a
:class:`FoldError` naming the first offending rank or op
(:func:`fold_ineligibility` covers the timing side).
"""

from .backend import (
    BACKENDS,
    FOLD_MODES,
    backend_ineligibility,
    fold_ineligibility,
    resolve_backend,
    resolve_fold,
)
from .compiler import (
    CompiledProgram,
    CompileError,
    TimingDependentError,
    compile_programs,
    compile_representatives,
)
from .fold import (
    FoldError,
    FoldedProgram,
    FoldedResult,
    RankClass,
    evaluate_folded,
    evaluate_folded_grid,
    fold_program,
    fold_tree,
)
from .evaluator import (
    CompiledResult,
    TimingDivergence,
    compile_at,
    evaluate,
)
from .grid import (
    GridResult,
    SeedGridResult,
    evaluate_forked,
    evaluate_grid,
    evaluate_seed_grid,
)

__all__ = [
    "BACKENDS",
    "FOLD_MODES",
    "CompileError",
    "CompiledProgram",
    "CompiledResult",
    "FoldError",
    "FoldedProgram",
    "FoldedResult",
    "GridResult",
    "RankClass",
    "SeedGridResult",
    "TimingDependentError",
    "TimingDivergence",
    "backend_ineligibility",
    "compile_at",
    "compile_programs",
    "compile_representatives",
    "evaluate",
    "evaluate_folded",
    "evaluate_folded_grid",
    "evaluate_forked",
    "evaluate_grid",
    "evaluate_seed_grid",
    "fold_ineligibility",
    "fold_program",
    "fold_tree",
    "resolve_backend",
    "resolve_fold",
]
