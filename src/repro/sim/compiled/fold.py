"""Symmetry folding: evaluate P-rank schedules as C equivalence classes.

Section 5 collectives are overwhelmingly rank-symmetric: every leaf of
an optimal broadcast tree, every same-(depth, slot) node of a binomial
tree runs the *same* opcode schedule against different peer ids.  The
unfolded compiled path (:mod:`.grid`) still tapes one schedule per
rank, so cost grows Θ(P).  This module partitions ranks into
equivalence classes and evaluates one representative per class, with
class *multiplicities* weighting the aggregate counters — Θ(C) where
C is often ``O(log² P)`` (binomial: 386 classes at P = 2^10, 6196 at
P = 2^20).

Canonical form
--------------
A rank's canonical form is ``(skeleton, arrival-form)``:

* **skeleton** — its lowered ops with every ``OP_SEND`` destination
  dropped (words and tags kept).  Peer ids are thereby rewritten to
  symbolic roles: "my parent", "my k-th child".
* **arrival-form** — the symbolic time at which its (single) incoming
  message arrives, expressed as a *max of affine forms* over the basis
  ``(1, L, o, g, send_interval)``.  Forms are built by walking each
  class's schedule once (max-plus algebra: adds distribute over max)
  and pruned by pointwise dominance — ``b ≥ a`` for all valid
  parameter points iff the coefficient difference ``d = b - a`` has
  ``d_1 ≥ 0``, ``d_L ≥ 0`` and ``d_si + min(d_o, 0) + min(d_g, 0) ≥ 0``
  (using ``0 ≤ o ≤ si`` and ``0 ≤ g ≤ si``).  The dominance collapse
  is what makes same-depth binomial subtrees merge: a saturated send
  chain ``max(end_{m-1}, start_{m-1} + si)`` simplifies to
  ``start_{m-1} + si`` because ``si ≥ o``.

Two ranks with equal canonical forms execute structurally identical
float chains fed by value-equal inputs, so under the dyadic-exactness
guard (below) their realized times are bit-identical and one
representative speaks for the class.

Eligibility and the refusal taxonomy
------------------------------------
Folding *refuses* — a loud :class:`FoldError` naming the reason, never
a silent wrong answer — whenever per-rank state could couple ranks
within a class:

* ``OP_BARRIER`` / ``OP_POLL`` / ``OP_NOW`` ops (global coupling,
  timing-dependent drains, clock observation);
* multi-word sends (LogGP streaming occupies the port);
* multi-source fan-in (a rank receiving more than one message) or a
  receive that is not the rank's first op;
* cyclic message dependence (defensive: the compiler's deadlock check
  already rejects these);
* draw-latency models (per-message RNG draws break rank symmetry),
  topology fabrics (per-``(src, dst)`` routing), compute jitter
  (rank-indexed);
* non-dyadic parameters or compute/sleep literals — the bit-identity
  guard: all inputs must be multiples of ``1/64`` with magnitude
  ≤ 2^20, so every realized sum stays exactly representable and
  float addition is associative across the fold;
* a capacity stall (or an unresolvable arrival/inject tie) at the
  reference point — stalls serialize through the wait-graph queue,
  which is rank-ordered and therefore not class-invariant.

Capacity soundness under multiplicities
---------------------------------------
With one incoming message per rank the destination-side in-flight
window never exceeds 1 ≤ capacity, so only the *source-side* window
counts.  The count at inject m is ``#{j < m : arrive_j > inject_m}``
— in-flight slots release at the ``_EV_ARRIVAL`` pop, and an arrival
tying an inject at the same timestamp pops first iff ``flight >= o``:
they are scheduled ``start_m - end_j = flight - o`` apart, and in the
triple tie ``flight == o`` the arrival's seq is still lower because
the inject pop that schedules it precedes every event able to commit
send m at that timestamp (recv sits at op 0; later computes/sleeps
process at or after the prior send's end).  Arrivals are monotone
along a send chain, so the in-flight set is a suffix pinned by two
boundary constraints per inject (plus one deduplicated ``_C_CAP`` row
per distinct count).  Overcounting at a replayed point is harmless —
counts feed only the stall check, and ``_C_CAP`` guarantees slack —
so the in-flight boundary is ``<=``; the released boundary is ``<=``
under a one-time ``o <= flight`` tape guard when the reference
releases ties, strict otherwise, and points that fail either simply
diverge and re-record.  When no stall
occurs the counts never feed a value, so the folded chains — pure
max/add expressions — are point-universally exact.  ``words == 1``
tree traffic provably never stalls: count ≤ ⌈L/si⌉ − 1 < capacity
since ``si ≥ g``.

``tests/test_fold.py`` pins class counts per family, bit-identity
folded ≡ unfolded ≡ machine at small P, and the huge-P scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..latency import FixedLatency
from .compiler import (
    OP_BARRIER,
    OP_COMPUTE,
    OP_NOW,
    OP_POLL,
    OP_RECV,
    OP_SEND,
    OP_SLEEP,
    CompiledProgram,
)
from .grid import (
    _C_CAP,
    _C_LE,
    _C_LT,
    _I_ADD,
    _I_CONST,
    _I_MAX,
    _I_WADD,
    _T_L,
    _T_LIT,
    _T_O,
    _T_SI,
    GridResult,
    _Tape,
    _grid_timing,
    _np,
    _raw_point,
    _replay_numpy,
    _replay_python,
    _resolve_use_numpy,
)

__all__ = [
    "FoldError",
    "FoldedProgram",
    "FoldedResult",
    "RankClass",
    "evaluate_folded",
    "evaluate_folded_grid",
    "fold_program",
    "fold_tree",
]


class FoldError(ValueError):
    """A schedule (or parameter point) is not soundly foldable.

    The message is the *reason* — surfaced verbatim in
    ``GridGroupReport.fold_reason`` so an asymmetric program degrades
    loudly, never silently.
    """


# -- dyadic-exactness guard ------------------------------------------

#: Folding requires every parameter and literal to be a multiple of
#: ``1/_GRAIN`` so realized sums are exact and association-free.
_GRAIN = 64.0
#: ... with magnitude at most this, so grain-scaled sums stay under
#: 2^53 across any realizable chain (coefficient mass is bounded too).
_MAGNITUDE = float(2**20)
#: Total |coefficient| mass bound per symbolic form: with terms
#: ≤ 2^20 the realized value stays ≤ 2^46, exact at grain 64.
_MASS = float(2**26)


def _dyadic(x: float) -> bool:
    x = float(x)
    return -_MAGNITUDE <= x <= _MAGNITUDE and (x * _GRAIN).is_integer()


def _check_point_dyadic(L: float, o: float, g: float, si: float) -> None:
    for name, v in (("L", L), ("o", o), ("g", g), ("send_interval", si)):
        if not _dyadic(v):
            raise FoldError(
                f"non-dyadic parameter {name}={v}: folding guarantees "
                f"bit-identity only for multiples of 1/{int(_GRAIN)} "
                f"with magnitude <= {int(_MAGNITUDE)} (exact, "
                "association-free float sums) — use the unfolded path"
            )


# -- symbolic time forms ---------------------------------------------

#: Affine basis indices over (1, L, o, g, send_interval).
_B_CONST, _B_L, _B_O, _B_G, _B_SI = range(5)

_AFF_ZERO = (0.0, 0.0, 0.0, 0.0, 0.0)


def _dominates(b: tuple, a: tuple) -> bool:
    """``b >= a`` at every valid point (0 <= o,g <= si; L,si >= 0)."""
    d0 = b[0] - a[0]
    dL = b[1] - a[1]
    if d0 < 0 or dL < 0:
        return False
    do = b[2] - a[2]
    dg = b[3] - a[3]
    dsi = b[4] - a[4]
    return dsi + min(do, 0.0) + min(dg, 0.0) >= 0.0


class _Forms:
    """Interned max-of-affine-forms time expressions.

    A form id is a key only — recording emits the representative's
    full float chain, never a simplified form — so interning affects
    *which ranks merge*, not what is computed.
    """

    __slots__ = ("_ids", "nodes")

    def __init__(self) -> None:
        self._ids: dict = {}
        self.nodes: list = []
        self.intern((_AFF_ZERO,))

    @property
    def zero(self) -> int:
        return 0

    def intern(self, branches: tuple) -> int:
        i = self._ids.get(branches)
        if i is None:
            i = len(self.nodes)
            self.nodes.append(branches)
            self._ids[branches] = i
        return i

    def add(self, fid: int, term: int, k: float) -> int:
        """``form + k * basis[term]`` (distributes over the max)."""
        out = []
        for br in self.nodes[fid]:
            c = list(br)
            c[term] += k
            if sum(abs(v) for v in c) > _MASS:
                raise FoldError(
                    "schedule too deep for exact folding: symbolic "
                    "coefficient mass exceeds the dyadic-exactness "
                    "bound"
                )
            out.append(tuple(c))
        return self.intern(tuple(out))

    def vmax(self, fa: int, fb: int) -> int:
        if fa == fb:
            return fa
        cand = list(self.nodes[fa]) + list(self.nodes[fb])
        kept: list = []
        for br in cand:
            if any(
                _dominates(other, br)
                for other in cand
                if other is not br
            ):
                # Keep exactly one copy of mutually-dominating equals.
                if br in kept or any(
                    _dominates(other, br) and not _dominates(br, other)
                    for other in cand
                ):
                    continue
            kept.append(br)
        kept = sorted(set(kept))
        if len(kept) > 16:
            raise FoldError(
                "symbolic arrival form too complex (> 16 unresolved "
                "max branches) — this schedule's symmetry is not "
                "recognisable"
            )
        return self.intern(tuple(kept))


# -- the folded program ----------------------------------------------


@dataclass(slots=True)
class RankClass:
    """One equivalence class of ranks: a schedule and a multiplicity."""

    index: int
    #: Number of ranks in the class.
    size: int
    #: Smallest member rank (the representative).
    rep: int
    #: The class schedule: ops with ``OP_SEND`` destinations dropped —
    #: ``(OP_SEND, words, tag)``; other ops verbatim.
    skeleton: tuple
    #: Parent class index (-1 for roots: ranks receiving nothing).
    parent: int
    #: Send index within the parent class feeding this class (-1 root).
    parent_send: int
    #: Message-forest depth (roots at 0).
    depth: int
    #: Destination class per send, when well-defined (compact tree
    #: constructors); ``None`` for generic folds, where members of one
    #: class may address different child classes.
    children: tuple | None = None
    #: Representative's program return value (``None`` for compact
    #: constructors, which never ran the generators).
    value: Any = None

    @property
    def n_sends(self) -> int:
        return sum(1 for op in self.skeleton if op[0] == OP_SEND)


@dataclass(slots=True)
class FoldedProgram:
    """A compiled program folded to per-class schedules.

    ``classes`` is topologically ordered (every class's parent
    precedes it), so one forward pass evaluates the whole forest.
    Per-rank schedules are never materialized: ``class_index(rank)``
    maps on demand.
    """

    P: int
    classes: list
    #: ``rank -> class index``: a sequence (generic folds) or a
    #: callable (compact constructors — O(1) per rank, O(C) memory).
    class_of: Any
    n_messages: int
    source: str = "generic"

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    def class_index(self, rank: int) -> int:
        if not 0 <= rank < self.P:
            raise IndexError(f"rank {rank} out of range 0..{self.P - 1}")
        if callable(self.class_of):
            return self.class_of(rank)
        return self.class_of[rank]

    def sizes(self) -> list:
        return [c.size for c in self.classes]


def _literals_dyadic(classes) -> None:
    for cls in classes:
        for op in cls.skeleton:
            if op[0] in (OP_COMPUTE, OP_SLEEP) and not _dyadic(op[1]):
                raise FoldError(
                    f"non-dyadic compute/sleep literal {op[1]}: "
                    "folding guarantees bit-identity only for "
                    f"multiples of 1/{int(_GRAIN)} with magnitude <= "
                    f"{int(_MAGNITUDE)}"
                )


def _skeleton(ops: tuple) -> tuple:
    return tuple(
        (OP_SEND, op[2], op[3]) if op[0] == OP_SEND else op
        for op in ops
    )


def fold_program(compiled: CompiledProgram) -> FoldedProgram:
    """Partition a compiled program's ranks into equivalence classes.

    Θ(P) discovery: one pass classifies every rank by
    ``(skeleton, arrival-form)`` in message-forest topological order.
    Raises :class:`FoldError` (with the refusal reason) for schedules
    whose semantics are not class-invariant — see the module
    docstring's taxonomy.
    """
    P = compiled.P
    if compiled.max_words > 1:
        raise FoldError(
            "multi-word sends (LogGP G streaming) occupy the send "
            "port across messages — not foldable"
        )
    if compiled.uses_barrier:
        raise FoldError("barrier synchronization couples all ranks")
    if compiled.uses_now:
        raise FoldError(
            "Now-observing schedule: clock readings are compiled per "
            "parameter point, not per class"
        )
    ops_of = compiled.ops
    incoming: list = [None] * P
    for r in range(P):
        ops = ops_of[r]
        n_recv = 0
        si = 0
        for i, op in enumerate(ops):
            k = op[0]
            if k == OP_BARRIER:
                raise FoldError(
                    "barrier synchronization couples all ranks"
                )
            if k == OP_POLL:
                raise FoldError(
                    f"rank {r} polls: drained counts are "
                    "timing-dependent and not class-invariant"
                )
            if k == OP_NOW:
                raise FoldError(
                    "Now-observing schedule: clock readings are "
                    "compiled per parameter point, not per class"
                )
            if k == OP_RECV:
                n_recv += 1
                if i != 0:
                    raise FoldError(
                        f"rank {r} receives at op {i}, not at the "
                        "schedule head — pre-receive work breaks the "
                        "single-arrival canonical form"
                    )
            elif k == OP_SEND:
                dst = op[1]
                if incoming[dst] is not None:
                    raise FoldError(
                        f"rank {dst} is sent more than one message "
                        "(multi-source fan-in) — arrival interleaving "
                        "is not class-invariant"
                    )
                incoming[dst] = (r, si, op[3])
                si += 1
        if n_recv > 1:
            raise FoldError(
                f"rank {r} receives {n_recv} messages (multi-source "
                "fan-in) — arrival interleaving is not class-invariant"
            )
    for r in range(P):
        has_recv = bool(ops_of[r]) and ops_of[r][0][0] == OP_RECV
        if incoming[r] is not None and not has_recv:
            raise FoldError(
                f"rank {r} is sent a message it never receives"
            )
        if has_recv and incoming[r] is None:
            raise FoldError(
                f"rank {r} receives but nothing is sent to it"
            )

    # Topological order over the message forest (single parent each).
    order = [r for r in range(P) if incoming[r] is None]
    pos = 0
    seen = len(order)
    children_of: list = [[] for _ in range(P)]
    for r in range(P):
        if incoming[r] is not None:
            children_of[incoming[r][0]].append(r)
    while pos < len(order):
        r = order[pos]
        pos += 1
        for c in children_of[r]:
            order.append(c)
            seen += 1
    if seen != P:
        raise FoldError(
            "cyclic message dependence — rings and ping-pong pairs "
            "have no class-invariant schedule"
        )

    forms = _Forms()
    classes: list = []
    key_to_idx: dict = {}
    class_of = [0] * P
    #: Per class: form id of each send's arrival time, for child keys.
    send_forms: list = []
    for r in order:
        inc = incoming[r]
        if inc is None:
            arr_form = -1
            parent = -1
            parent_send = -1
            depth = 0
        else:
            src, sidx, _tag = inc
            parent = class_of[src]
            parent_send = sidx
            arr_form = send_forms[parent][sidx]
            depth = classes[parent].depth + 1
        skel = _skeleton(ops_of[r])
        key = (skel, arr_form)
        idx = key_to_idx.get(key)
        if idx is None:
            idx = len(classes)
            key_to_idx[key] = idx
            classes.append(
                RankClass(
                    index=idx,
                    size=1,
                    rep=r,
                    skeleton=skel,
                    parent=parent,
                    parent_send=parent_send,
                    depth=depth,
                    value=compiled.values[r],
                )
            )
            send_forms.append(
                _walk_forms(
                    forms,
                    skel,
                    forms.zero if arr_form < 0 else arr_form,
                    arr_form >= 0,
                )
            )
        else:
            cls = classes[idx]
            cls.size += 1
            if r < cls.rep:
                cls.rep = r
                cls.value = compiled.values[r]
        class_of[r] = idx
    return FoldedProgram(
        P=P,
        classes=classes,
        class_of=class_of,
        n_messages=compiled.n_messages,
        source="generic",
    )


def _walk_forms(
    forms: _Forms, skeleton: tuple, arrival: int, has_recv: bool
) -> list:
    """Symbolic schedule walk: the arrival form of each send."""
    if has_recv:
        now = forms.add(arrival, _B_O, 1.0)
    else:
        now = forms.zero
    last_send = None
    out = []
    for op in skeleton[1 if has_recv else 0 :]:
        k = op[0]
        if k == OP_COMPUTE or k == OP_SLEEP:
            now = forms.add(now, _B_CONST, float(op[1]))
        else:  # OP_SEND
            if last_send is None:
                start = now
            else:
                start = forms.vmax(
                    now, forms.add(last_send, _B_SI, 1.0)
                )
            end = forms.add(start, _B_O, 1.0)
            out.append(forms.add(end, _B_L, 1.0))
            last_send = start
            now = end
    return out


def fold_tree(tree, *, root: int = 0, tag: str = "tbcast") -> FoldedProgram:
    """Fold a broadcast tree without driving any generators.

    Accepts an explicit tree — a
    :class:`repro.algorithms.broadcast.BroadcastTree`, or its bare
    per-rank ``children`` lists — synthesized to per-rank ops and
    folded generically; or a *class-compact* folded tree
    (``.classes``, as ``FoldedTree`` from the huge-P constructors),
    which converts directly in Θ(C) with no per-rank work at all: the
    P = 2^20 path.  ``root`` applies to bare children lists only.

    The synthesized schedule is exactly what
    ``compile_programs(broadcast_program(tree, ...))`` lowers to —
    non-roots receive first, then send to their children in order —
    so folded results are bit-identical to the compiled-unfolded path.
    """
    if hasattr(tree, "classes"):
        classes = []
        n_messages = 0
        for i, tc in enumerate(tree.classes):
            is_root = tc.parent < 0
            skel = ()
            if not is_root:
                skel += ((OP_RECV, tag),)
            skel += ((OP_SEND, 1, tag),) * len(tc.children)
            classes.append(
                RankClass(
                    index=i,
                    size=tc.size,
                    rep=tc.rep,
                    skeleton=skel,
                    parent=tc.parent,
                    parent_send=tc.parent_send,
                    depth=tc.depth,
                    children=tuple(tc.children),
                )
            )
            if not is_root:
                n_messages += tc.size
        for cls in classes:
            if cls.parent >= 0 and cls.parent >= cls.index:
                raise FoldError(
                    "folded tree classes are not topologically "
                    f"ordered: class {cls.index} has parent "
                    f"{cls.parent}"
                )
        return FoldedProgram(
            P=tree.P,
            classes=classes,
            class_of=tree.classify,
            n_messages=n_messages,
            source="tree",
        )
    children = tree.children if hasattr(tree, "children") else tree
    root = getattr(tree, "root", root)
    P = len(children)
    ops = []
    n_messages = 0
    for r in range(P):
        kids = children[r]
        if P == 1:
            ops.append(())
            continue
        rops: tuple = () if r == root else ((OP_RECV, tag),)
        rops += tuple((OP_SEND, c, 1, tag) for c in kids)
        n_messages += len(kids)
        ops.append(rops)
    compiled = CompiledProgram(
        P=P,
        ops=tuple(ops),
        values=tuple([None] * P),
        n_messages=n_messages,
        max_words=1,
    )
    folded = fold_program(compiled)
    folded.source = "tree"
    return folded


# -- scalar folded evaluation ----------------------------------------


@dataclass(slots=True)
class FoldedResult:
    """Per-class results of a folded evaluation.

    Aggregates match :class:`.evaluator.CompiledResult` exactly; the
    per-rank views are expanded on demand (O(1) per rank) instead of
    materialized.
    """

    makespan: float
    total_messages: int
    total_stall_time: float
    P: int
    n_classes: int
    class_makespans: list
    class_finished_at: list
    class_sends: list
    class_receives: list
    class_sizes: list
    folded: FoldedProgram

    def finished_at(self, rank: int) -> float:
        return self.class_finished_at[self.folded.class_index(rank)]

    def sends(self, rank: int) -> int:
        return self.class_sends[self.folded.class_index(rank)]

    def receives(self, rank: int) -> int:
        return self.class_receives[self.folded.class_index(rank)]

    def value(self, rank: int) -> Any:
        return self.folded.classes[self.folded.class_index(rank)].value

    def expand_finished_at(self, limit: int | None = None) -> list:
        """Per-rank ``finished_at`` for ranks ``0..limit-1``."""
        n = self.P if limit is None else min(limit, self.P)
        cf = self.class_finished_at
        folded = self.folded
        return [cf[folded.class_index(r)] for r in range(n)]


def _resolve_flight(params, L, latency, fabric):
    """Fixed per-message flight time, or a :class:`FoldError`."""
    given = sum(x is not None for x in (L, latency, fabric))
    if given > 1:
        raise ValueError(
            "give at most one of L=, latency=, fabric="
        )
    if fabric is not None:
        lossy = getattr(fabric, "lossy", False)
        if lossy:
            raise FoldError(
                "lossy fabrics retry on timeout — use the event "
                "machine"
            )
        model = getattr(fabric, "model", None)
        if model is None:
            raise FoldError(
                "topology fabrics route per (src, dst) pair — flight "
                "is not class-invariant"
            )
        latency = model
    if latency is not None:
        if type(latency) is not FixedLatency:
            raise FoldError(
                "seeded latency models draw per message in event "
                "order — draws are not class-invariant"
            )
        flight = float(latency.L)
        if flight > params.L + 1e-12:
            raise ValueError(
                f"latency model bound {flight} exceeds L={params.L}"
            )
        return flight
    if L is not None:
        flight = float(L)
        if flight > params.L + 1e-12:
            raise ValueError(
                f"fixed latency L={flight} exceeds params.L={params.L}"
            )
        return flight
    return float(params.L)


def _scalar_walk(
    cls: RankClass,
    arrival: float | None,
    o: float,
    si: float,
    flight: float,
    cap: int,
    enforce: bool,
):
    """One class's schedule at fixed parameters.

    Returns ``(finished_at, last_activity, send_arrivals)``.  Raises
    :class:`FoldError` on a capacity stall or an arrival/inject tie
    whose event order would depend on scheduler seq numbers.
    """
    skel = cls.skeleton
    has_recv = bool(skel) and skel[0][0] == OP_RECV
    if has_recv:
        now = arrival + o
        la = now
    else:
        now = 0.0
        la = 0.0
    last_send = None
    end = None
    arrs: list = []
    released = 0
    last_kind = skel[0][0] if skel else None
    for op in skel[1 if has_recv else 0 :]:
        k = op[0]
        last_kind = k
        if k == OP_COMPUTE:
            now = now + op[1]
            la = now
        elif k == OP_SLEEP:
            now = now + op[1]
        else:  # OP_SEND
            if last_send is None:
                start = now
            else:
                gap = last_send + si
                start = now if now >= gap else gap
            end = start + o
            if enforce:
                m = len(arrs)
                while released < m and arrs[released] < end:
                    released += 1
                eff = released
                if eff < m and arrs[eff] == end and flight >= o:
                    # An arrival tying an inject pops first: it was
                    # scheduled no later (start_m - end_j = flight - o),
                    # and at flight == o strictly earlier in seq order
                    # (the inject_j pop precedes every event that can
                    # commit send m at that timestamp).
                    while eff < m and arrs[eff] == end:
                        eff += 1
                    released = eff
                if m - eff >= cap:
                    raise FoldError(
                        f"capacity stall at reference point: class "
                        f"{cls.index} (rep rank {cls.rep}) has "
                        f"{m - eff} messages in flight at send {m} "
                        f"with capacity {cap} — stall queues are "
                        "rank-ordered, not class-invariant"
                    )
            arrs.append(end + flight)
            last_send = start
            now = end
            la = end
    fin = end if last_kind == OP_SEND else now
    return fin, la, arrs


def evaluate_folded(
    folded: FoldedProgram,
    params,
    *,
    L: float | None = None,
    latency=None,
    fabric=None,
    enforce_capacity: bool = True,
    capacity: int | None = None,
    hw_barrier_cost: float = 0.0,
    compute_jitter=None,
    max_events: int = 0,
) -> FoldedResult:
    """Evaluate a folded program at one parameter point, Θ(C).

    Aggregates (makespan, message and stall totals) and every
    expanded per-rank view are exactly what :func:`.evaluator.evaluate`
    — and therefore the machine — produces for the unfolded program,
    under the dyadic-exactness guard.  ``max_events`` is accepted for
    signature parity and ignored: there is no event loop.
    """
    if params.P != folded.P:
        raise ValueError(
            f"params P={params.P} does not match folded P={folded.P}"
        )
    if hw_barrier_cost < 0:
        raise ValueError(
            f"hw_barrier_cost must be >= 0, got {hw_barrier_cost}"
        )
    if compute_jitter is not None:
        raise FoldError(
            "compute_jitter is rank-indexed — per-rank cycles are "
            "not class-invariant"
        )
    flight = _resolve_flight(params, L, latency, fabric)
    o = float(params.o)
    si = float(params.send_interval)
    _check_point_dyadic(float(params.L), o, float(params.g), si)
    if not _dyadic(flight):
        raise FoldError(
            f"non-dyadic flight time {flight} — see the "
            "dyadic-exactness guard"
        )
    _literals_dyadic(folded.classes)
    cap = params.capacity if capacity is None else capacity
    if cap < 1:
        raise ValueError(f"capacity must be >= 1, got {cap}")
    classes = folded.classes
    n = len(classes)
    arrive_of: list = [None] * n
    fins = [0.0] * n
    pms = [0.0] * n
    sends = [0] * n
    recvs = [0] * n
    makespan = 0.0
    total_messages = 0
    for i, cls in enumerate(classes):
        if cls.parent >= 0:
            arrival = arrive_of[cls.parent][cls.parent_send]
            recvs[i] = 1
        else:
            arrival = None
        fin, la, arrs = _scalar_walk(
            cls, arrival, o, si, flight, cap, enforce_capacity
        )
        arrive_of[i] = arrs
        fins[i] = fin
        pms[i] = fin if fin >= la else la
        sends[i] = len(arrs)
        total_messages += cls.size * len(arrs)
        if pms[i] > makespan:
            makespan = pms[i]
    return FoldedResult(
        makespan=makespan,
        total_messages=total_messages,
        total_stall_time=0.0,
        P=folded.P,
        n_classes=n,
        class_makespans=pms,
        class_finished_at=fins,
        class_sends=sends,
        class_receives=recvs,
        class_sizes=[c.size for c in classes],
        folded=folded,
    )


# -- tape-recorded folded evaluation (the grid path) -----------------


class _FoldRecorder:
    """Record one folded evaluation as a :class:`.grid._Tape`.

    Every class time is a boxed ``(value, slot)``; the chain is pure
    max/add (point-universally exact — a max instruction equals the
    realized branch in both cases), so the only constraints are the
    capacity-window boundaries and the deduplicated ``_C_CAP``
    rows.  Replays through the unmodified :func:`.grid._replay_numpy`
    / :func:`.grid._replay_python`.
    """

    def __init__(
        self,
        folded: FoldedProgram,
        params,
        *,
        enforce_capacity: bool,
        capacity: int,
        timing: tuple,
    ):
        self._folded = folded
        self._o = float(params.o)
        self._si = float(params.send_interval)
        self._enforce = enforce_capacity
        self._cap = capacity
        if timing[0] == "params":
            self._flight = (_T_L, 0.0, float(params.L))
        elif timing[0] == "const":
            self._flight = (_T_LIT, timing[1], timing[1])
        else:
            raise FoldError(
                "seeded latency models draw per message in event "
                "order — draws are not class-invariant"
                if timing[0] in ("draw", "const_axis")
                else "topology fabrics route per (src, dst) pair — "
                "flight is not class-invariant"
            )
        self.tape = _Tape()
        self._lits: dict = {}
        self._zero = self._const(0.0)
        self._cap_counts: set = set()
        self._tie_guarded = False

    # tape primitives (the _TapeEvaluator idiom, constraint-light)

    def _slot(self) -> int:
        s = self.tape.n_slots
        self.tape.n_slots = s + 1
        return s

    def _const(self, v: float):
        box = self._lits.get(v)
        if box is None:
            s = self._slot()
            self.tape.code.append((_I_CONST, s, _T_LIT, v))
            box = (v, s)
            self._lits[v] = box
        return box

    def _add(self, box, term: int, k: float, value: float):
        s = self._slot()
        self.tape.code.append((_I_ADD, s, box[1], term, k))
        return (value, s)

    def _max(self, a, b):
        if a[1] == b[1]:
            return a
        s = self._slot()
        self.tape.code.append((_I_MAX, s, a[1], b[1]))
        return (a[0] if a[0] >= b[0] else b[0], s)

    def _wadd(self, a, b, w: float):
        s = self._slot()
        self.tape.code.append((_I_WADD, s, a[1], b[1], w))
        return (a[0] + w * b[0], s)

    def run(self) -> dict:
        folded = self._folded
        o = self._o
        si = self._si
        ft, fk, fv = self._flight
        classes = folded.classes
        arrive_of: list = [None] * len(classes)
        mk = None
        total_messages = 0
        for i, cls in enumerate(classes):
            skel = cls.skeleton
            has_recv = bool(skel) and skel[0][0] == OP_RECV
            if has_recv:
                arrival = arrive_of[cls.parent][cls.parent_send]
                now = self._add(arrival, _T_O, 0.0, arrival[0] + o)
                la = now
            else:
                now = self._zero
                la = self._zero
            last_send = None
            end = None
            arrs: list = []
            released = 0
            last_kind = skel[0][0] if skel else None
            for op in skel[1 if has_recv else 0 :]:
                k = op[0]
                last_kind = k
                if k == OP_COMPUTE or k == OP_SLEEP:
                    now = self._add(
                        now, _T_LIT, float(op[1]), now[0] + op[1]
                    )
                    if k == OP_COMPUTE:
                        la = now
                    continue
                # OP_SEND
                if last_send is None:
                    start = now
                else:
                    gap = self._add(
                        last_send, _T_SI, 0.0, last_send[0] + si
                    )
                    start = self._max(now, gap)
                end = self._add(start, _T_O, 0.0, start[0] + o)
                if self._enforce:
                    released = self._capacity_window(
                        cls, arrs, end, released
                    )
                arrs.append(self._add(end, ft, fk, end[0] + fv))
                last_send = start
                now = end
                la = end
            arrive_of[i] = arrs
            fin = end if last_kind == OP_SEND else now
            pm = self._max(fin, la)
            total_messages += cls.size * len(arrs)
            mk = pm if mk is None else self._max(mk, pm)
        if mk is None:
            mk = self._zero
        # Aggregate stall: zero per class, folded with multiplicity so
        # the weighted-counter shape (and _I_WADD) is exercised and a
        # future stall-bearing class folds the same way.
        st = self._zero
        for cls in classes:
            st = self._wadd(st, self._zero, float(cls.size))
        self.tape.makespan_slot = mk[1]
        self.tape.stall_slot = st[1]
        return {
            "makespan": mk[0],
            "total_stall_time": st[0],
            "total_messages": total_messages,
        }

    def _capacity_window(self, cls, arrs, inject, released: int) -> int:
        """Source-side in-flight accounting at one inject.

        Classification at the reference point: release-at-arrival,
        ties released iff ``flight >= o`` (see the module docstring).
        For replay, *overcounting* is safe — counts never feed a
        value, only the stall check — so the in-flight boundary is
        ``<=`` (a replayed tie there at ``flight >= o`` is truly
        released but merely overcounted).  The released boundary is
        ``<=`` only under a one-time ``o <= flight`` tape guard
        (which makes tie release valid at every covered point), else
        strict; ``flight < o`` points under a releasing reference
        simply diverge and re-record.
        """
        m = len(arrs)
        while released < m and arrs[released][0] < inject[0]:
            released += 1
        eff = released
        releases_ties = self._flight[2] >= self._o
        if eff < m and arrs[eff][0] == inject[0] and releases_ties:
            while eff < m and arrs[eff][0] == inject[0]:
                eff += 1
            released = eff
        count = m - eff
        if count >= self._cap:
            raise FoldError(
                f"capacity stall at reference point: class "
                f"{cls.index} (rep rank {cls.rep}) has {count} "
                f"messages in flight at send {m} with capacity "
                f"{self._cap} — stall queues are rank-ordered, not "
                "class-invariant"
            )
        cons = self.tape.cons
        if eff > 0:
            if releases_ties:
                if not self._tie_guarded:
                    self._tie_guarded = True
                    o_slot = self._slot()
                    self.tape.code.append(
                        (_I_CONST, o_slot, _T_O, 0.0)
                    )
                    f_slot = self._slot()
                    self.tape.code.append(
                        (_I_CONST, f_slot, self._flight[0],
                         self._flight[1])
                    )
                    cons.append((_C_LE, o_slot, f_slot))
                cons.append((_C_LE, arrs[eff - 1][1], inject[1]))
            else:
                cons.append((_C_LT, arrs[eff - 1][1], inject[1]))
        if eff < m:
            cons.append((_C_LE, inject[1], arrs[eff][1]))
        if count not in self._cap_counts:
            self._cap_counts.add(count)
            cons.append((_C_CAP, count, False))
        return released


def evaluate_folded_grid(
    folded: FoldedProgram,
    grid: Sequence,
    *,
    latency=None,
    fabric=None,
    enforce_capacity: bool = True,
    capacity: int | None = None,
    hw_barrier_cost: float = 0.0,
    compute_jitter=None,
    max_events: int = 0,
    max_tapes: int = 32,
    use_numpy: bool | None = None,
) -> GridResult:
    """Evaluate a folded program at every point of an ``(L, o, g)`` grid.

    The folded counterpart of :func:`.grid.evaluate_grid`: record one
    Θ(C) tape per control-flow region, replay it vectorized over the
    remaining points, scalar-fold stragglers.  Values are exactly the
    unfolded compiled path's (and the machine's) under the
    dyadic-exactness guard.

    Points that cannot be folded at their own parameters — a capacity
    stall at a recording reference — are returned *unfilled* in
    ``GridResult.divergent`` for the caller to evaluate unfolded, the
    same contract as ``uses_now`` divergence in the unfolded grid.
    Whole-grid ineligibility (draw timing, topology fabric, jitter,
    non-dyadic points) raises :class:`FoldError` instead.
    """
    pts = list(grid)
    if not pts:
        return GridResult([], [], 0, 0, folded=True, classes=folded.n_classes)
    if hw_barrier_cost < 0:
        raise ValueError(
            f"hw_barrier_cost must be >= 0, got {hw_barrier_cost}"
        )
    if max_tapes < 0:
        raise ValueError(f"max_tapes must be >= 0, got {max_tapes}")
    if compute_jitter is not None:
        raise FoldError(
            "compute_jitter is rank-indexed — per-rank cycles are "
            "not class-invariant"
        )
    for p in pts:
        if p.P != folded.P:
            raise ValueError(
                f"grid point P={p.P} does not match folded "
                f"P={folded.P}; group grid points by P"
            )
    caps = [
        (p.capacity if capacity is None else capacity) for p in pts
    ]
    for c in caps:
        if c < 1:
            raise ValueError(f"capacity must be >= 1, got {c}")
    timing, model = _grid_timing(pts, latency, fabric)
    if model is not None or timing[0] not in ("params", "const"):
        raise FoldError(
            "seeded latency models draw per message in event order — "
            "draws are not class-invariant"
            if timing[0] in ("draw", "const_axis")
            else "topology fabrics route per (src, dst) pair — "
            "flight is not class-invariant"
        )
    for p in pts:
        _check_point_dyadic(
            float(p.L), float(p.o), float(p.g), float(p.send_interval)
        )
    if timing[0] == "const" and not _dyadic(timing[1]):
        raise FoldError(
            f"non-dyadic flight time {timing[1]} — see the "
            "dyadic-exactness guard"
        )
    _literals_dyadic(folded.classes)
    use_numpy = _resolve_use_numpy(use_numpy)
    n = len(pts)
    raw = [_raw_point(p) for p in pts]
    makespans = [0.0] * n
    stalls = [0.0] * n
    remaining = list(range(n))
    tapes = 0
    divergent: list = []
    while remaining and tapes < max_tapes:
        ref = remaining[0]
        rec = _FoldRecorder(
            folded,
            pts[ref],
            enforce_capacity=enforce_capacity,
            capacity=caps[ref],
            timing=timing,
        )
        try:
            out = rec.run()
        except FoldError:
            divergent.append(ref)
            remaining = remaining[1:]
            continue
        tapes += 1
        makespans[ref] = out["makespan"]
        stalls[ref] = out["total_stall_time"]
        rest = remaining[1:]
        if not rest:
            remaining = []
            break
        if use_numpy:
            np = _np
            arrs = tuple(
                np.asarray([raw[i][k] for i in rest], dtype=float)
                for k in range(5)
            ) + (None,)
            cap_arr = np.asarray(
                [caps[i] for i in rest], dtype=np.int64
            )
            ok, mk, st = _replay_numpy(rec.tape, arrs, cap_arr)
            next_remaining = []
            for j, i in enumerate(rest):
                if ok[j]:
                    makespans[i] = float(mk[j])
                    stalls[i] = float(st[j])
                else:
                    next_remaining.append(i)
            remaining = next_remaining
        else:
            ok, mk, st = _replay_python(
                rec.tape,
                [(*raw[i], None) for i in rest],
                [caps[i] for i in rest],
            )
            next_remaining = []
            for j, i in enumerate(rest):
                if ok[j]:
                    makespans[i] = mk[j]
                    stalls[i] = st[j]
                else:
                    next_remaining.append(i)
            remaining = next_remaining
    fallbacks = 0
    for i in remaining:
        try:
            res = evaluate_folded(
                folded,
                pts[i],
                latency=latency,
                fabric=fabric,
                enforce_capacity=enforce_capacity,
                capacity=capacity,
                hw_barrier_cost=hw_barrier_cost,
            )
        except FoldError:
            divergent.append(i)
            continue
        fallbacks += 1
        makespans[i] = res.makespan
        stalls[i] = res.total_stall_time
    divergent.sort()
    return GridResult(
        makespans,
        stalls,
        tapes,
        fallbacks,
        divergent,
        folded=True,
        classes=folded.n_classes,
    )
