"""Backend selection for compiled evaluation: explicit and safe.

The compiled fast path reproduces the machine bit-for-bit only when
flight times are the constant ``L`` for every message: a nondeterministic
latency model draws per message, and a topology/contention/lossy fabric
makes delivery depend on runtime load — both change event *order*, which
a statically recorded schedule cannot represent.  Callers pick a
``backend``:

* ``"machine"`` — always the event machine; any latency model or fabric.
* ``"compiled"`` — always the compiled evaluator; raises ``ValueError``
  when the timing configuration is ineligible and ``CompileError`` when
  the program itself cannot be lowered.
* ``"auto"`` — the compiled evaluator when the timing configuration is
  deterministic, with one deliberate asymmetry: an *ineligible timing
  configuration* is a loud ``ValueError``, never a silent fall back to
  the machine.  Auto-selecting the slow path there would make a sweep
  silently 10× slower the day someone swaps in a jittered latency model;
  the caller must say ``backend="machine"`` to mean that.  A program
  that merely cannot be *lowered* (uses ``Now``, branches on timing)
  falls back to the machine — that is a property of the program, not a
  configuration mistake.
"""

from __future__ import annotations

from ..latency import FixedLatency

__all__ = ["BACKENDS", "backend_ineligibility", "resolve_backend"]

BACKENDS = ("machine", "compiled", "auto")


def backend_ineligibility(
    latency=None, fabric=None, fault_plan=None, heartbeat=None
) -> str | None:
    """Why this timing configuration cannot use the compiled evaluator.

    Returns ``None`` when eligible: no latency model / fabric / faults,
    a bare :class:`~repro.sim.latency.FixedLatency`, or a
    :class:`~repro.sim.net.LatencyFabric` wrapping one.  Otherwise a
    human-readable reason (used verbatim in the ``ValueError``).
    """
    if latency is not None and type(latency) is not FixedLatency:
        return (
            f"latency model {type(latency).__name__} draws per-message "
            "flight times; the compiled evaluator requires the "
            "deterministic FixedLatency"
        )
    if fabric is not None:
        from ..net import LatencyFabric

        if not isinstance(fabric, LatencyFabric):
            return (
                f"fabric {type(fabric).__name__} routes or contends "
                "messages at runtime; the compiled evaluator supports "
                "only LatencyFabric"
            )
        if type(fabric.model) is not FixedLatency:
            return (
                f"LatencyFabric wraps {type(fabric.model).__name__}; "
                "the compiled evaluator requires FixedLatency"
            )
    if fault_plan is not None:
        return (
            "a FaultPlan crashes or slows processors at runtime; "
            "compiled schedules assume fault-free execution"
        )
    if heartbeat is not None:
        return (
            "a heartbeat detector emits runtime traffic on the message "
            "ports; compiled schedules assume fault-free execution"
        )
    return None


def resolve_backend(
    backend: str, *, latency=None, fabric=None, fault_plan=None, heartbeat=None
) -> str:
    """Validate ``backend`` against the timing configuration.

    Returns ``"machine"`` or ``"compiled"``.  ``"auto"`` and
    ``"compiled"`` raise ``ValueError`` when
    :func:`backend_ineligibility` reports a reason — loud refusal, not
    silent fallback (see the module docstring).
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    if backend == "machine":
        return "machine"
    reason = backend_ineligibility(
        latency=latency,
        fabric=fabric,
        fault_plan=fault_plan,
        heartbeat=heartbeat,
    )
    if reason is not None:
        raise ValueError(
            f"backend={backend!r} cannot use the compiled evaluator: "
            f"{reason}. Pass backend='machine' to run this "
            "configuration on the event machine."
        )
    return "compiled"
