"""Backend selection for compiled evaluation: explicit and safe.

The compiled fast path reproduces the machine bit-for-bit whenever
flight times are *deterministic given the configuration*: the constant
``L``, a seeded latency model (its ``reset()`` contract makes every
run replay the same draw sequence, which the grid tape vectorizes as
per-point draw inputs), or a :class:`~repro.sim.net.TopologyFabric`'s
per-hop routed flight (a pure function of (src, dst)).  What it cannot
represent is timing resolved from *runtime load*: contention queues and
lossy ARQ retries change delivery as a function of the schedule being
executed, and fault plans / heartbeat detectors inject traffic the
compiled opcode stream does not contain.  Callers pick a ``backend``:

* ``"machine"`` — always the event machine; any configuration.
* ``"compiled"`` — always the compiled evaluator; raises ``ValueError``
  when the timing configuration is ineligible and ``CompileError`` when
  the program itself cannot be lowered.
* ``"auto"`` — the compiled evaluator when the timing configuration is
  eligible, with one deliberate asymmetry: an *ineligible timing
  configuration* is a loud ``ValueError``, never a silent fall back to
  the machine.  Auto-selecting the slow path there would make a sweep
  silently 10× slower the day someone swaps in a contended fabric; the
  caller must say ``backend="machine"`` to mean that.  A program that
  merely cannot be *lowered* (unbounded timing dependence, no
  fixed-point clock) falls back to the machine — that is a property of
  the program, not a configuration mistake — and the fallback carries
  the ``CompileError`` reason (see ``sweep.grid_map``'s report).

Symmetry folding (:mod:`.fold`) is a second, stricter tier *inside*
the compiled path: it collapses ranks into equivalence classes and
needs flight times that are not merely deterministic but
*class-invariant* — one constant per message, independent of which
rank sends it.  ``fold`` modes follow the same philosophy:

* ``"off"`` — never fold; the plain compiled evaluator.
* ``"on"`` — always fold; raises ``ValueError`` when the timing
  configuration is fold-ineligible (:func:`fold_ineligibility`) and
  lets :class:`~.fold.FoldError` propagate when the program's shape
  cannot be folded.
* ``"auto"`` — fold when the timing configuration allows it and the
  program folds; a :class:`~.fold.FoldError` (a property of the
  program, not a configuration mistake) degrades to the unfolded
  compiled evaluator with the reason recorded in the dispatch report.
  A fold-ineligible *timing configuration* under ``"auto"`` is **not**
  an error — unlike backend auto-selection there is no silent 10×
  cliff: the unfolded compiled path is the normal, fully supported
  evaluator, so auto simply runs unfolded.
"""

from __future__ import annotations

__all__ = [
    "BACKENDS",
    "FOLD_MODES",
    "backend_ineligibility",
    "fold_ineligibility",
    "resolve_backend",
    "resolve_fold",
]

BACKENDS = ("machine", "compiled", "auto")

FOLD_MODES = ("auto", "on", "off")


def backend_ineligibility(
    latency=None, fabric=None, fault_plan=None, heartbeat=None
) -> str | None:
    """Why this timing configuration cannot use the compiled evaluator.

    Returns ``None`` when eligible: no faults, and flight times from
    any :class:`~repro.sim.latency.LatencyModel` (bare or wrapped in a
    :class:`~repro.sim.net.LatencyFabric` — seeded models replay their
    draw sequence exactly under the ``reset()`` contract) or a
    deterministic :class:`~repro.sim.net.TopologyFabric`.  Otherwise a
    human-readable reason (used verbatim in the ``ValueError``).
    """
    if fabric is not None:
        from ..net import LatencyFabric, TopologyFabric

        eligible = type(fabric) is LatencyFabric or (
            type(fabric) is TopologyFabric and not fabric.lossy
        )
        if not eligible:
            return (
                f"fabric {type(fabric).__name__} resolves delivery "
                "from runtime load (contention queues, ARQ retries); "
                "the compiled evaluator supports LatencyFabric and "
                "the deterministic TopologyFabric"
            )
    if fault_plan is not None:
        return (
            "a FaultPlan crashes or slows processors at runtime; "
            "compiled schedules assume fault-free execution"
        )
    if heartbeat is not None:
        return (
            "a heartbeat detector emits runtime traffic on the message "
            "ports; compiled schedules assume fault-free execution"
        )
    return None


def fold_ineligibility(
    latency=None, fabric=None, compute_jitter=None
) -> str | None:
    """Why this timing configuration cannot use symmetry folding.

    Folding needs *class-invariant* flight: every message in the run
    takes the same fixed time regardless of sender, receiver, or event
    order.  That admits the constant ``L`` and a
    :class:`~repro.sim.latency.FixedLatency` model (bare or wrapped in
    a :class:`~repro.sim.net.LatencyFabric`); it excludes seeded
    latency models (draws are consumed in event order, which folding
    does not reproduce), topology fabrics (flight is a function of the
    (src, dst) pair), and ``compute_jitter`` (rank-indexed by
    construction).  Returns ``None`` when eligible, else a
    human-readable reason.
    """
    if compute_jitter is not None:
        return (
            "compute_jitter is rank-indexed — per-rank cycles are not "
            "class-invariant"
        )
    if fabric is not None:
        from ..net import LatencyFabric

        if type(fabric) is not LatencyFabric:
            return (
                f"fabric {type(fabric).__name__} resolves flight per "
                "(src, dst) pair or from runtime load — not "
                "class-invariant"
            )
        latency = fabric.model
    if latency is not None:
        from ..latency import FixedLatency

        if type(latency) is not FixedLatency:
            return (
                f"latency model {type(latency).__name__} draws per "
                "message in event order — draws are not class-invariant"
            )
    return None


def resolve_fold(
    fold: str, *, latency=None, fabric=None, compute_jitter=None
) -> str:
    """Validate ``fold`` against the timing configuration.

    Returns ``"on"`` or ``"off"``.  ``"on"`` raises ``ValueError`` when
    :func:`fold_ineligibility` reports a reason; ``"auto"`` resolves to
    ``"off"`` instead — the unfolded compiled evaluator is the normal
    path, not a performance cliff (see the module docstring).  Whether
    the *program* folds is decided later by
    :func:`~.fold.fold_program`; under ``"auto"`` a
    :class:`~.fold.FoldError` there degrades to unfolded with the
    reason recorded in the caller's report.
    """
    if fold not in FOLD_MODES:
        raise ValueError(f"fold must be one of {FOLD_MODES}, got {fold!r}")
    if fold == "off":
        return "off"
    reason = fold_ineligibility(
        latency=latency, fabric=fabric, compute_jitter=compute_jitter
    )
    if reason is None:
        return "on"
    if fold == "on":
        raise ValueError(
            f"fold='on' cannot use symmetry folding: {reason}. Pass "
            "fold='auto' or fold='off' to run unfolded."
        )
    return "off"


def resolve_backend(
    backend: str, *, latency=None, fabric=None, fault_plan=None, heartbeat=None
) -> str:
    """Validate ``backend`` against the timing configuration.

    Returns ``"machine"`` or ``"compiled"``.  ``"auto"`` and
    ``"compiled"`` raise ``ValueError`` when
    :func:`backend_ineligibility` reports a reason — loud refusal, not
    silent fallback (see the module docstring).
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    if backend == "machine":
        return "machine"
    reason = backend_ineligibility(
        latency=latency,
        fabric=fabric,
        fault_plan=fault_plan,
        heartbeat=heartbeat,
    )
    if reason is not None:
        raise ValueError(
            f"backend={backend!r} cannot use the compiled evaluator: "
            f"{reason}. Pass backend='machine' to run this "
            "configuration on the event machine."
        )
    return "compiled"
