"""Backend selection for compiled evaluation: explicit and safe.

The compiled fast path reproduces the machine bit-for-bit whenever
flight times are *deterministic given the configuration*: the constant
``L``, a seeded latency model (its ``reset()`` contract makes every
run replay the same draw sequence, which the grid tape vectorizes as
per-point draw inputs), or a :class:`~repro.sim.net.TopologyFabric`'s
per-hop routed flight (a pure function of (src, dst)).  What it cannot
represent is timing resolved from *runtime load*: contention queues and
lossy ARQ retries change delivery as a function of the schedule being
executed, and fault plans / heartbeat detectors inject traffic the
compiled opcode stream does not contain.  Callers pick a ``backend``:

* ``"machine"`` — always the event machine; any configuration.
* ``"compiled"`` — always the compiled evaluator; raises ``ValueError``
  when the timing configuration is ineligible and ``CompileError`` when
  the program itself cannot be lowered.
* ``"auto"`` — the compiled evaluator when the timing configuration is
  eligible, with one deliberate asymmetry: an *ineligible timing
  configuration* is a loud ``ValueError``, never a silent fall back to
  the machine.  Auto-selecting the slow path there would make a sweep
  silently 10× slower the day someone swaps in a contended fabric; the
  caller must say ``backend="machine"`` to mean that.  A program that
  merely cannot be *lowered* (unbounded timing dependence, no
  fixed-point clock) falls back to the machine — that is a property of
  the program, not a configuration mistake — and the fallback carries
  the ``CompileError`` reason (see ``sweep.grid_map``'s report).
"""

from __future__ import annotations

__all__ = ["BACKENDS", "backend_ineligibility", "resolve_backend"]

BACKENDS = ("machine", "compiled", "auto")


def backend_ineligibility(
    latency=None, fabric=None, fault_plan=None, heartbeat=None
) -> str | None:
    """Why this timing configuration cannot use the compiled evaluator.

    Returns ``None`` when eligible: no faults, and flight times from
    any :class:`~repro.sim.latency.LatencyModel` (bare or wrapped in a
    :class:`~repro.sim.net.LatencyFabric` — seeded models replay their
    draw sequence exactly under the ``reset()`` contract) or a
    deterministic :class:`~repro.sim.net.TopologyFabric`.  Otherwise a
    human-readable reason (used verbatim in the ``ValueError``).
    """
    if fabric is not None:
        from ..net import LatencyFabric, TopologyFabric

        eligible = type(fabric) is LatencyFabric or (
            type(fabric) is TopologyFabric and not fabric.lossy
        )
        if not eligible:
            return (
                f"fabric {type(fabric).__name__} resolves delivery "
                "from runtime load (contention queues, ARQ retries); "
                "the compiled evaluator supports LatencyFabric and "
                "the deterministic TopologyFabric"
            )
    if fault_plan is not None:
        return (
            "a FaultPlan crashes or slows processors at runtime; "
            "compiled schedules assume fault-free execution"
        )
    if heartbeat is not None:
        return (
            "a heartbeat detector emits runtime traffic on the message "
            "ports; compiled schedules assume fault-free execution"
        )
    return None


def resolve_backend(
    backend: str, *, latency=None, fabric=None, fault_plan=None, heartbeat=None
) -> str:
    """Validate ``backend`` against the timing configuration.

    Returns ``"machine"`` or ``"compiled"``.  ``"auto"`` and
    ``"compiled"`` raise ``ValueError`` when
    :func:`backend_ineligibility` reports a reason — loud refusal, not
    silent fallback (see the module docstring).
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    if backend == "machine":
        return "machine"
    reason = backend_ineligibility(
        latency=latency,
        fabric=fabric,
        fault_plan=fault_plan,
        heartbeat=heartbeat,
    )
    if reason is not None:
        raise ValueError(
            f"backend={backend!r} cannot use the compiled evaluator: "
            f"{reason}. Pass backend='machine' to run this "
            "configuration on the event machine."
        )
    return "compiled"
