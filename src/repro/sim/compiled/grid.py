"""Vectorized grid evaluation: record one run, replay it everywhere.

A deterministic schedule's *control flow* — which handler runs next,
which branch each comparison takes — is piecewise-constant over the
``(L, o, g)`` parameter space: nearby points execute the identical
event sequence with different float values flowing through it.  This
module exploits that:

1. **Record.**  :class:`_TapeEvaluator` is the scalar evaluator
   (:mod:`.evaluator`) with every simulated time *boxed* as
   ``(value, slot)``.  Each float operation the machine semantics
   perform — one add per ``+``, one max per running-max fold, one
   sub+add per stall episode — appends one tape instruction, so a
   replayed slot reproduces the recorded value's IEEE arithmetic
   bit-for-bit, never an algebraic simplification of it.  Every branch
   the run takes appends a *constraint*: float comparisons, the
   engine's past-tolerance clamp, activation-dedup key hits/misses,
   capacity comparisons against the per-point ``ceil(L/g)`` limit —
   and a *dependency partial order* over executed events.  Requiring
   the replayed point to reproduce the full event interleaving would
   split the grid at every crossing of two unrelated ranks' event
   times, so ordering is constrained only where it can change results:
   each handler execution declares the state cells it touches (one per
   processor, one for the barrier), and successive touchers of a cell
   must pop in recorded order under the engine's ``(time, seq)`` rule.
   Time ties are pinned without knowing replayed seq numbers: a pair
   whose recorded seqs already match its pop order adds ``<=`` plus a
   recursive order edge between the two events' *schedulers* (handler
   code order then fixes the seqs); a pair popped against seq order
   requires strictly increasing times.  Cancelled activations get the
   same edge from their cancelling event, so a superseded entry cannot
   pop early and execute at a replayed point.  Events whose footprints
   never meet may interleave differently at a covered point — the tape
   is single-assignment dataflow, so commuting executions produce the
   identical instruction stream and results.
2. **Replay.**  :func:`_replay` evaluates the tape's instruction list
   over arrays of grid points (numpy when available, a pure-python
   loop otherwise) and checks every constraint per point.  A point
   that satisfies all constraints provably executes the recorded
   handler sequence up to commuting interleavings, so its replayed
   makespan and stall totals are *exactly* what the scalar evaluator —
   and therefore the machine — would produce there.
3. **Re-reference.**  Points that violate a constraint lie in a
   different control-flow region: the first such point becomes the
   next recording reference, up to ``max_tapes`` regions; stragglers
   fall back to the scalar evaluator.  The fallback changes cost only,
   never results.

Beyond the fixed-``L`` default, the tape lowers the machine's other
deterministic timing configurations:

* **Seeded latency models** (:func:`evaluate_grid` ``latency=`` /
  ``fabric=LatencyFabric(model)``): each injection consumes one
  ``model.draw(src, dst)``; the tape records the draw's *stream index*
  (term ``_T_DRAW``) instead of its value, and replay feeds per-point
  draw values through a draws matrix.  Draws come off one shared RNG
  stream in global injection order, so every draw-consuming injection
  touches a dedicated RNG footprint cell — covered points provably
  consume the stream in the recorded order.  :func:`evaluate_seed_grid`
  stacks a **seed axis** on top: columns are (point, seed) pairs, each
  with its own freshly-reset model, so a 500-seed sweep replays as one
  vectorized evaluation.
* **Topology routing** (:func:`evaluate_grid`
  ``fabric=TopologyFabric(...)``): the per-hop flight
  ``serialization + hops(src, dst) * hop_delay`` is a pure function of
  the pair, so it lowers to per-pair literal terms on the arrival slot
  — same float expression shape as ``TopologyFabric.submit``, bit for
  bit.
* **Bounded timing dependence** (:func:`evaluate_forked`): a schedule
  compiled at an assumed clock (:func:`.evaluator.compile_at`) records
  each ``OP_NOW`` reading as an equality constraint; points that
  cannot satisfy it are *divergent* — they lie in a different
  branch-split region and get their own recompile, up to a fork
  budget, with exact per-point lowering for stragglers.

``tests/test_compiled.py`` pins grid output per-point equal to machine
runs across fuzz-generated programs and parameter grids.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..engine import SimulationError
from ..latency import FixedLatency
from ..net import LatencyFabric, TopologyFabric
from .compiler import (
    OP_COMPUTE,
    OP_NOW,
    OP_POLL,
    OP_RECV,
    OP_SEND,
    OP_SLEEP,
    CompiledProgram,
)
from .evaluator import (
    _COMPACT,
    _DONE,
    _EV_ACTIVATION,
    _EV_ARRIVAL,
    _EV_BARRIER,
    _EV_INJECT,
    _EV_RECV_DONE,
    _EV_WAKE,
    _PAST_TOL,
    _POLLING,
    _RUNNING,
    _SLEEPING,
    _STALL_SEND,
    _WAIT_BARRIER,
    _WAIT_GAP,
    _WAIT_RECV,
    TimingDivergence,
    compile_at,
    evaluate,
)

__all__ = [
    "GridResult",
    "SeedGridResult",
    "evaluate_forked",
    "evaluate_grid",
    "evaluate_seed_grid",
]

try:  # numpy is optional; the pure-python replay is exact, just slower
    import numpy as _np
except ImportError:  # pragma: no cover - image always has numpy
    _np = None

# Tape instructions: (code, out, ...) producing slot ``out``.
_I_CONST = 0  # (out, term, k)            v = term
_I_ADD = 1    # (out, a, term, k)         v = slots[a] + term
_I_ADDS = 2   # (out, a, b)               v = slots[a] + slots[b]
_I_MAX = 3    # (out, a, b)               v = max(slots[a], slots[b])
_I_STALL = 4  # (out, acc, now, start)    v = slots[acc] + (slots[now]-slots[start])
_I_WADD = 5   # (out, a, b, w)            v = slots[a] + w * slots[b]

# Parameter terms a tape instruction may reference.
_T_LIT = 0    # literal float k
_T_L = 1      # per-point L
_T_O = 2      # per-point o
_T_G = 3      # per-point gap g
_T_SI = 4     # per-point send interval max(g, o)
_T_GLONG = 5  # k * per-point LogGP long-message Gap
_T_DRAW = 6   # per-point latency-draw input k (index into the D matrix)

# Constraints: all must hold for a replayed point to be valid.
_C_LE = 0     # slots[a] <= slots[b]
_C_LT = 1     # slots[a] <  slots[b]
_C_EQ = 2     # slots[a] == slots[b]
_C_NE = 3     # slots[a] != slots[b]
_C_CLAMP = 4  # now - tol <= slots[a] < slots[b]  (engine clamp branch)
_C_CAP = 5    # (count >= capacity) == observed; (a=count, b=observed)
_C_GLPOS = 6  # (long-message Gap > 0) == observed; (a=observed)


class _Tape:
    """The recorded run: instructions, constraints, output slots."""

    __slots__ = (
        "code", "cons", "n_slots", "makespan_slot", "stall_slot",
    )

    def __init__(self) -> None:
        self.code: list = []
        self.cons: list = []
        self.n_slots = 0
        self.makespan_slot = -1
        self.stall_slot = -1


class _TMsg:
    __slots__ = ("src", "dst", "tag", "words", "arrive")

    def __init__(self, src, dst, tag, words):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.words = words
        self.arrive = None


class _TProc:
    __slots__ = (
        "rank", "ops", "n_ops", "ip", "pending", "state",
        "busy_until", "last_send_start", "last_recv_start",
        "last_activity", "port_free", "mailbox", "arrived",
        "pending_inject", "stall_started", "queued_on",
        "pending_activations", "poll_drained", "sends", "receives",
        "stall_time", "finished_at",
    )

    def __init__(self, rank, ops, zero, neginf):
        self.rank = rank
        self.ops = ops
        self.n_ops = len(ops)
        self.ip = 0
        self.pending = None
        self.state = _RUNNING
        self.busy_until = zero
        self.last_send_start = neginf
        self.last_recv_start = neginf
        self.last_activity = zero
        self.port_free = neginf
        self.mailbox: list = []
        self.arrived: list = []
        self.pending_inject = None
        self.stall_started = None
        self.queued_on = None
        #: key float -> (event id, key slot); value-compared on lookup
        #: so every hit/miss is recorded as an eq/ne constraint.
        self.pending_activations: dict = {}
        self.poll_drained = 0
        self.sends = 0
        self.receives = 0
        self.stall_time = zero
        self.finished_at = zero


class _TapeEvaluator:
    """The scalar evaluator with boxed times recording a :class:`_Tape`.

    Every simulated time is a ``(float value, tape slot)`` pair; the
    float drives this run exactly as in :class:`.evaluator._Evaluator`
    (same branches, same event order), the slot makes the arithmetic
    replayable.  Port parity with the scalar evaluator is enforced by
    the per-point grid-vs-machine equality tests.
    """

    def __init__(
        self,
        compiled: CompiledProgram,
        params,
        *,
        enforce_capacity: bool,
        capacity: int,
        hw_barrier_cost: float,
        compute_jitter,
        max_events: int,
        timing: tuple = ("params",),
    ):
        P = compiled.P
        self._P = P
        self._o = float(params.o)
        self._g = float(params.g)
        self._si = float(params.send_interval)
        self._L = float(params.L)
        self._Gl = getattr(params, "G", None)
        # Flight-time lowering mode.  ``_flight_fixed`` modes take the
        # machine's fixed fast path (arrive = (now + stream) + flight):
        #   ("params",)         flight is the per-point L      (_T_L)
        #   ("const", c)        flight is the model constant c (_T_LIT)
        #   ("const_axis", c)   flight is per-column input 0   (_T_DRAW)
        # Fabric modes take the submit path (arrive = submit + stream):
        #   ("draw", model)     one model.draw per injection   (_T_DRAW)
        #   ("topo", fabric)    per-(src, dst) route literals  (_T_LIT)
        mode = timing[0]
        self._flight_fixed = None
        self._flight_model = None
        self._flight_topo = None
        if mode == "params":
            self._flight_fixed = (_T_L, 0.0, self._L)
        elif mode == "const":
            self._flight_fixed = (_T_LIT, timing[1], timing[1])
        elif mode == "const_axis":
            self._flight_fixed = (_T_DRAW, 0, timing[1])
        elif mode == "draw":
            self._flight_model = timing[1]
        else:  # "topo"
            self._flight_topo = timing[1]
        self._topo_flight: dict = {}
        #: (src, dst) of each consumed draw, in stream order; replay
        #: rebuilds per-point draw values by walking this sequence.
        self.draw_pairs: list = []
        self._capacity = capacity
        self._enforce = enforce_capacity
        self._hw_barrier = float(hw_barrier_cost)
        self._jitter = compute_jitter
        self._budget = max_events
        self.tape = _Tape()
        #: slot -> slots it is >= at *every* parameter point (the add
        #: chain with nonnegative terms / both max operands); used to
        #: prune structurally-implied <= constraints.
        self._anc: dict[int, tuple] = {}
        self._con_seen: set = set()
        self._cap_seen: set = set()
        self._lits: dict[float, int] = {}
        zero = self._lit(0.0)
        neginf = self._lit(float("-inf"))
        self._zero = zero
        self._procs = [
            _TProc(r, compiled.ops[r], zero, neginf) for r in range(P)
        ]
        self._values = compiled.values
        self._inflight_from = [0] * P
        self._inflight_to = [0] * P
        self._stall_queue: list[list[int]] = [[] for _ in range(P)]
        self._barrier_waiting: list[int] = []
        self._total_messages = 0
        self._queue: list = []
        self._seq = 0
        self._cancelled: set = set()
        self._now = zero
        self._cur_seq = -1
        self._events = 0
        #: State cells touched by the current handler execution:
        #: 0..P-1 per processor, P for the barrier, P+1 for the latency
        #: RNG stream (draw mode: draws must replay in recorded order).
        self._fp: set = set()
        #: Per cell, the seq of the last executed event that touched it.
        self._last_touch: list = [None] * (P + 2)
        #: Ordered pairs already constrained (memo for :meth:`_order`).
        self._ordpairs: set = set()
        #: Per scheduled seq: its (post-clamp) time slot and the seq of
        #: the event executing when it was scheduled (-1: preamble).
        self._m_slot: list = []
        self._m_sched: list = []

    # -- tape primitives ---------------------------------------------

    def _slot(self) -> int:
        tape = self.tape
        s = tape.n_slots
        tape.n_slots = s + 1
        return s

    def _lit(self, v: float):
        cached = self._lits.get(v)
        if cached is None:
            cached = self._slot()
            self.tape.code.append((_I_CONST, cached, _T_LIT, v))
            self._lits[v] = cached
        return (v, cached)

    def _add(self, t, term: int, k: float, termval: float):
        out = self._slot()
        self.tape.code.append((_I_ADD, out, t[1], term, k))
        if term != _T_LIT or k >= 0:
            # Parameter terms are nonnegative at every point, so out is
            # >= t on the whole grid, not just at the reference.
            self._anc[out] = (t[1],)
        return (t[0] + termval, out)

    def _max(self, a, b):
        out = self._slot()
        self.tape.code.append((_I_MAX, out, a[1], b[1]))
        self._anc[out] = (a[1], b[1])
        return (a[0] if a[0] >= b[0] else b[0], out)

    def _implied(self, a: int, b: int) -> bool:
        """``slots[a] <= slots[b]`` at every point, structurally."""
        if a == b:
            return True
        anc = self._anc
        t = anc.get(b)
        if t is None:
            return False
        if a in t:  # depth-1 hit: the overwhelmingly common case
            return True
        stack = list(t)
        budget = 12
        while stack:
            s = stack.pop()
            if s == a:
                return True
            budget -= 1
            if budget <= 0:
                return False
            stack.extend(anc.get(s, ()))
        return False

    def _con2(self, kind: int, a: int, b: int) -> None:
        """Append a binary constraint, deduplicated and pruned."""
        key = (kind << 60) | (a << 30) | b
        seen = self._con_seen
        if key in seen:
            return
        seen.add(key)
        if kind == _C_LE and self._implied(a, b):
            return
        self.tape.cons.append((kind, a, b))

    def _lt(self, a, b) -> bool:
        """Record and return the branch ``a < b``."""
        if a[0] < b[0]:
            self._con2(_C_LT, a[1], b[1])
            return True
        self._con2(_C_LE, b[1], a[1])
        return False

    def _cap_ge(self, count: int) -> bool:
        """Record and return the branch ``count >= capacity``."""
        r = count >= self._capacity
        key = (count, r)
        if key not in self._cap_seen:
            self._cap_seen.add(key)
            self.tape.cons.append((_C_CAP, count, r))
        return r

    # -- inlined engine with ordering constraints --------------------

    def _sched(self, t, code: int, a, b=None, c=None) -> int:
        now = self._now
        if t[0] < now[0]:
            if t[0] < now[0] - _PAST_TOL:
                raise SimulationError(
                    f"event scheduled at {t[0]} before current time {now[0]}"
                )
            self._con2(_C_CLAMP, t[1], now[1])
            t = now
        else:
            self._con2(_C_LE, now[1], t[1])
        seq = self._seq
        self._seq = seq + 1
        self._m_slot.append(t[1])
        self._m_sched.append(self._cur_seq)
        entry = (t[0], seq, t[1], code, a, b, c)
        queue = self._queue
        if not queue or queue[-1] < entry:
            queue.append(entry)
        else:
            insort(queue, entry)
        return seq

    def _order(self, sa: int, sb: int) -> None:
        """Constrain the event with seq ``sa`` to pop before seq ``sb``.

        The engine pops by ``(time, seq)``, and replayed seq numbers are
        unknowable at record time (commuting handlers may interleave
        differently, shifting every seq they assign).  Two facts survive
        replay: an event outlives its scheduler (``_sched``'s validity
        bound plus in-handler assignment), and within one handler seqs
        follow code order.  So: a pair popped against recorded seq order
        needs strictly increasing times; a pair in seq order needs
        ``<=`` plus — for a time tie to break the same way — the same
        pop-order claim about the two *schedulers*, which pins the
        relative seqs.  The walk up the scheduler chains terminates at a
        shared scheduler or the preamble (whose seqs are fixed).
        """
        pairs = self._ordpairs
        m_slot = self._m_slot
        m_sched = self._m_sched
        while True:
            key = (sa << 32) | sb
            if key in pairs:
                return
            pairs.add(key)
            if sa > sb:
                self._con2(_C_LT, m_slot[sa], m_slot[sb])
                return
            if m_sched[sb] == sa:
                # b was scheduled during a's own execution: a pops
                # first at every point, no constraint needed.
                return
            self._con2(_C_LE, m_slot[sa], m_slot[sb])
            sa = m_sched[sa]
            sb = m_sched[sb]
            if sa == sb or sa < 0 or sb < 0:
                return

    def run(self):
        procs = self._procs
        for proc in procs:
            self._sched_activation(proc, self._now)
        queue = self._queue
        cancelled = self._cancelled
        head = 0
        events = 0
        budget = self._budget
        fp = self._fp
        fp.clear()  # preamble touches precede everything; drop them
        last = self._last_touch
        order = self._order
        while True:
            try:
                entry = queue[head]
            except IndexError:
                break
            head += 1
            if head >= _COMPACT:
                del queue[:head]
                head = 0
            sq = entry[1]
            if cancelled and sq in cancelled:
                cancelled.remove(sq)
                continue
            events += 1
            if events > budget:
                raise SimulationError(
                    f"exceeded max_events={budget}; likely livelock"
                )
            self._now = (entry[0], entry[2])
            self._cur_seq = sq
            code = entry[3]
            if code == _EV_ACTIVATION:
                self._on_activation(entry[4], entry[5])
            elif code == _EV_ARRIVAL:
                self._on_arrival(entry[4])
            elif code == _EV_RECV_DONE:
                self._on_recv_done(entry[4], entry[5])
            elif code == _EV_INJECT:
                self._on_inject(entry[4])
            elif code == _EV_WAKE:
                self._on_wake(entry[4], entry[5])
            else:
                self._on_barrier_release(entry[4])
            # Dependency edges: this event pops after every earlier
            # event touching any state cell its handler touched.
            prevs = None
            for cell in fp:
                pe = last[cell]
                if pe is not None:
                    if prevs is None:
                        prevs = {pe}
                    else:
                        prevs.add(pe)
                last[cell] = sq
            fp.clear()
            if prevs is not None:
                for pe in prevs:
                    order(pe, sq)
        self._events = events
        self._check_completion()
        makespan = None
        for p in procs:
            pm = self._max(p.finished_at, p.last_activity)
            makespan = pm if makespan is None else self._max(makespan, pm)
        total = procs[0].stall_time
        for p in procs[1:]:
            out = self._slot()
            self.tape.code.append(
                (_I_ADDS, out, total[1], p.stall_time[1])
            )
            total = (total[0] + p.stall_time[0], out)
        tape = self.tape
        tape.makespan_slot = makespan[1]
        tape.stall_slot = total[1]
        return {
            "makespan": makespan[0],
            "total_stall_time": total[0],
            "total_messages": self._total_messages,
            "events_run": events,
        }

    # -- activation plumbing with dedup-key constraints --------------

    def _sched_activation(self, proc, t) -> None:
        self._fp.add(proc.rank)
        pending = proc.pending_activations
        hit = False
        for kv, (_kid, kslot) in pending.items():
            if kv == t[0]:
                self._con2(_C_EQ, t[1], kslot)
                hit = True
            else:
                self._con2(_C_NE, t[1], kslot)
        if not hit:
            pending[t[0]] = (
                self._sched(t, _EV_ACTIVATION, proc, t),
                t[1],
            )

    def _supersede_activations(self, proc, until) -> None:
        self._fp.add(proc.rank)
        pending = proc.pending_activations
        cur_seq = self._cur_seq
        stale = []
        for kv, (kid, kslot) in pending.items():
            if kv < until[0]:
                self._con2(_C_LT, kslot, until[1])
                # A cancelled entry must still be *in the queue* at the
                # moment of cancellation — if a replayed point moved it
                # before the current event, it would pop and execute
                # first.  Pin the pop order.
                self._order(cur_seq, kid)
                stale.append(kv)
            else:
                self._con2(_C_LE, until[1], kslot)
        if stale:
            cancelled = self._cancelled
            for kv in stale:
                cancelled.add(pending.pop(kv)[0])

    def _on_activation(self, proc, t) -> None:
        proc.pending_activations.pop(t[0], None)
        self._activate(proc)

    # -- interpreter loop (ports evaluator._activate) ----------------

    def _activate(self, proc) -> None:
        now = self._now
        rank = proc.rank
        self._fp.add(rank)
        while True:
            state = proc.state
            if state == _DONE:
                if proc.pending_inject is not None:
                    self._try_inject(proc)
                if proc.arrived:
                    self._try_drain(proc)
                return
            if self._lt(now, proc.busy_until):
                self._sched_activation(proc, proc.busy_until)
                return
            if state == _SLEEPING or state == _WAIT_BARRIER:
                if proc.arrived:
                    self._try_drain(proc)
                return
            if proc.pending_inject is not None:
                if self._try_inject(proc):
                    proc.state = _RUNNING
                    continue
                proc.state = _STALL_SEND
                if proc.arrived:
                    self._try_drain(proc)
                return
            op = proc.pending
            if op is None:
                ip = proc.ip
                if ip >= proc.n_ops:
                    proc.state = _DONE
                    proc.finished_at = now
                    if proc.arrived:
                        self._try_drain(proc)
                    return
                op = proc.ops[ip]
                proc.ip = ip + 1
                proc.pending = op
                if op[0] == OP_POLL:
                    proc.poll_drained = 0
            kind = op[0]
            if kind == OP_SEND:
                # earliest = max(last_send_start + si, port_free): the
                # machine's branchy form is value-equal to the fold.
                earliest = self._max(
                    self._add(
                        proc.last_send_start, _T_SI, 0.0, self._si
                    ),
                    proc.port_free,
                )
                if self._lt(now, earliest):
                    proc.state = _WAIT_GAP
                    self._sched_activation(proc, earliest)
                    if proc.arrived:
                        self._try_drain(proc)
                    return
                end = self._add(now, _T_O, 0.0, self._o)
                proc.pending_inject = _TMsg(rank, op[1], op[3], op[2])
                self._total_messages += 1
                proc.last_send_start = now
                proc.sends += 1
                proc.busy_until = end
                proc.last_activity = self._max(proc.last_activity, end)
                self._sched(end, _EV_INJECT, proc)
                proc.state = _RUNNING
                ip = proc.ip
                if ip >= proc.n_ops:
                    proc.pending = None
                    proc.state = _DONE
                    proc.finished_at = end
                    return
                op = proc.ops[ip]
                proc.ip = ip + 1
                proc.pending = op
                if op[0] == OP_POLL:
                    proc.poll_drained = 0
                return
            if kind == OP_RECV:
                if self._mailbox_take(proc, op[1]):
                    proc.pending = None
                    proc.state = _RUNNING
                    continue
                proc.state = _WAIT_RECV
                if proc.arrived:
                    self._try_drain(proc)
                return
            if kind == OP_COMPUTE:
                cycles = op[1]
                if self._jitter is not None:
                    cycles = float(self._jitter(rank, cycles))
                    if cycles < 0:
                        raise SimulationError(
                            f"compute_jitter returned negative cycles "
                            f"{cycles} for proc {rank}"
                        )
                end = self._add(now, _T_LIT, cycles, cycles)
                proc.busy_until = end
                proc.last_activity = self._max(proc.last_activity, end)
                proc.pending = None
                proc.state = _RUNNING
                if cycles > 0:
                    if proc.pending_activations:
                        self._supersede_activations(proc, end)
                    self._sched_activation(proc, end)
                    return
                continue
            if kind == OP_SLEEP:
                proc.state = _SLEEPING
                wake = self._add(now, _T_LIT, op[1], op[1])
                proc.pending = None
                self._sched(wake, _EV_WAKE, proc, wake)
                if proc.arrived:
                    self._try_drain(proc)
                return
            if kind == OP_POLL:
                if proc.arrived:
                    gate = self._add(
                        proc.last_recv_start, _T_G, 0.0, self._g
                    )
                    if not self._lt(now, gate):
                        proc.state = _POLLING
                        self._try_drain(proc)
                        return
                proc.pending = None
                proc.state = _RUNNING
                continue
            if kind == OP_NOW:
                assumed = self._lit(op[1])
                if now[0] != assumed[0]:
                    raise TimingDivergence(
                        f"proc {rank} observed Now()={now[0]} at the "
                        f"recording reference but the schedule assumed "
                        f"{op[1]} — this point belongs to a different "
                        "branch-split region"
                    )
                # A replayed point takes this schedule's control flow
                # only if it reproduces the compiled clock reading.
                self._con2(_C_EQ, now[1], assumed[1])
                proc.pending = None
                continue
            # OP_BARRIER
            proc.pending = None
            proc.state = _WAIT_BARRIER
            self._fp.add(self._P)
            waiting = self._barrier_waiting
            waiting.append(rank)
            if len(waiting) == self._P:
                self._release_barrier()
            elif proc.arrived:
                self._try_drain(proc)
            return

    # -- receive side ------------------------------------------------

    def _mailbox_take(self, proc, tag) -> bool:
        mailbox = proc.mailbox
        if tag is None:
            if mailbox:
                mailbox.pop(0)
                return True
            return False
        for i, t in enumerate(mailbox):
            if t == tag:
                del mailbox[i]
                return True
        return False

    def _try_drain(self, proc) -> None:
        self._fp.add(proc.rank)
        if not proc.arrived or proc.state == _RUNNING:
            return
        now = self._now
        if self._lt(now, proc.busy_until):
            self._sched_activation(proc, proc.busy_until)
            return
        if proc.pending_inject is not None and proc.stall_started is None:
            return
        earliest = self._add(proc.last_recv_start, _T_G, 0.0, self._g)
        if self._lt(now, earliest):
            self._sched_activation(proc, earliest)
            return
        msg = proc.arrived.pop(0)
        end = self._add(now, _T_O, 0.0, self._o)
        rank = proc.rank
        proc.last_recv_start = now
        proc.busy_until = end
        proc.receives += 1
        proc.last_activity = self._max(proc.last_activity, end)
        if proc.pending_activations:
            self._supersede_activations(proc, end)
        self._inflight_to[rank] -= 1
        if self._stall_queue[rank]:
            self._release_dst_slot(rank)
        self._sched(end, _EV_RECV_DONE, proc, msg)

    def _on_recv_done(self, proc, msg) -> None:
        self._fp.add(proc.rank)
        state = proc.state
        tag = msg.tag
        if state == _WAIT_RECV and not proc.mailbox:
            want = proc.pending[1]
            if want is None or want == tag:
                proc.pending = None
                proc.state = _RUNNING
                self._activate(proc)
                return
        proc.mailbox.append(tag)
        if state == _POLLING:
            proc.poll_drained += 1
            self._activate(proc)
            return
        if state == _WAIT_RECV:
            if self._mailbox_take(proc, proc.pending[1]):
                proc.pending = None
                proc.state = _RUNNING
                self._activate(proc)
                return
        if proc.arrived and proc.state != _RUNNING:
            self._try_drain(proc)
        if proc.state == _STALL_SEND or proc.state == _WAIT_GAP:
            self._sched_activation(
                proc, self._max(self._now, proc.busy_until)
            )

    # -- injection / capacity ----------------------------------------

    def _on_inject(self, proc) -> None:
        self._fp.add(proc.rank)
        if proc.pending_inject is None:
            return
        if self._try_inject(proc):
            self._activate(proc)
        else:
            if proc.state != _DONE:
                proc.state = _STALL_SEND
            if proc.arrived:
                self._try_drain(proc)

    def _try_inject(self, proc) -> bool:
        msg = proc.pending_inject
        now = self._now
        rank = msg.src
        dst = msg.dst
        self._fp.add(rank)
        self._fp.add(dst)
        if self._enforce:
            needs_src = self._cap_ge(self._inflight_from[rank])
            needs_dst = self._cap_ge(self._inflight_to[dst])
            if needs_src or needs_dst:
                self._park(proc, dst)
                return False
        if proc.stall_started is not None:
            out = self._slot()
            self.tape.code.append(
                (
                    _I_STALL,
                    out,
                    proc.stall_time[1],
                    now[1],
                    proc.stall_started[1],
                )
            )
            proc.stall_time = (
                proc.stall_time[0] + (now[0] - proc.stall_started[0]),
                out,
            )
            proc.last_activity = self._max(proc.last_activity, now)
            proc.stall_started = None
        if proc.queued_on is not None:
            self._stall_queue[proc.queued_on].remove(rank)
            proc.queued_on = None
        words = msg.words
        fixed = self._flight_fixed
        if words > 1:
            k = float(words - 1)
            gl = self._Gl or 0.0
            # stream > 0 iff the per-point long Gap > 0 (k >= 1): a
            # grid-dependent branch, so it needs its own constraint.
            positive = k * gl > 0
            if ("gl", positive) not in self._cap_seen:
                self._cap_seen.add(("gl", positive))
                self.tape.cons.append((_C_GLPOS, positive))
            if fixed is not None:
                # Fixed fast path: arrive = (now + stream) + flight.
                withstream = self._add(now, _T_GLONG, k, k * gl)
                msg.arrive = self._add(
                    withstream, fixed[0], fixed[1], fixed[2]
                )
                if positive:
                    proc.port_free = withstream
            else:
                # Fabric path: arrive = submit(now) + stream, with
                # port_free = now + stream computed separately — the
                # machine's exact expressions.
                msg.arrive = self._add(
                    self._flight_submit(now, rank, dst),
                    _T_GLONG,
                    k,
                    k * gl,
                )
                if positive:
                    proc.port_free = self._add(now, _T_GLONG, k, k * gl)
        elif fixed is not None:
            msg.arrive = self._add(now, fixed[0], fixed[1], fixed[2])
        else:
            msg.arrive = self._flight_submit(now, rank, dst)
        self._inflight_from[rank] += 1
        self._inflight_to[dst] += 1
        proc.pending_inject = None
        self._sched(msg.arrive, _EV_ARRIVAL, msg)
        return True

    def _flight_submit(self, now, src: int, dst: int):
        """Tape the fabric path's ``submit`` arrival (pre-streaming)."""
        model = self._flight_model
        if model is not None:
            # LatencyFabric.submit: t + model.draw(src, dst).  Record
            # the stream *index*; replay supplies per-point values.
            # No ancestor edge for the draw term: nothing structural
            # guarantees another point's draw keeps the sum monotone,
            # so every ordering constraint on it stays explicit.
            idx = len(self.draw_pairs)
            val = float(model.draw(src, dst))
            self.draw_pairs.append((src, dst))
            self._fp.add(self._P + 1)
            out = self._slot()
            self.tape.code.append((_I_ADD, out, now[1], _T_DRAW, idx))
            return (now[0] + val, out)
        # TopologyFabric.submit: (t + serialization) + hops * hop_delay
        # — both terms pure functions of (src, dst), literal on every
        # grid point.
        fab = self._flight_topo
        key = (src, dst)
        hop = self._topo_flight.get(key)
        if hop is None:
            hop = len(fab._route_links(src, dst)) * fab.hop_delay
            self._topo_flight[key] = hop
        ser = fab.serialization
        return self._add(self._add(now, _T_LIT, ser, ser), _T_LIT, hop, hop)

    def _park(self, proc, dst) -> None:
        if proc.stall_started is None:
            proc.stall_started = self._now
        if proc.queued_on is None:
            proc.queued_on = dst
            self._stall_queue[dst].append(proc.rank)

    def _release_src_slot(self, src: int) -> None:
        self._fp.add(src)
        proc = self._procs[src]
        if proc.stall_started is None or proc.pending_inject is None:
            return
        dst = proc.pending_inject.dst
        self._fp.add(dst)
        admitted = not self._cap_ge(
            self._inflight_from[src]
        ) and not self._cap_ge(self._inflight_to[dst])
        if admitted:
            self._sched_activation(
                proc, self._max(self._now, proc.busy_until)
            )

    def _release_dst_slot(self, dst: int) -> None:
        self._fp.add(dst)
        queue = self._stall_queue[dst]
        if not queue:
            return
        budget = self._capacity - self._inflight_to[dst]
        for rank in queue:
            # budget <= 0 iff (inflight + admissions so far) >= capacity;
            # that count is path-structural, the capacity is per-point.
            if self._cap_ge(self._capacity - budget):
                break
            self._fp.add(rank)
            admitted = not self._cap_ge(self._inflight_from[rank])
            if admitted:
                budget -= 1
                waiter = self._procs[rank]
                self._sched_activation(
                    waiter, self._max(self._now, waiter.busy_until)
                )

    def _on_arrival(self, msg) -> None:
        src = msg.src
        self._fp.add(src)
        self._fp.add(msg.dst)
        self._inflight_from[src] -= 1
        src_proc = self._procs[src]
        if src_proc.stall_started is not None:
            self._release_src_slot(src)
        dst = self._procs[msg.dst]
        dst.arrived.append(msg)
        if dst.state != _RUNNING:
            if not self._lt(self._now, dst.busy_until):
                self._try_drain(dst)
            else:
                self._sched_activation(dst, dst.busy_until)

    # -- sleep / barrier ---------------------------------------------

    def _on_wake(self, proc, wake) -> None:
        self._fp.add(proc.rank)
        if proc.state == _SLEEPING and not self._lt(self._now, wake):
            if self._lt(self._now, proc.busy_until):
                self._sched(proc.busy_until, _EV_WAKE, proc, wake)
                return
            proc.state = _RUNNING
            self._activate(proc)

    def _release_barrier(self) -> None:
        self._fp.add(self._P)
        release = self._add(
            self._now, _T_LIT, self._hw_barrier, self._hw_barrier
        )
        waiting = self._barrier_waiting
        self._barrier_waiting = []
        for rank in waiting:
            self._fp.add(rank)
            proc = self._procs[rank]
            self._sched(
                self._max(release, proc.busy_until), _EV_BARRIER, rank
            )

    def _on_barrier_release(self, rank: int) -> None:
        self._fp.add(rank)
        proc = self._procs[rank]
        if proc.state == _WAIT_BARRIER:
            proc.state = _RUNNING
            self._activate(proc)

    def _check_completion(self) -> None:
        stuck = [p.rank for p in self._procs if p.state != _DONE]
        if stuck:
            raise SimulationError(
                f"deadlock: procs {stuck} never finished"
            )
        for proc in self._procs:
            if proc.arrived or proc.pending_inject is not None:
                raise SimulationError(
                    f"proc {proc.rank} ended mid-flight"
                )


@dataclass(slots=True)
class GridResult:
    """Per-point results of a grid evaluation, in submission order."""

    makespans: list[float]
    total_stall_times: list[float]
    #: Number of control-flow regions recorded (reference runs).
    tapes: int
    #: Points the tapes did not cover, evaluated scalar (exact, slower).
    fallbacks: int
    #: Points whose clock observations contradict every recorded
    #: ``OP_NOW`` assumption — their entries are *unfilled*; the caller
    #: recompiles them at their own parameters (:func:`evaluate_forked`).
    divergent: list[int] = field(default_factory=list)
    #: True when produced by the symmetry-folded path (:mod:`.fold`):
    #: per-class evaluation, ``classes`` equivalence classes standing
    #: in for P ranks.  Unfilled ``divergent`` entries there are
    #: points the fold refuses at their own parameters (e.g. a
    #: capacity stall) — the caller evaluates them unfolded.
    folded: bool = False
    classes: int = 0


@dataclass(slots=True)
class SeedGridResult:
    """Per-(point, seed) results, point-major: column ``p * n_seeds + s``."""

    makespans: list[float]
    total_stall_times: list[float]
    n_points: int
    n_seeds: int
    #: Number of control-flow regions recorded (reference runs).
    tapes: int
    #: Columns the tapes did not cover, evaluated scalar (exact, slower).
    fallbacks: int
    #: Columns divergent from every recorded ``OP_NOW`` assumption
    #: (unfilled — see :class:`GridResult`).
    divergent: list[int] = field(default_factory=list)
    #: Folded-path markers, for API symmetry with :class:`GridResult`
    #: (seeded draws are not foldable today, so always the defaults).
    folded: bool = False
    classes: int = 0


def _term_values(term: int, k, arrs):
    L, o, g, si, Gl, D = arrs
    if term == _T_LIT:
        return k
    if term == _T_L:
        return L
    if term == _T_O:
        return o
    if term == _T_G:
        return g
    if term == _T_SI:
        return si
    if term == _T_GLONG:
        return k * Gl
    return D[k]  # _T_DRAW: k is the draw-stream index


#: Constraint rows batched per fancy-indexing chunk — bounds the
#: (rows x npts) comparison temporaries to a few MB.
_CONS_CHUNK = 512


def _replay_numpy(tape: _Tape, arrs, caps):
    np = _np
    npts = len(caps)
    # One (slot, point) matrix; ``out=`` targets write rows in place so
    # the code loop allocates no temporaries.  Slots are SSA, so an
    # instruction's output row never aliases its inputs.
    S = np.empty((tape.n_slots, npts), dtype=float)
    for ins in tape.code:
        op = ins[0]
        if op == _I_ADD:
            np.add(
                S[ins[2]], _term_values(ins[3], ins[4], arrs),
                out=S[ins[1]],
            )
        elif op == _I_MAX:
            np.maximum(S[ins[2]], S[ins[3]], out=S[ins[1]])
        elif op == _I_CONST:
            S[ins[1]] = _term_values(ins[2], ins[3], arrs)
        elif op == _I_ADDS:
            np.add(S[ins[2]], S[ins[3]], out=S[ins[1]])
        elif op == _I_WADD:
            np.multiply(S[ins[3]], ins[4], out=S[ins[1]])
            np.add(S[ins[2]], S[ins[1]], out=S[ins[1]])
        else:  # _I_STALL
            np.subtract(S[ins[3]], S[ins[4]], out=S[ins[1]])
            np.add(S[ins[2]], S[ins[1]], out=S[ins[1]])
    mk = S[tape.makespan_slot].copy()
    st = S[tape.stall_slot].copy()
    # Bucket the constraints by kind, then check each bucket as a
    # handful of matrix comparisons instead of one python-dispatched
    # array op per constraint — the replay hot path for large tapes.
    by_kind: list = [[] for _ in range(7)]
    for con in tape.cons:
        by_kind[con[0]].append(con)
    ok = np.ones(npts, dtype=bool)
    for kind in (_C_LE, _C_LT, _C_EQ, _C_NE, _C_CLAMP):
        rows = by_kind[kind]
        for i in range(0, len(rows), _CONS_CHUNK):
            chunk = rows[i : i + _CONS_CHUNK]
            a = S[np.fromiter((c[1] for c in chunk), dtype=np.intp)]
            b = S[np.fromiter((c[2] for c in chunk), dtype=np.intp)]
            if kind == _C_LE:
                res = a <= b
            elif kind == _C_LT:
                res = a < b
            elif kind == _C_EQ:
                res = a == b
            elif kind == _C_NE:
                res = a != b
            else:  # _C_CLAMP
                res = (a < b) & (a >= b - _PAST_TOL)
            ok &= res.all(axis=0)
            if not ok.any():
                return ok, mk, st
    cap_rows = by_kind[_C_CAP]
    if cap_rows:
        counts = np.fromiter(
            (c[1] for c in cap_rows), dtype=np.int64
        )
        observed = np.fromiter(
            (c[2] for c in cap_rows), dtype=bool
        )
        res = (counts[:, None] >= caps[None, :]) == observed[:, None]
        ok &= res.all(axis=0)
    for con in by_kind[_C_GLPOS]:
        ok &= (arrs[4] > 0) == con[1]
        if not ok.any():
            break
    return ok, mk, st


def _replay_python(tape: _Tape, pts, caps):
    """Scalar replay of one tape at each point: exact, numpy-free."""
    oks = []
    mks = []
    sts = []
    for (L, o, g, si, Gl, D), cap in zip(pts, caps):
        arrs = (L, o, g, si, Gl, D)
        slots: list = [0.0] * tape.n_slots
        for ins in tape.code:
            op = ins[0]
            if op == _I_ADD:
                slots[ins[1]] = slots[ins[2]] + _term_values(
                    ins[3], ins[4], arrs
                )
            elif op == _I_MAX:
                a = slots[ins[2]]
                b = slots[ins[3]]
                slots[ins[1]] = a if a >= b else b
            elif op == _I_CONST:
                slots[ins[1]] = _term_values(ins[2], ins[3], arrs)
            elif op == _I_ADDS:
                slots[ins[1]] = slots[ins[2]] + slots[ins[3]]
            elif op == _I_WADD:
                slots[ins[1]] = slots[ins[2]] + ins[4] * slots[ins[3]]
            else:
                slots[ins[1]] = slots[ins[2]] + (
                    slots[ins[3]] - slots[ins[4]]
                )
        ok = True
        for con in tape.cons:
            c = con[0]
            if c == _C_LE:
                ok = slots[con[1]] <= slots[con[2]]
            elif c == _C_LT:
                ok = slots[con[1]] < slots[con[2]]
            elif c == _C_EQ:
                ok = slots[con[1]] == slots[con[2]]
            elif c == _C_NE:
                ok = slots[con[1]] != slots[con[2]]
            elif c == _C_CLAMP:
                t, n = slots[con[1]], slots[con[2]]
                ok = (t < n) and (t >= n - _PAST_TOL)
            elif c == _C_CAP:
                ok = (con[1] >= cap) == con[2]
            else:
                ok = (Gl > 0) == con[1]
            if not ok:
                break
        oks.append(bool(ok))
        mks.append(slots[tape.makespan_slot])
        sts.append(slots[tape.stall_slot])
    return oks, mks, sts


def _grid_timing(pts, latency, fabric):
    """Resolve the grid's shared timing configuration.

    The vectorized analogue of :func:`.evaluator._resolve_timing`:
    same mutual-exclusion and bound validation (machine-identical
    ``ValueError`` messages, checked at *every* grid point), returning
    the recorder ``timing`` spec plus the latency model whose draw
    stream feeds the replay (``None`` off the draw path).
    """
    if fabric is not None:
        if latency is not None:
            raise ValueError(
                "give latency or fabric, not both (a plain latency "
                "model is run as a LatencyFabric)"
            )
        if fabric.lossy:
            raise ValueError(
                "the compiled evaluator does not support lossy "
                "fabrics: ARQ timeout-and-retry is timing-dependent "
                "control flow — use the event machine"
            )
        for p in pts:
            if fabric.bound > p.L + 1e-12:
                raise ValueError(
                    f"fabric unloaded bound {fabric.bound} exceeds "
                    f"L={p.L}"
                )
        if type(fabric) is LatencyFabric:
            model = fabric.model
            if type(model) is FixedLatency:
                return ("const", float(model.L)), None
            return ("draw", model), model
        if type(fabric) is TopologyFabric:
            return ("topo", fabric), None
        raise ValueError(
            "the compiled grid replay supports LatencyFabric and the "
            f"deterministic TopologyFabric, not {type(fabric).__name__}"
            " — use the event machine"
        )
    if latency is not None:
        for p in pts:
            if latency.L > p.L + 1e-12:
                raise ValueError(
                    f"latency model bound {latency.L} exceeds L={p.L}"
                )
        if type(latency) is FixedLatency:
            return ("const", float(latency.L)), None
        return ("draw", latency), latency
    return ("params",), None


def _validate_grid(compiled, pts, hw_barrier_cost, max_tapes, capacity):
    """Shared grid validation; returns per-point effective capacities."""
    if hw_barrier_cost < 0:
        raise ValueError(
            f"hw_barrier_cost must be >= 0, got {hw_barrier_cost}"
        )
    if max_tapes < 0:
        raise ValueError(f"max_tapes must be >= 0, got {max_tapes}")
    for p in pts:
        if p.P != compiled.P:
            raise ValueError(
                f"grid point P={p.P} does not match compiled "
                f"P={compiled.P}; group grid points by P"
            )
        if compiled.max_words > 1 and getattr(p, "G", None) is None:
            raise SimulationError(
                f"multi-word send (words={compiled.max_words}) requires "
                "LogGP parameters with a per-word gap G"
            )
    caps = [
        (p.capacity if capacity is None else capacity) for p in pts
    ]
    for c in caps:
        if c < 1:
            raise ValueError(f"capacity must be >= 1, got {c}")
    return caps


def _resolve_use_numpy(use_numpy):
    if use_numpy is None:
        return _np is not None
    if use_numpy and _np is None:
        raise RuntimeError("numpy requested but not importable")
    return use_numpy


def _raw_point(p):
    return (
        float(p.L),
        float(p.o),
        float(p.g),
        float(p.send_interval),
        float(getattr(p, "G", None) or 0.0),
    )


def evaluate_grid(
    compiled: CompiledProgram,
    grid: Sequence,
    *,
    latency=None,
    fabric=None,
    enforce_capacity: bool = True,
    capacity: int | None = None,
    hw_barrier_cost: float = 0.0,
    compute_jitter: Callable[[int, float], float] | None = None,
    max_events: int = 50_000_000,
    max_tapes: int = 32,
    use_numpy: bool | None = None,
) -> GridResult:
    """Evaluate one compiled program at every parameter point in ``grid``.

    Each point's makespan and total stall time are exactly what
    :func:`.evaluator.evaluate` (and therefore the machine) produces
    there — vectorization changes cost, never values.  Points are
    covered by up to ``max_tapes`` recorded control-flow regions;
    uncovered stragglers run the scalar evaluator.

    Args:
        compiled: output of :func:`compile_programs`.
        grid: LogPParams points; every ``P`` must equal ``compiled.P``
            (vectorization is over ``(L, o, g)`` — fan out over ``P``
            by compiling per processor count, as ``sweep.grid_map``
            does).
        latency: a :class:`~repro.sim.latency.LatencyModel` shared by
            every point, exactly as the machine takes it: reset before
            each point's run, drawn once per injection in event order.
            Seeded models replay vectorized through the tape's draw
            inputs.  Mutually exclusive with ``fabric``.
        fabric: a :class:`~repro.sim.net.LatencyFabric` or
            deterministic :class:`~repro.sim.net.TopologyFabric`;
            per-hop routed flight lowers to per-pair literals.
        use_numpy: force (True) or forbid (False) the numpy replay;
            ``None`` uses numpy when importable.

    A ``uses_now`` schedule (compiled by :func:`.evaluator.compile_at`)
    evaluates only at points reproducing its assumed clock readings;
    the rest are returned *unfilled* in ``GridResult.divergent`` for
    the caller to recompile (:func:`evaluate_forked` automates this).
    """
    pts = list(grid)
    if not pts:
        return GridResult([], [], 0, 0)
    caps = _validate_grid(compiled, pts, hw_barrier_cost, max_tapes, capacity)
    timing, model = _grid_timing(pts, latency, fabric)
    if fabric is not None:
        fabric.reset()
        fabric.attach(None, compiled.P, False)
    use_numpy = _resolve_use_numpy(use_numpy)
    n = len(pts)
    raw = [_raw_point(p) for p in pts]
    makespans = [0.0] * n
    stalls = [0.0] * n
    remaining = list(range(n))
    tapes = 0
    divergent: list[int] = []
    while remaining and tapes < max_tapes:
        ref = remaining[0]
        if model is not None:
            model.reset()
        rec = _TapeEvaluator(
            compiled,
            pts[ref],
            enforce_capacity=enforce_capacity,
            capacity=caps[ref],
            hw_barrier_cost=hw_barrier_cost,
            compute_jitter=compute_jitter,
            max_events=max_events,
            timing=timing,
        )
        try:
            out = rec.run()
        except TimingDivergence:
            divergent.append(ref)
            remaining = remaining[1:]
            continue
        tapes += 1
        makespans[ref] = out["makespan"]
        stalls[ref] = out["total_stall_time"]
        rest = remaining[1:]
        if not rest:
            remaining = []
            break
        if model is not None and rec.draw_pairs:
            # One shared model: its params are fixed at construction
            # and it is reset per point, so every point sees the same
            # draw sequence — per-tape constants on the draw inputs.
            model.reset()
            draws = [float(v) for v in model.draw_batch(rec.draw_pairs)]
        else:
            draws = None
        if use_numpy:
            np = _np
            arrs = tuple(
                np.asarray([raw[i][k] for i in rest], dtype=float)
                for k in range(5)
            ) + (draws,)
            cap_arr = np.asarray([caps[i] for i in rest], dtype=np.int64)
            ok, mk, st = _replay_numpy(rec.tape, arrs, cap_arr)
            next_remaining = []
            for j, i in enumerate(rest):
                if ok[j]:
                    makespans[i] = float(mk[j])
                    stalls[i] = float(st[j])
                else:
                    next_remaining.append(i)
            remaining = next_remaining
        else:
            ok, mk, st = _replay_python(
                rec.tape,
                [(*raw[i], draws) for i in rest],
                [caps[i] for i in rest],
            )
            next_remaining = []
            for j, i in enumerate(rest):
                if ok[j]:
                    makespans[i] = mk[j]
                    stalls[i] = st[j]
                else:
                    next_remaining.append(i)
            remaining = next_remaining
    fallbacks = 0
    for i in remaining:
        try:
            res = evaluate(
                compiled,
                pts[i],
                latency=latency,
                fabric=fabric,
                enforce_capacity=enforce_capacity,
                capacity=capacity,
                hw_barrier_cost=hw_barrier_cost,
                compute_jitter=compute_jitter,
                max_events=max_events,
            )
        except TimingDivergence:
            divergent.append(i)
            continue
        fallbacks += 1
        makespans[i] = res.makespan
        stalls[i] = res.total_stall_time
    divergent.sort()
    return GridResult(makespans, stalls, tapes, fallbacks, divergent)


def evaluate_seed_grid(
    compiled: CompiledProgram,
    grid: Sequence,
    seeds: Sequence[int],
    latency_factory,
    *,
    enforce_capacity: bool = True,
    capacity: int | None = None,
    hw_barrier_cost: float = 0.0,
    compute_jitter: Callable[[int, float], float] | None = None,
    max_events: int = 50_000_000,
    max_tapes: int = 32,
    use_numpy: bool | None = None,
) -> SeedGridResult:
    """Evaluate a compiled program over a (point x seed) product grid.

    Column ``p * len(seeds) + s`` is exactly
    ``LogPMachine(grid[p], latency=latency_factory(grid[p], seeds[s]))``
    run on the compiled program's factory — bit identical, enforced by
    the seed-axis differential tests.  One recorded tape covers every
    column whose control flow matches; the per-seed latency draws enter
    the replay as a draws matrix (one row per consumed draw, one column
    per (point, seed) pair), so a 500-seed sweep is a single vectorized
    evaluation rather than 500 machine runs.

    Args:
        compiled: output of :func:`compile_programs`.
        grid: LogPParams points, all with ``P == compiled.P``.
        seeds: seed values, passed to ``latency_factory`` verbatim.
        latency_factory: ``(params, seed) ->``
            :class:`~repro.sim.latency.LatencyModel`; called once per
            column.  Models are reset before every use, so a column
            replays the machine's exact draw sequence.

    ``FixedLatency`` columns take the machine's fixed fast path (a
    different float ordering than drawn flights), so they share tapes
    only with each other; mixed factories are handled by partitioning.
    """
    pts = list(grid)
    seed_list = list(seeds)
    npts = len(pts)
    nseeds = len(seed_list)
    ncols = npts * nseeds
    if ncols == 0:
        return SeedGridResult([], [], npts, nseeds, 0, 0)
    caps = _validate_grid(compiled, pts, hw_barrier_cost, max_tapes, capacity)
    use_numpy = _resolve_use_numpy(use_numpy)
    raw = [_raw_point(p) for p in pts]
    models = []
    for p in pts:
        for s in seed_list:
            m = latency_factory(p, s)
            if m.L > p.L + 1e-12:
                raise ValueError(
                    f"latency model bound {m.L} exceeds L={p.L}"
                )
            models.append(m)
    makespans = [0.0] * ncols
    stalls = [0.0] * ncols
    tapes = 0
    fallbacks = 0
    divergent: list[int] = []
    drawn_cols = [
        c for c in range(ncols) if type(models[c]) is not FixedLatency
    ]
    fixed_cols = [
        c for c in range(ncols) if type(models[c]) is FixedLatency
    ]
    n_msgs = compiled.n_messages
    draw_cache: dict[int, list[float]] = {}

    def _draw_col(c: int, pairs) -> list[float]:
        """Column ``c``'s draw values along the tape's pair sequence.

        A pair-independent model's stream is a pure function of
        position, and every tape consumes exactly one draw per message,
        so the same values serve every tape — computed once per column
        instead of once per (tape, column).
        """
        mc = models[c]
        if not mc.pair_dependent and len(pairs) == n_msgs:
            cached = draw_cache.get(c)
            if cached is None:
                mc.reset()
                cached = [float(v) for v in mc.draw_batch(pairs)]
                draw_cache[c] = cached
            return cached
        mc.reset()
        return [float(v) for v in mc.draw_batch(pairs)]

    for group, is_fixed in ((drawn_cols, False), (fixed_cols, True)):
        remaining = group
        while remaining and tapes < max_tapes:
            ref = remaining[0]
            m = models[ref]
            p = pts[ref // nseeds]
            if is_fixed:
                timing = ("const_axis", float(m.L))
            else:
                m.reset()
                timing = ("draw", m)
            rec = _TapeEvaluator(
                compiled,
                p,
                enforce_capacity=enforce_capacity,
                capacity=caps[ref // nseeds],
                hw_barrier_cost=hw_barrier_cost,
                compute_jitter=compute_jitter,
                max_events=max_events,
                timing=timing,
            )
            try:
                out = rec.run()
            except TimingDivergence:
                divergent.append(ref)
                remaining = remaining[1:]
                continue
            tapes += 1
            makespans[ref] = out["makespan"]
            stalls[ref] = out["total_stall_time"]
            rest = remaining[1:]
            if not rest:
                remaining = []
                break
            pairs = rec.draw_pairs
            n_draws = 1 if is_fixed else len(pairs)
            rest_caps = [caps[c // nseeds] for c in rest]
            if use_numpy:
                np = _np
                if is_fixed:
                    D = np.asarray(
                        [[float(models[c].L) for c in rest]], dtype=float
                    )
                else:
                    D = np.asarray(
                        [_draw_col(c, pairs) for c in rest], dtype=float
                    ).reshape(len(rest), n_draws).T
                arrs = tuple(
                    np.asarray(
                        [raw[c // nseeds][k] for c in rest], dtype=float
                    )
                    for k in range(5)
                ) + (D,)
                cap_arr = np.asarray(rest_caps, dtype=np.int64)
                ok, mk, st = _replay_numpy(rec.tape, arrs, cap_arr)
                next_remaining = []
                for j, c in enumerate(rest):
                    if ok[j]:
                        makespans[c] = float(mk[j])
                        stalls[c] = float(st[j])
                    else:
                        next_remaining.append(c)
                remaining = next_remaining
            else:
                rows = []
                for c in rest:
                    if is_fixed:
                        dcol = [float(models[c].L)]
                    else:
                        dcol = _draw_col(c, pairs)
                    rows.append((*raw[c // nseeds], dcol))
                ok, mk, st = _replay_python(rec.tape, rows, rest_caps)
                next_remaining = []
                for j, c in enumerate(rest):
                    if ok[j]:
                        makespans[c] = mk[j]
                        stalls[c] = st[j]
                    else:
                        next_remaining.append(c)
                remaining = next_remaining
        for c in remaining:
            try:
                res = evaluate(
                    compiled,
                    pts[c // nseeds],
                    latency=models[c],
                    enforce_capacity=enforce_capacity,
                    capacity=capacity,
                    hw_barrier_cost=hw_barrier_cost,
                    compute_jitter=compute_jitter,
                    max_events=max_events,
                )
            except TimingDivergence:
                divergent.append(c)
                continue
            fallbacks += 1
            makespans[c] = res.makespan
            stalls[c] = res.total_stall_time
    divergent.sort()
    return SeedGridResult(
        makespans, stalls, npts, nseeds, tapes, fallbacks, divergent
    )


def evaluate_forked(
    programs,
    P: int,
    grid: Sequence,
    *,
    latency=None,
    fabric=None,
    enforce_capacity: bool = True,
    capacity: int | None = None,
    hw_barrier_cost: float = 0.0,
    compute_jitter: Callable[[int, float], float] | None = None,
    max_events: int = 50_000_000,
    max_tapes: int = 32,
    use_numpy: bool | None = None,
    max_forks: int | None = None,
) -> GridResult:
    """Branch-splitting grid evaluation of a timing-dependent program.

    A program that observes ``Now`` has no parameter-free schedule, but
    its control flow is still piecewise-constant over the grid: lower
    it at the first uncovered point (:func:`.evaluator.compile_at`),
    evaluate that schedule across the remaining points — the recorded
    ``OP_NOW`` equality constraints admit exactly the points sharing
    its branch decisions — and re-fork on the divergent rest.  Each
    fork resolves at least its own reference point, so the loop
    terminates; after ``max_forks`` regions (default: the ``max_tapes``
    budget) stragglers get an exact per-point recompile.  Results are
    bit-identical to the machine everywhere, and a program whose clock
    observations never reach a fixed point refuses loudly with
    :class:`~repro.sim.compiled.CompileError` (from ``compile_at``).

    ``programs`` must be a factory ``(rank, P) -> generator`` — each
    fork drives fresh generators.
    """
    pts = list(grid)
    n = len(pts)
    if n == 0:
        return GridResult([], [], 0, 0)
    if max_forks is None:
        max_forks = max_tapes
    makespans = [0.0] * n
    stalls = [0.0] * n
    remaining = list(range(n))
    tapes = 0
    fallbacks = 0
    forks = 0
    while remaining and forks < max_forks:
        ref = remaining[0]
        compiled = compile_at(
            programs,
            P,
            pts[ref],
            latency=latency,
            fabric=fabric,
            enforce_capacity=enforce_capacity,
            capacity=capacity,
            hw_barrier_cost=hw_barrier_cost,
            compute_jitter=compute_jitter,
            max_events=max_events,
        )
        forks += 1
        gr = evaluate_grid(
            compiled,
            [pts[i] for i in remaining],
            latency=latency,
            fabric=fabric,
            enforce_capacity=enforce_capacity,
            capacity=capacity,
            hw_barrier_cost=hw_barrier_cost,
            compute_jitter=compute_jitter,
            max_events=max_events,
            max_tapes=max_tapes,
            use_numpy=use_numpy,
        )
        tapes += gr.tapes
        fallbacks += gr.fallbacks
        div = set(gr.divergent)
        nxt = []
        for j, i in enumerate(remaining):
            if j in div:
                nxt.append(i)
            else:
                makespans[i] = gr.makespans[j]
                stalls[i] = gr.total_stall_times[j]
        if len(nxt) == len(remaining):  # pragma: no cover - compile_at
            # converged at ref, so ref always evaluates clean
            raise SimulationError(
                "branch-splitting made no progress over "
                f"{len(remaining)} points"
            )
        remaining = nxt
    for i in remaining:
        compiled = compile_at(
            programs,
            P,
            pts[i],
            latency=latency,
            fabric=fabric,
            enforce_capacity=enforce_capacity,
            capacity=capacity,
            hw_barrier_cost=hw_barrier_cost,
            compute_jitter=compute_jitter,
            max_events=max_events,
        )
        res = evaluate(
            compiled,
            pts[i],
            latency=latency,
            fabric=fabric,
            enforce_capacity=enforce_capacity,
            capacity=capacity,
            hw_barrier_cost=hw_barrier_cost,
            compute_jitter=compute_jitter,
            max_events=max_events,
        )
        fallbacks += 1
        makespans[i] = res.makespan
        stalls[i] = res.total_stall_time
    return GridResult(makespans, stalls, tapes, fallbacks)
