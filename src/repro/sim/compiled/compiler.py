"""Lower LogP programs to a static schedule.

The event machine replays a program by *running* it: generators yield
actions, the engine orders them in time, and resume values flow back in.
For a deterministic run none of that machinery affects *which* actions
execute — a program whose control flow does not depend on simulated time
performs the same action sequence under every ``(L, o, g)``.  The
compiler exploits that: it drives the generators once, at compile time,
with placeholder resume values, and records the flattened per-rank
action sequences as tuples of opcodes.  The result — a
:class:`CompiledProgram` — is **parameter-independent**: one compile
serves a single evaluation, a 500-seed differential, or an entire
``(L, o, g)`` grid.

Compile-time execution mirrors the machine's *matching* semantics
(which message satisfies which ``Recv``) without its timing:

* messages are delivered to a per-rank compile-time mailbox in program
  order; an untagged ``Recv`` takes the oldest, a tagged ``Recv`` scans
  for the oldest tag match — exactly the machine's mailbox discipline;
* ``Barrier`` releases only when all ``P`` ranks have reached it;
* programs that cannot finish without timing information — circular
  waits, a barrier some rank never reaches — fail compilation with
  :class:`CompileError` rather than compiling to a wrong schedule.

Restrictions (the price of timing-free lowering):

* ``Now`` is rejected by default: its resume value is simulated time,
  so any program observing it is timing-dependent by construction.
  The rejection is the distinct :class:`TimingDependentError` so
  callers can tell "needs a clock" from "cannot compile at all".
  Passing ``now_values`` (per-rank FIFO oracles of resume values)
  lowers such a program *at an assumed clock*: each ``Now`` records an
  ``(OP_NOW, value)`` op carrying the oracle value it consumed, and
  the evaluator checks the assumption at run time.
  :func:`repro.sim.compiled.compile_at` iterates compile→evaluate to a
  fixed point so the assumed values are the machine's true ones at one
  parameter point; the grid recorder turns each assumption into an
  equality constraint, so other points sharing the schedule replay
  vectorized and divergent points re-record (branch-splitting).
* ``Poll`` compiles (it is timing-only: the evaluator replays its drain
  semantics), but its compile-time resume value is always ``0`` —
  a program that *branches its action sequence* on the drained count is
  outside the deterministic-schedule contract this subsystem serves.
* ``Recv`` resume values carry the matched message's source, payload
  and tag, but ``sent_at``/``received_at`` are NaN — timestamps do not
  exist at compile time.  Programs that fold payloads commutatively
  (every collective in this repo) are unaffected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Sequence

from ..program import (
    Barrier,
    Compute,
    Now,
    Poll,
    ReceivedMessage,
    Recv,
    Send,
    Sleep,
)

__all__ = [
    "OP_SEND",
    "OP_RECV",
    "OP_COMPUTE",
    "OP_SLEEP",
    "OP_POLL",
    "OP_BARRIER",
    "OP_NOW",
    "CompileError",
    "TimingDependentError",
    "CompiledProgram",
    "compile_programs",
    "compile_representatives",
]

# Opcodes.  Each compiled op is a plain tuple with the opcode first:
#   (OP_SEND, dst, words, tag)
#   (OP_RECV, tag)
#   (OP_COMPUTE, cycles)
#   (OP_SLEEP, cycles)
#   (OP_POLL,)
#   (OP_BARRIER,)
#   (OP_NOW, assumed_time)
OP_SEND, OP_RECV, OP_COMPUTE, OP_SLEEP, OP_POLL, OP_BARRIER, OP_NOW = (
    range(7)
)

ProgramFactory = Callable[[int, int], Generator]


class CompileError(ValueError):
    """A program cannot be lowered to a static schedule."""


class TimingDependentError(CompileError):
    """The program observes ``Now`` — it needs a clock to lower.

    Raised by :func:`compile_programs` when no ``now_values`` oracle is
    supplied.  Distinct from a bare :class:`CompileError` so the grid
    layer can route such programs through the fixed-point
    branch-splitting path (:func:`repro.sim.compiled.compile_at`)
    instead of giving up.
    """


@dataclass(frozen=True, slots=True)
class CompiledProgram:
    """A LogP program flattened to per-rank opcode sequences.

    Parameter-independent: evaluate it at any ``LogPParams`` with
    ``P == self.P`` (see :func:`repro.sim.compiled.evaluate` and
    :func:`repro.sim.compiled.evaluate_grid`).
    """

    P: int
    #: ``ops[rank]`` is that rank's action sequence, in program order.
    ops: tuple[tuple[tuple, ...], ...]
    #: Per-rank program return values, recorded at compile time.
    values: tuple[Any, ...]
    #: Total number of sends across all ranks.
    n_messages: int
    #: Largest ``Send.words`` anywhere; > 1 requires LogGP params (G).
    max_words: int = 1
    uses_barrier: bool = False
    #: True when any rank observed ``Now``: the schedule embeds assumed
    #: clock readings (``OP_NOW`` ops) that the evaluator must check.
    uses_now: bool = False

    @property
    def n_ops(self) -> int:
        return sum(len(seq) for seq in self.ops)


@dataclass(slots=True)
class _RankState:
    """Compile-time execution state for one rank."""

    gen: Generator
    ops: list = field(default_factory=list)
    #: (src, payload, tag) triples delivered but not yet received.
    mailbox: list = field(default_factory=list)
    #: Unmatched Recv we are blocked on, or None.
    waiting_recv: Recv | None = None
    at_barrier: bool = False
    done: bool = False
    value: Any = None


def _take(mailbox: list, tag) -> "tuple | None":
    """Oldest-first mailbox take — the machine's matching discipline."""
    if tag is None:
        return mailbox.pop(0) if mailbox else None
    for i, msg in enumerate(mailbox):
        if msg[2] == tag:
            return mailbox.pop(i)
    return None


def compile_programs(
    programs: "ProgramFactory | Sequence[Generator]",
    P: int,
    *,
    now_values: "Sequence[Sequence[float]] | None" = None,
) -> CompiledProgram:
    """Drive ``programs`` to completion at compile time; record the ops.

    ``programs`` is either a factory ``(rank, P) -> generator`` (the
    machine's usual form) or a sequence of ``P`` already-built
    generators.  Either way the generators are *consumed* here.

    Args:
        now_values: per-rank FIFO oracles of ``Now`` resume values.
            When given, each ``Now`` consumes the next value for its
            rank (0.0 once a rank's oracle runs dry — the provisional
            first pass of :func:`repro.sim.compiled.compile_at`) and
            records it in an ``(OP_NOW, value)`` op.  Without it, any
            ``Now`` raises :class:`TimingDependentError`.

    Raises:
        TimingDependentError: on ``Now`` with no ``now_values`` oracle.
        CompileError: on an unknown action, an invalid or
            self-targeted send, a non-generator program, or a schedule
            that deadlocks at compile time (circular receive waits, a
            barrier not reached by every rank).
    """
    if P < 1:
        raise CompileError(f"P must be >= 1, got {P}")
    if callable(programs):
        gens = [programs(rank, P) for rank in range(P)]
    else:
        gens = list(programs)
        if len(gens) != P:
            raise CompileError(
                f"expected {P} programs, got {len(gens)}"
            )
    for rank, g in enumerate(gens):
        if not hasattr(g, "send"):
            raise CompileError(
                f"program for rank {rank} is not a generator "
                f"(got {type(g).__name__})"
            )
    ranks = [_RankState(gen=g) for g in gens]
    if now_values is None:
        now_feed = None
    else:
        if len(now_values) != P:
            raise CompileError(
                f"now_values must have one oracle per rank "
                f"({P}), got {len(now_values)}"
            )
        now_feed = [list(vals) for vals in now_values]
        now_cursor = [0] * P
    n_messages = 0
    max_words = 1
    uses_barrier = False
    uses_now = False
    remaining = P

    def _step(rank: int) -> bool:
        """Run one rank until it blocks or finishes.

        Returns True if at least one action was executed (progress).
        """
        nonlocal n_messages, max_words, uses_barrier, uses_now, remaining
        st = ranks[rank]
        progressed = False
        resume = None
        while True:
            if st.waiting_recv is not None:
                got = _take(st.mailbox, st.waiting_recv.tag)
                if got is None:
                    return progressed
                st.ops.append((OP_RECV, st.waiting_recv.tag))
                st.waiting_recv = None
                resume = ReceivedMessage(
                    src=got[0],
                    payload=got[1],
                    tag=got[2],
                    sent_at=math.nan,
                    received_at=math.nan,
                )
                progressed = True
            try:
                action = st.gen.send(resume)
            except StopIteration as stop:
                st.value = stop.value
                st.done = True
                remaining -= 1
                return True
            resume = None
            cls = type(action)
            if cls is Send:
                dst = action.dst
                if dst == rank:
                    raise CompileError(
                        f"proc {rank} tried to send to itself"
                    )
                if not 0 <= dst < P:
                    raise CompileError(
                        f"proc {rank} sent to invalid destination {dst} "
                        f"(P={P})"
                    )
                st.ops.append((OP_SEND, dst, action.words, action.tag))
                ranks[dst].mailbox.append(
                    (rank, action.payload, action.tag)
                )
                n_messages += 1
                if action.words > max_words:
                    max_words = action.words
                progressed = True
            elif cls is Recv:
                st.waiting_recv = action
            elif cls is Compute:
                st.ops.append((OP_COMPUTE, float(action.cycles)))
                progressed = True
            elif cls is Sleep:
                st.ops.append((OP_SLEEP, float(action.cycles)))
                progressed = True
            elif cls is Poll:
                st.ops.append((OP_POLL,))
                resume = 0
                progressed = True
            elif cls is Barrier:
                st.ops.append((OP_BARRIER,))
                st.at_barrier = True
                uses_barrier = True
                return True
            elif cls is Now:
                if now_feed is None:
                    raise TimingDependentError(
                        f"proc {rank} used Now: simulated time is not "
                        "available at compile time, so the schedule is "
                        "timing-dependent — run it on the event machine"
                    )
                feed = now_feed[rank]
                cur = now_cursor[rank]
                assumed = feed[cur] if cur < len(feed) else 0.0
                now_cursor[rank] = cur + 1
                st.ops.append((OP_NOW, assumed))
                resume = assumed
                uses_now = True
                progressed = True
            else:
                raise CompileError(
                    f"proc {rank} yielded unknown action {action!r}"
                )

    while remaining:
        progress = False
        for rank in range(P):
            st = ranks[rank]
            if st.done or st.at_barrier:
                continue
            if _step(rank):
                progress = True
            if all(r.at_barrier for r in ranks):
                # Barrier release: every rank reached it.
                for r in ranks:
                    r.at_barrier = False
                progress = True
        if not progress:
            blocked = []
            for rank, st in enumerate(ranks):
                if st.done:
                    continue
                if st.at_barrier:
                    blocked.append(f"proc {rank} waiting at a barrier")
                elif st.waiting_recv is not None:
                    tag = st.waiting_recv.tag
                    what = "a message" if tag is None else f"tag {tag!r}"
                    blocked.append(f"proc {rank} waiting to receive {what}")
                else:  # pragma: no cover - _step always blocks or finishes
                    blocked.append(f"proc {rank} blocked")
            raise CompileError(
                "schedule deadlocks at compile time: "
                + "; ".join(blocked)
            )

    return CompiledProgram(
        P=P,
        ops=tuple(tuple(st.ops) for st in ranks),
        values=tuple(st.value for st in ranks),
        n_messages=n_messages,
        max_words=max_words,
        uses_barrier=uses_barrier,
        uses_now=uses_now,
    )


def compile_iterable(
    programs: Iterable[Generator], P: int
) -> CompiledProgram:
    """Convenience wrapper: compile from any iterable of generators."""
    return compile_programs(list(programs), P)


def compile_representatives(
    programs: ProgramFactory,
    P: int,
    ranks: "Sequence[int]",
) -> dict[int, tuple[tuple, ...]]:
    """Compile only the listed ranks, each driven solo — Θ(reps), not Θ(P).

    The symmetry-folding layer (:mod:`.fold`) groups ranks into
    equivalence classes and needs one opcode schedule per class
    *representative*.  Building that through :func:`compile_programs`
    would instantiate and drive all ``P`` generators — exactly the
    Θ(P) cost folding exists to avoid.  This drives each listed rank's
    generator alone instead: a ``Recv`` resumes immediately with a
    placeholder :class:`~repro.sim.program.ReceivedMessage` (unknown
    ``src``, ``None`` payload), since no peer runs to deliver the real
    one.

    The contract this rests on is the fold layer's own eligibility
    shape: the rank's *action sequence* must not depend on the payload
    or source of a received message (forwarding an opaque payload is
    fine — folding only compares opcode skeletons, never payloads).  A
    program that branches on received data produces a wrong schedule
    here, which the fold layer's differential tests exist to catch;
    programs needing cross-rank resolution (``Barrier``) or a clock
    (``Now``) raise :class:`CompileError` because solo driving cannot
    resolve them faithfully.

    Returns ``{rank: ops}`` with the same per-rank op-tuple format as
    :class:`CompiledProgram.ops`.
    """
    if P < 1:
        raise CompileError(f"P must be >= 1, got {P}")
    out: dict[int, tuple[tuple, ...]] = {}
    for rank in ranks:
        if not 0 <= rank < P:
            raise CompileError(
                f"representative rank {rank} out of range (P={P})"
            )
        if rank in out:
            continue
        gen = programs(rank, P)
        if not hasattr(gen, "send"):
            raise CompileError(
                f"program for rank {rank} is not a generator "
                f"(got {type(gen).__name__})"
            )
        ops: list = []
        resume = None
        while True:
            try:
                action = gen.send(resume)
            except StopIteration:
                break
            resume = None
            cls = type(action)
            if cls is Send:
                dst = action.dst
                if dst == rank:
                    raise CompileError(
                        f"proc {rank} tried to send to itself"
                    )
                if not 0 <= dst < P:
                    raise CompileError(
                        f"proc {rank} sent to invalid destination {dst} "
                        f"(P={P})"
                    )
                ops.append((OP_SEND, dst, action.words, action.tag))
            elif cls is Recv:
                ops.append((OP_RECV, action.tag))
                resume = ReceivedMessage(
                    src=-1,
                    payload=None,
                    tag=action.tag,
                    sent_at=math.nan,
                    received_at=math.nan,
                )
            elif cls is Compute:
                ops.append((OP_COMPUTE, float(action.cycles)))
            elif cls is Sleep:
                ops.append((OP_SLEEP, float(action.cycles)))
            elif cls is Poll:
                ops.append((OP_POLL,))
                resume = 0
            elif cls is Barrier:
                raise CompileError(
                    f"proc {rank} used Barrier: barrier release needs "
                    "every rank, so a solo representative compile "
                    "cannot resolve it — use compile_programs"
                )
            elif cls is Now:
                raise TimingDependentError(
                    f"proc {rank} used Now: simulated time is not "
                    "available at compile time, so the schedule is "
                    "timing-dependent — run it on the event machine"
                )
            else:
                raise CompileError(
                    f"proc {rank} yielded unknown action {action!r}"
                )
        out[rank] = tuple(ops)
    return out
