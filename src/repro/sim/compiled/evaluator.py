"""Evaluate a compiled schedule — an engine-free port of the machine.

Bit-identity with :class:`repro.sim.machine.LogPMachine` is the whole
point, so this evaluator is deliberately *not* a clever topological
relaxation: send/recv interleavings on a rank (an arrival draining
during a gap wait, a stalled injection racing a drain at the same
timestamp) are resolved by event *order*, and reproducing the machine's
order exactly means reproducing its scheduling decisions exactly.  The
evaluator therefore ports the machine's handlers one-for-one —
activation, inject, arrival, drain, recv-done, wake, barrier release —
over the compiled opcode stream, with an inlined copy of the engine's
queue discipline (sorted insert with append fast path, FIFO tie-break
by schedule order, lazy cancellation, the 1e-12 past-tolerance clamp).
Every ``engine.schedule`` call in the machine has a ``_sched`` call
here, in the same program position, so sequence numbers — and therefore
tie-breaks — coincide.

What it drops is everything a deterministic run never touches:
generator dispatch and action allocation, trace records, the lossy/ARQ
machinery, Schedule assembly.  What remains is pure float arithmetic
over int opcodes — ~2× the machine's speed per run, and the reference
semantics for the vectorized grid replay in
:mod:`repro.sim.compiled.grid`.

Timing configuration mirrors the machine's: the default is the
inlined ``FixedLatency`` fast path, a seeded latency model (bare or
inside a :class:`~repro.sim.net.LatencyFabric`) is reset at run start
and drawn from once per injection in event order, and any non-lossy
fabric's ``submit`` is called at exactly the machine's call sites — so
the draw/submit sequences, and therefore the float operation
orderings, coincide bit for bit.

Timing-dependent schedules (``OP_NOW`` ops, from
``compile_programs(..., now_values=...)``) carry the clock readings
they were compiled against; the evaluator checks each one against the
actual dispatch time and raises :class:`TimingDivergence` on mismatch
(``check_now=False`` records the observed values instead — the
probe mode :func:`compile_at` iterates to a fixed point).

The contract is enforced two ways: the fuzz harness
(:func:`repro.sim.fuzz.run_case`) diffs this evaluator against the
machine on every fixed-latency case of the 500-seed tier-1 sweep —
makespan, per-rank results, event counts and the full capacity-stall
feed, all compared with ``==``, never a tolerance — and
``tests/test_compiled.py`` pins the edge cases (stall-heavy hotspots,
``merge_overhead_into_gap`` variants, capacity overrides, LogGP
multi-word streaming, barriers).
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ..engine import SimulationError
from ..latency import FixedLatency
from ..net import LatencyFabric
from ..trace import StallEvent, StallReport, WakeupEvent, stall_report
from .compiler import (
    OP_BARRIER,
    OP_COMPUTE,
    OP_NOW,
    OP_POLL,
    OP_RECV,
    OP_SEND,
    OP_SLEEP,
    CompileError,
    CompiledProgram,
    compile_programs,
)

__all__ = ["CompiledResult", "TimingDivergence", "compile_at", "evaluate"]


class TimingDivergence(SimulationError):
    """An ``OP_NOW`` assumption failed: the schedule was compiled
    against a clock reading that this evaluation did not reproduce.
    The compiled ops after that point encode the wrong control flow —
    refuse rather than return plausible garbage.  The grid layer
    catches this to trigger a per-region recompile
    (:func:`repro.sim.compiled.compile_at`)."""

# Processor states (machine.py uses interned strings; ints here).
_RUNNING = 0
_STALL_SEND = 1
_WAIT_RECV = 2
_WAIT_BARRIER = 3
_SLEEPING = 4
_POLLING = 5
_WAIT_GAP = 6
_DONE = 7

# Event codes for the inlined queue (machine.py binds methods instead).
_EV_ACTIVATION = 0
_EV_INJECT = 1
_EV_ARRIVAL = 2
_EV_RECV_DONE = 3
_EV_WAKE = 4
_EV_BARRIER = 5

#: Engine.schedule's past-tolerance: see repro.sim.engine.PAST_TOLERANCE.
_PAST_TOL = 1e-12
#: Queue compaction threshold, as in Engine.
_COMPACT = 8192


class _Msg:
    """An in-flight message: the fields injection and arrival touch."""

    __slots__ = ("src", "dst", "tag", "words", "arrive")

    def __init__(self, src: int, dst: int, tag, words: int):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.words = words
        self.arrive = 0.0


class _Proc:
    """Per-rank evaluation state: mirrors machine.py's _ProcState."""

    __slots__ = (
        "rank", "ops", "n_ops", "ip", "pending", "state",
        "busy_until", "last_send_start", "last_recv_start",
        "last_activity", "port_free", "mailbox", "arrived",
        "pending_inject", "stall_started", "queued_on",
        "needs_src", "needs_dst", "pending_activations",
        "poll_drained", "sends", "receives", "stall_time",
        "finished_at",
    )

    def __init__(self, rank: int, ops: tuple):
        self.rank = rank
        self.ops = ops
        self.n_ops = len(ops)
        self.ip = 0
        self.pending = None
        self.state = _RUNNING
        self.busy_until = 0.0
        self.last_send_start = float("-inf")
        self.last_recv_start = float("-inf")
        self.last_activity = 0.0
        self.port_free = float("-inf")
        self.mailbox: deque = deque()  # tags of landed messages
        self.arrived: deque = deque()  # _Msg delivered, o not yet paid
        self.pending_inject: _Msg | None = None
        self.stall_started: float | None = None
        self.queued_on: int | None = None
        self.needs_src = False
        self.needs_dst = False
        self.pending_activations: dict = {}
        self.poll_drained = 0
        self.sends = 0
        self.receives = 0
        self.stall_time = 0.0
        self.finished_at = 0.0


@dataclass(slots=True)
class CompiledResult:
    """What one compiled evaluation produced.

    Field-for-field comparable with the machine's ``MachineResult`` on
    the quantities both report; per-rank lists are indexed by rank.
    """

    makespan: float
    total_messages: int
    total_stall_time: float
    events_run: int
    values: tuple[Any, ...]
    finished_at: list[float]
    sends: list[int]
    receives: list[int]
    stall_time: list[float]
    #: Stall/wakeup feed, populated only under ``collect_stalls=True``.
    stall_events: list = field(default_factory=list)
    collected_stalls: bool = False
    #: Per-rank observed ``Now`` readings (``None`` unless the compiled
    #: program ``uses_now``); what :func:`compile_at` iterates on.
    now_values: list | None = None

    def stall_report(self) -> StallReport:
        if not self.collected_stalls:
            raise ValueError(
                "stall feed not collected; evaluate with "
                "collect_stalls=True to use stall_report()"
            )
        return stall_report(self.stall_events)


class _Evaluator:
    """One run of a compiled program at concrete LogP parameters."""

    def __init__(
        self,
        compiled: CompiledProgram,
        params,
        *,
        fixed_L: float | None,
        submit: Callable | None,
        enforce_capacity: bool,
        capacity: int,
        hw_barrier_cost: float,
        compute_jitter: Callable[[int, float], float] | None,
        collect_stalls: bool,
        max_events: int,
        check_now: bool = True,
    ):
        P = compiled.P
        self._P = P
        self._ops_values = compiled.values
        self._o = float(params.o)
        self._g = float(params.g)
        self._si = float(params.send_interval)
        # Exactly one of the two is set: the inlined FixedLatency flight
        # or the fabric's submit, mirroring the machine's _fixed_L gate.
        self._fixed_L = fixed_L
        self._submit = submit
        self._G = getattr(params, "G", None)
        self._check_now = check_now
        self._now_values: list[list[float]] | None = (
            [[] for _ in range(P)] if compiled.uses_now else None
        )
        self._capacity = capacity
        self._enforce = enforce_capacity
        self._hw_barrier = float(hw_barrier_cost)
        self._jitter = compute_jitter
        self._collect = collect_stalls
        self._budget = max_events
        self._procs = [_Proc(r, compiled.ops[r]) for r in range(P)]
        self._inflight_from = [0] * P
        self._inflight_to = [0] * P
        self._stall_queue: list[list[int]] = [[] for _ in range(P)]
        self._barrier_waiting: list[int] = []
        self._feed: list = []
        self._total_messages = 0
        self._events = 0
        # Inlined engine state.
        self._queue: list = []
        self._head = 0
        self._seq = 0
        self._cancelled: set = set()
        self._now = 0.0

    # -- engine ------------------------------------------------------

    def _sched(self, time: float, code: int, a, b=None, c=None) -> int:
        now = self._now
        if time < now:
            if time < now - _PAST_TOL:
                raise SimulationError(
                    f"event scheduled at {time} before current time {now}"
                )
            time = now
        seq = self._seq
        self._seq = seq + 1
        entry = (time, seq, code, a, b, c)
        queue = self._queue
        if not queue or queue[-1] < entry:
            queue.append(entry)
        else:
            insort(queue, entry)
        return seq

    def run(self) -> CompiledResult:
        procs = self._procs
        for proc in procs:
            self._sched_activation(proc, 0.0)
        queue = self._queue
        cancelled = self._cancelled
        head = self._head
        events = 0
        budget = self._budget
        while True:
            try:
                entry = queue[head]
            except IndexError:
                break
            head += 1
            if head >= _COMPACT:
                del queue[:head]
                head = 0
            sq = entry[1]
            if cancelled and sq in cancelled:
                cancelled.remove(sq)
                continue
            events += 1
            if events > budget:
                raise SimulationError(
                    f"exceeded max_events={budget}; likely livelock"
                )
            self._now = entry[0]
            code = entry[2]
            if code == _EV_ACTIVATION:
                self._on_activation(entry[3], entry[4])
            elif code == _EV_ARRIVAL:
                self._on_arrival(entry[3])
            elif code == _EV_RECV_DONE:
                self._on_recv_done(entry[3], entry[4])
            elif code == _EV_INJECT:
                self._on_inject(entry[3])
            elif code == _EV_WAKE:
                self._on_wake(entry[3], entry[4])
            else:
                self._on_barrier_release(entry[3])
        self._events = events
        self._check_completion()
        makespan = max(
            max(p.finished_at, p.last_activity) for p in procs
        )
        return CompiledResult(
            makespan=makespan,
            total_messages=self._total_messages,
            total_stall_time=sum(p.stall_time for p in procs),
            events_run=events,
            values=self._ops_values,
            finished_at=[p.finished_at for p in procs],
            sends=[p.sends for p in procs],
            receives=[p.receives for p in procs],
            stall_time=[p.stall_time for p in procs],
            stall_events=self._feed,
            collected_stalls=self._collect,
            now_values=self._now_values,
        )

    # -- activation plumbing (mirrors machine.py) --------------------

    def _sched_activation(self, proc: _Proc, time: float) -> None:
        pending = proc.pending_activations
        if time not in pending:
            pending[time] = self._sched(time, _EV_ACTIVATION, proc, time)

    def _supersede_activations(self, proc: _Proc, until: float) -> None:
        pending = proc.pending_activations
        stale = [t for t in pending if t < until]
        if stale:
            cancelled = self._cancelled
            for t in stale:
                cancelled.add(pending.pop(t))

    def _on_activation(self, proc: _Proc, time: float) -> None:
        proc.pending_activations.pop(time, None)
        self._activate(proc)

    # -- the interpreter loop (machine._activate over opcodes) -------

    def _activate(self, proc: _Proc) -> None:
        now = self._now
        rank = proc.rank
        while True:
            state = proc.state
            if state == _DONE:
                if proc.pending_inject is not None:
                    self._try_inject(proc)
                if proc.arrived:
                    self._try_drain(proc)
                return
            if now < proc.busy_until:
                self._sched_activation(proc, proc.busy_until)
                return
            if state == _SLEEPING or state == _WAIT_BARRIER:
                if proc.arrived:
                    self._try_drain(proc)
                return
            if proc.pending_inject is not None:
                if self._try_inject(proc):
                    proc.state = _RUNNING
                    continue
                proc.state = _STALL_SEND
                if proc.arrived:
                    self._try_drain(proc)
                return
            op = proc.pending
            if op is None:
                ip = proc.ip
                if ip >= proc.n_ops:
                    proc.state = _DONE
                    proc.finished_at = now
                    if proc.arrived:
                        self._try_drain(proc)
                    return
                op = proc.ops[ip]
                proc.ip = ip + 1
                proc.pending = op
                if op[0] == OP_POLL:
                    proc.poll_drained = 0
            kind = op[0]
            if kind == OP_SEND:
                earliest = proc.last_send_start + self._si
                if earliest < proc.port_free:
                    earliest = proc.port_free
                if earliest > now:
                    proc.state = _WAIT_GAP
                    self._sched_activation(proc, earliest)
                    if proc.arrived:
                        self._try_drain(proc)
                    return
                end = now + self._o
                proc.pending_inject = _Msg(rank, op[1], op[3], op[2])
                self._total_messages += 1
                proc.last_send_start = now
                proc.sends += 1
                proc.busy_until = end
                if proc.last_activity < end:
                    proc.last_activity = end
                self._sched(end, _EV_INJECT, proc)
                # Eager advance, as the machine does at send commit.
                proc.state = _RUNNING
                ip = proc.ip
                if ip >= proc.n_ops:
                    proc.pending = None
                    proc.state = _DONE
                    proc.finished_at = end
                    return
                op = proc.ops[ip]
                proc.ip = ip + 1
                proc.pending = op
                if op[0] == OP_POLL:
                    proc.poll_drained = 0
                return
            if kind == OP_RECV:
                if self._mailbox_take(proc, op[1]):
                    proc.pending = None
                    proc.state = _RUNNING
                    continue
                proc.state = _WAIT_RECV
                if proc.arrived:
                    self._try_drain(proc)
                return
            if kind == OP_COMPUTE:
                cycles = op[1]
                if self._jitter is not None:
                    cycles = float(self._jitter(rank, cycles))
                    if cycles < 0:
                        raise SimulationError(
                            f"compute_jitter returned negative cycles "
                            f"{cycles} for proc {rank}"
                        )
                end = now + cycles
                proc.busy_until = end
                if end > proc.last_activity:
                    proc.last_activity = end
                proc.pending = None
                proc.state = _RUNNING
                if cycles > 0:
                    if proc.pending_activations:
                        self._supersede_activations(proc, end)
                    self._sched_activation(proc, end)
                    return
                continue
            if kind == OP_SLEEP:
                proc.state = _SLEEPING
                wake = now + op[1]
                proc.pending = None
                self._sched(wake, _EV_WAKE, proc, wake)
                if proc.arrived:
                    self._try_drain(proc)
                return
            if kind == OP_POLL:
                if proc.arrived and now >= proc.last_recv_start + self._g:
                    proc.state = _POLLING
                    self._try_drain(proc)
                    return
                proc.pending = None
                proc.state = _RUNNING
                continue
            if kind == OP_NOW:
                # The machine resumes the generator with the clock and
                # pays nothing; here the reading was baked in at compile
                # time — check (or record) it and move on.
                self._now_values[rank].append(now)
                if self._check_now and now != op[1]:
                    raise TimingDivergence(
                        f"proc {rank} observed Now()={now} but the "
                        f"schedule was compiled assuming {op[1]}; "
                        "control flow after this point is not this "
                        "schedule's — recompile at this parameter "
                        "point (compile_at) or use the event machine"
                    )
                proc.pending = None
                continue
            # OP_BARRIER
            proc.pending = None
            proc.state = _WAIT_BARRIER
            waiting = self._barrier_waiting
            waiting.append(rank)
            if len(waiting) == self._P:
                self._release_barrier()
            elif proc.arrived:
                self._try_drain(proc)
            return

    # -- receive-side helpers ----------------------------------------

    def _mailbox_take(self, proc: _Proc, tag) -> bool:
        mailbox = proc.mailbox
        if tag is None:
            if mailbox:
                mailbox.popleft()
                return True
            return False
        for i, t in enumerate(mailbox):
            if t == tag:
                del mailbox[i]
                return True
        return False

    def _try_drain(self, proc: _Proc) -> None:
        if not proc.arrived or proc.state == _RUNNING:
            return
        now = self._now
        if now < proc.busy_until:
            self._sched_activation(proc, proc.busy_until)
            return
        if proc.pending_inject is not None and proc.stall_started is None:
            return  # send priority: the injection owns the port
        earliest = proc.last_recv_start + self._g
        if earliest > now:
            self._sched_activation(proc, earliest)
            return
        msg = proc.arrived.popleft()
        end = now + self._o
        rank = proc.rank
        proc.last_recv_start = now
        proc.busy_until = end
        proc.receives += 1
        if proc.last_activity < end:
            proc.last_activity = end
        if proc.pending_activations:
            self._supersede_activations(proc, end)
        self._inflight_to[rank] -= 1
        if self._stall_queue[rank]:
            self._release_dst_slot(rank)
        self._sched(end, _EV_RECV_DONE, proc, msg)

    def _on_recv_done(self, proc: _Proc, msg: _Msg) -> None:
        state = proc.state
        tag = msg.tag
        if state == _WAIT_RECV and not proc.mailbox:
            want = proc.pending[1]
            if want is None or want == tag:
                proc.pending = None
                proc.state = _RUNNING
                self._activate(proc)
                return
        proc.mailbox.append(tag)
        if state == _POLLING:
            proc.poll_drained += 1
            self._activate(proc)
            return
        if state == _WAIT_RECV:
            if self._mailbox_take(proc, proc.pending[1]):
                proc.pending = None
                proc.state = _RUNNING
                self._activate(proc)
                return
        if proc.arrived and proc.state != _RUNNING:
            self._try_drain(proc)
        if proc.state == _STALL_SEND or proc.state == _WAIT_GAP:
            self._sched_activation(
                proc, max(self._now, proc.busy_until)
            )

    # -- injection / capacity (mirrors machine.py) -------------------

    def _on_inject(self, proc: _Proc) -> None:
        if proc.pending_inject is None:
            return
        if self._try_inject(proc):
            self._activate(proc)
        else:
            if proc.state != _DONE:
                proc.state = _STALL_SEND
            if proc.arrived:
                self._try_drain(proc)

    def _try_inject(self, proc: _Proc) -> bool:
        msg = proc.pending_inject
        now = self._now
        rank = msg.src
        dst = msg.dst
        if self._enforce:
            needs_src = self._inflight_from[rank] >= self._capacity
            needs_dst = self._inflight_to[dst] >= self._capacity
            if needs_src or needs_dst:
                self._park(proc, dst, needs_src, needs_dst)
                return False
        if proc.stall_started is not None:
            proc.stall_time += now - proc.stall_started
            if now > proc.last_activity:
                proc.last_activity = now
            proc.stall_started = None
        if proc.queued_on is not None:
            self._stall_queue[proc.queued_on].remove(rank)
            proc.queued_on = None
            proc.needs_src = False
            proc.needs_dst = False
        # Float orderings mirror machine._try_inject exactly: the fixed
        # path folds stream before L, the fabric path adds stream to the
        # submitted arrival — same expressions, bit-identical results.
        words = msg.words
        fixed = self._fixed_L
        if words > 1:
            stream = (words - 1) * (self._G or 0.0)
            if fixed is not None:
                msg.arrive = now + stream + fixed
            else:
                msg.arrive = self._submit(rank, dst, now)[0] + stream
            if stream > 0:
                proc.port_free = now + stream
        elif fixed is not None:
            msg.arrive = now + fixed
        else:
            msg.arrive = self._submit(rank, dst, now)[0]
        self._inflight_from[rank] += 1
        self._inflight_to[dst] += 1
        proc.pending_inject = None
        self._sched(msg.arrive, _EV_ARRIVAL, msg)
        return True

    def _park(
        self, proc: _Proc, dst: int, needs_src: bool, needs_dst: bool
    ) -> None:
        proc.needs_src = needs_src
        proc.needs_dst = needs_dst
        if proc.stall_started is None:
            proc.stall_started = self._now
            if self._collect:
                self._feed.append(
                    StallEvent(
                        self._now, proc.rank, dst, needs_src, needs_dst
                    )
                )
        if proc.queued_on is None:
            proc.queued_on = dst
            self._stall_queue[dst].append(proc.rank)

    def _release_src_slot(self, src: int) -> None:
        proc = self._procs[src]
        if proc.stall_started is None or proc.pending_inject is None:
            return
        dst = proc.pending_inject.dst
        admitted = (
            self._inflight_from[src] < self._capacity
            and self._inflight_to[dst] < self._capacity
        )
        if self._collect:
            self._feed.append(
                WakeupEvent(self._now, src, dst, "src", src, admitted)
            )
        if admitted:
            self._sched_activation(
                proc, max(self._now, proc.busy_until)
            )

    def _release_dst_slot(self, dst: int) -> None:
        queue = self._stall_queue[dst]
        if not queue:
            return
        budget = self._capacity - self._inflight_to[dst]
        for rank in queue:
            if budget <= 0:
                break
            admitted = self._inflight_from[rank] < self._capacity
            if self._collect:
                self._feed.append(
                    WakeupEvent(self._now, rank, dst, "dst", dst, admitted)
                )
            if admitted:
                budget -= 1
                waiter = self._procs[rank]
                self._sched_activation(
                    waiter, max(self._now, waiter.busy_until)
                )

    def _on_arrival(self, msg: _Msg) -> None:
        src = msg.src
        self._inflight_from[src] -= 1
        src_proc = self._procs[src]
        if src_proc.stall_started is not None:
            self._release_src_slot(src)
        dst = self._procs[msg.dst]
        dst.arrived.append(msg)
        if dst.state != _RUNNING:
            if self._now >= dst.busy_until:
                self._try_drain(dst)
            else:
                self._sched_activation(dst, dst.busy_until)

    # -- sleep / barrier ---------------------------------------------

    def _on_wake(self, proc: _Proc, wake: float) -> None:
        if proc.state == _SLEEPING and self._now >= wake:
            if self._now < proc.busy_until:
                self._sched(proc.busy_until, _EV_WAKE, proc, wake)
                return
            proc.state = _RUNNING
            self._activate(proc)

    def _release_barrier(self) -> None:
        release = self._now + self._hw_barrier
        waiting = self._barrier_waiting
        self._barrier_waiting = []
        for rank in waiting:
            proc = self._procs[rank]
            self._sched(
                max(release, proc.busy_until), _EV_BARRIER, rank
            )

    def _on_barrier_release(self, rank: int) -> None:
        proc = self._procs[rank]
        if proc.state == _WAIT_BARRIER:
            proc.state = _RUNNING
            self._activate(proc)

    # -- end-of-run invariants ---------------------------------------

    def _check_completion(self) -> None:
        stuck = [p.rank for p in self._procs if p.state != _DONE]
        if stuck:
            raise SimulationError(
                f"deadlock: procs {stuck} never finished"
            )
        for proc in self._procs:
            if proc.arrived:
                raise SimulationError(
                    f"proc {proc.rank} ended with {len(proc.arrived)} "
                    "undrained arrivals"
                )
            if proc.pending_inject is not None or proc.queued_on is not None:
                raise SimulationError(
                    f"proc {proc.rank} ended with a pending injection"
                )


def _resolve_timing(params, L, latency, fabric):
    """Mirror the machine's latency/fabric normalization and bounds.

    Returns ``(fixed_L, fab)``: the inlined constant flight (``None``
    off the fixed fast path) and the Fabric whose ``submit`` feeds
    injections (``None`` when the constant path needs no fabric at
    all).  Validation — bound checks, both-given refusal — raises the
    machine's exact ``ValueError`` messages, so backend switches never
    change which configurations are accepted.
    """
    if fabric is not None:
        if latency is not None:
            raise ValueError(
                "give latency or fabric, not both (a plain latency "
                "model is run as a LatencyFabric)"
            )
        if L is not None:
            raise ValueError(
                "give L or fabric, not both (the fabric defines "
                "flight times)"
            )
        if fabric.lossy:
            raise ValueError(
                "the compiled evaluator does not support lossy "
                "fabrics: ARQ timeout-and-retry is timing-dependent "
                "control flow — use the event machine"
            )
        if fabric.bound > params.L + 1e-12:
            raise ValueError(
                f"fabric unloaded bound {fabric.bound} exceeds "
                f"L={params.L}"
            )
        if (
            type(fabric) is LatencyFabric
            and type(fabric.model) is FixedLatency
        ):
            return float(fabric.model.L), fabric
        return None, fabric
    if latency is not None:
        if L is not None:
            raise ValueError(
                "give L or latency, not both (the model defines "
                "flight times)"
            )
        if latency.L > params.L + 1e-12:
            raise ValueError(
                f"latency model bound {latency.L} exceeds L={params.L}"
            )
        if type(latency) is FixedLatency:
            return float(latency.L), None
        return None, LatencyFabric(latency)
    if L is None:
        return float(params.L), None
    if L > params.L + 1e-12:
        raise ValueError(
            f"latency L={L} exceeds params.L={params.L}; capacity "
            "ceil(L/g) would be wrong for this model"
        )
    return float(L), None


def evaluate(
    compiled: CompiledProgram,
    params,
    *,
    L: float | None = None,
    latency=None,
    fabric=None,
    enforce_capacity: bool = True,
    capacity: int | None = None,
    hw_barrier_cost: float = 0.0,
    compute_jitter: Callable[[int, float], float] | None = None,
    collect_stalls: bool = False,
    max_events: int = 50_000_000,
    check_now: bool = True,
) -> CompiledResult:
    """Run one compiled program at concrete parameters.

    Semantically ``LogPMachine(params, latency=..., fabric=...)
    .run(factory)`` for the factory that produced ``compiled`` — bit
    identical, enforced by the fuzz differential.  Keyword arguments
    mirror the machine's:

    Args:
        compiled: output of :func:`compile_programs`.
        params: :class:`~repro.core.params.LogPParams` (or LogGP
            subclass) with ``params.P == compiled.P``.
        L: fixed message latency; defaults to ``params.L``.  Like the
            machine's latency-bound check, ``L`` may not exceed
            ``params.L`` (capacity is derived from ``params.L``).
            Mutually exclusive with ``latency``/``fabric``.
        latency: a :class:`~repro.sim.latency.LatencyModel`, exactly as
            the machine takes it — reset at run start, drawn once per
            injection in event order, so seeded models reproduce the
            machine's draw sequence bit for bit.
        fabric: a non-lossy :class:`~repro.sim.net.Fabric`; its
            ``submit`` is called at the machine's exact call sites.
            Mutually exclusive with ``latency``.
        enforce_capacity: apply the ceil(L/g) in-flight limit.
        capacity: override the per-endpoint in-flight limit.
        hw_barrier_cost: cost added at barrier release.
        compute_jitter: per-(rank, cycles) adjustment; deterministic
            callables only (the machine accepts the same hook).
        collect_stalls: record the StallEvent/WakeupEvent feed so
            :meth:`CompiledResult.stall_report` works.
        max_events: safety budget, as in the machine.
        check_now: verify each ``OP_NOW`` assumption against the actual
            clock, raising :class:`TimingDivergence` on mismatch.
            ``False`` records observations instead (:func:`compile_at`'s
            probe mode) — results of a mismatched probe run are
            internal iteration state, not machine-identical output.
    """
    if params.P != compiled.P:
        raise ValueError(
            f"params.P={params.P} does not match compiled P={compiled.P}"
        )
    if hw_barrier_cost < 0:
        raise ValueError(
            f"hw_barrier_cost must be >= 0, got {hw_barrier_cost}"
        )
    fixed_L, fab = _resolve_timing(params, L, latency, fabric)
    if fab is not None:
        fab.reset()
        fab.attach(None, compiled.P, False)
    if capacity is None:
        capacity = params.capacity
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    if compiled.max_words > 1 and getattr(params, "G", None) is None:
        raise SimulationError(
            f"multi-word send (words={compiled.max_words}) requires "
            "LogGP parameters with a per-word gap G"
        )
    return _Evaluator(
        compiled,
        params,
        fixed_L=fixed_L,
        submit=fab.submit if fab is not None else None,
        enforce_capacity=enforce_capacity,
        capacity=capacity,
        hw_barrier_cost=hw_barrier_cost,
        compute_jitter=compute_jitter,
        collect_stalls=collect_stalls,
        max_events=max_events,
        check_now=check_now,
    ).run()


def compile_at(
    programs,
    P: int,
    params,
    *,
    max_passes: int = 16,
    latency=None,
    fabric=None,
    enforce_capacity: bool = True,
    capacity: int | None = None,
    hw_barrier_cost: float = 0.0,
    compute_jitter: Callable[[int, float], float] | None = None,
    max_events: int = 50_000_000,
) -> CompiledProgram:
    """Lower a timing-dependent program at one parameter point.

    A program that observes ``Now`` cannot compile parameter-free, but
    it *can* compile against an assumed clock: feed ``Now`` resume
    values from an oracle, evaluate the resulting schedule at
    ``params``, observe the actual clock readings, and iterate until
    the observations equal the assumptions exactly (``==``, no
    tolerance).  At the fixed point the generators were driven with
    precisely the resume values the machine would deliver, so the
    schedule — and its evaluation — is the machine's, bit for bit.

    Bounded timing dependence (``Now`` feeding comparisons against
    schedule-derived times) reaches the fixed point in a couple of
    passes — each pass resolves one layer of the clock-dependency
    chain.  Programs whose action sequence feeds back into its own
    observation times may cycle; after ``max_passes`` the refusal is a
    loud :class:`CompileError` (so ``backend="auto"`` falls back to the
    machine with the reason).

    ``programs`` must be a *factory* ``(rank, P) -> generator`` —
    every pass drives fresh generators.
    """
    if not callable(programs):
        raise CompileError(
            "timing-dependent lowering recompiles per pass, which "
            "requires a program factory (rank, P) -> generator, not "
            "a sequence of already-built generators"
        )
    oracle: list[list[float]] = [[] for _ in range(P)]
    for _ in range(max_passes):
        try:
            compiled = compile_programs(programs, P, now_values=oracle)
        except CompileError:
            raise
        except Exception as exc:
            # A provisional clock can steer the program into errors the
            # true schedule never hits (negative compute from 0.0 - x,
            # assertion failures on branch shape).  That is a lowering
            # failure, not a configuration error — refuse as
            # CompileError so backend="auto" can take the machine path.
            raise CompileError(
                "timing-dependent lowering failed while driving "
                f"generators at an assumed clock: {exc}"
            ) from exc
        if not compiled.uses_now:
            return compiled
        try:
            res = evaluate(
                compiled,
                params,
                latency=latency,
                fabric=fabric,
                enforce_capacity=enforce_capacity,
                capacity=capacity,
                hw_barrier_cost=hw_barrier_cost,
                compute_jitter=compute_jitter,
                max_events=max_events,
                check_now=False,
            )
        except SimulationError as exc:
            raise CompileError(
                "timing-dependent lowering failed while probing an "
                f"assumed clock: {exc}"
            ) from exc
        assumed = [
            [op[1] for op in rank_ops if op[0] == OP_NOW]
            for rank_ops in compiled.ops
        ]
        observed = res.now_values
        if observed == assumed:
            return compiled
        oracle = observed
    raise CompileError(
        f"timing-dependent schedule did not reach a fixed point in "
        f"{max_passes} passes at {params!r}: the program's action "
        "sequence feeds back into its own clock observations — run "
        "it on the event machine"
    )
