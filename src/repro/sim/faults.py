"""Processor fault plans, retry policies, and the heartbeat detector config.

LogP models an asynchronous machine whose processors "work
asynchronously" (Section 2); PR 3 made the *network* unreliable
(:class:`~repro.sim.net.FaultyFabric`), and this module makes the
*processors* unreliable.  A :class:`FaultPlan` is a declarative, seeded
schedule of per-rank fault events that the machine executes alongside
the program:

* :class:`CrashStop` — the rank halts at ``at`` and never returns.  Its
  in-flight sends are dropped, its parked wait-graph entry is reaped,
  messages addressed to it vanish at the (dead) network interface, and
  on a lossy fabric its peers' ARQ retries time out and give up.
* :class:`CrashRecover` — the rank halts at ``at``, loses all volatile
  state (generator frame, mailbox, arrived queue, parked sends), and
  restarts its program ``down_for`` cycles later as a fresh incarnation.
  The restarted program can retrieve its last
  :class:`~repro.sim.program.Checkpoint` payload with
  :class:`~repro.sim.program.Restore`.
* :class:`Slowdown` — local operations (``Compute``) that *start* inside
  ``[start, start + duration)`` cost ``factor`` times as many cycles —
  the degraded-but-alive processor of Section 4.1.4, as a fault.

Plans compose with link faults: attach a ``FaultPlan`` *and* a
``FaultyFabric`` to the same machine and both fire.

The module also hosts the two policy objects the fault subsystem made
pluggable:

* :class:`RetryPolicy` (with :class:`FixedRetry`,
  :class:`ExponentialBackoffRetry`, :class:`BudgetedRetry`) — the
  retransmission schedule of the lossy-fabric ARQ, previously a
  hardwired fixed interval in ``machine.py``.
* :class:`HeartbeatConfig` — the failure detector: every ``period``
  cycles each alive rank emits heartbeats to its watchers over the
  message port (the emission occupies the port under the usual
  ``max(g, o)`` spacing, so detection overhead is real traffic that
  shows up in the makespan); a watcher that has heard nothing for more
  than ``timeout`` cycles *suspects* the silent rank
  (:class:`~repro.sim.trace.SuspectEvent`).  Programs read the local
  suspicion set with :class:`~repro.sim.program.Suspects`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "CrashStop",
    "CrashRecover",
    "Slowdown",
    "FaultPlan",
    "random_fault_plan",
    "HeartbeatConfig",
    "RetryPolicy",
    "FixedRetry",
    "ExponentialBackoffRetry",
    "BudgetedRetry",
]


# ----------------------------------------------------------------------
# Fault events
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CrashStop:
    """Rank ``rank`` halts permanently at time ``at`` (crash-stop)."""

    rank: int
    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"crash time must be >= 0, got {self.at}")


@dataclass(frozen=True, slots=True)
class CrashRecover:
    """Rank ``rank`` halts at ``at``, loses all volatile state, and
    restarts its program ``down_for`` cycles later."""

    rank: int
    at: float
    down_for: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"crash time must be >= 0, got {self.at}")
        if self.down_for <= 0:
            raise ValueError(f"down_for must be > 0, got {self.down_for}")

    @property
    def back_at(self) -> float:
        return self.at + self.down_for


@dataclass(frozen=True, slots=True)
class Slowdown:
    """``Compute`` actions of ``rank`` starting in
    ``[start, start + duration)`` cost ``factor``× as many cycles."""

    rank: int
    start: float
    duration: float
    factor: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.factor < 1.0:
            raise ValueError(
                f"slowdown factor must be >= 1, got {self.factor}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration


FaultEvent = CrashStop | CrashRecover | Slowdown


@dataclass(frozen=True)
class FaultPlan:
    """A validated, immutable schedule of processor fault events.

    At most one crash event per rank (a crash-recovered rank staying up
    afterwards keeps plan replay and the degradation-bound analysis
    tractable; chain several downtimes by composing plans across runs).
    Any number of ``Slowdown`` windows may target the same rank; where
    windows overlap their factors multiply.
    """

    events: tuple[FaultEvent, ...]

    def __init__(self, events: Iterable[FaultEvent]) -> None:
        evs = tuple(events)
        crashed: set[int] = set()
        for ev in evs:
            if not isinstance(ev, (CrashStop, CrashRecover, Slowdown)):
                raise TypeError(f"not a fault event: {ev!r}")
            if isinstance(ev, (CrashStop, CrashRecover)):
                if ev.rank in crashed:
                    raise ValueError(
                        f"rank {ev.rank} has more than one crash event"
                    )
                crashed.add(ev.rank)
        object.__setattr__(self, "events", evs)

    # -- queries -------------------------------------------------------

    @property
    def crashes(self) -> tuple[CrashStop | CrashRecover, ...]:
        return tuple(
            e for e in self.events if isinstance(e, (CrashStop, CrashRecover))
        )

    @property
    def slowdowns(self) -> tuple[Slowdown, ...]:
        return tuple(e for e in self.events if isinstance(e, Slowdown))

    def crash_of(self, rank: int) -> CrashStop | CrashRecover | None:
        for e in self.crashes:
            if e.rank == rank:
                return e
        return None

    def max_rank(self) -> int:
        return max((e.rank for e in self.events), default=-1)

    def validate_for(self, P: int) -> None:
        bad = [e.rank for e in self.events if not 0 <= e.rank < P]
        if bad:
            raise ValueError(
                f"fault plan targets ranks {sorted(set(bad))} outside "
                f"0..{P - 1}"
            )

    def slow_factor(self, rank: int, t: float) -> float:
        """Combined slowdown multiplier for a compute starting at ``t``."""
        f = 1.0
        for e in self.events:
            if (
                isinstance(e, Slowdown)
                and e.rank == rank
                and e.start <= t < e.end
            ):
                f *= e.factor
        return f

    def down_intervals(self, rank: int) -> list[tuple[float, float]]:
        """Intervals (possibly right-open to +inf) during which ``rank``
        is down — the windows fault-aware validation exempts."""
        out: list[tuple[float, float]] = []
        for e in self.crashes:
            if e.rank != rank:
                continue
            if isinstance(e, CrashStop):
                out.append((e.at, float("inf")))
            else:
                out.append((e.at, e.back_at))
        return out

    def is_down(self, rank: int, t: float) -> bool:
        return any(a <= t < b for a, b in self.down_intervals(rank))


def random_fault_plan(
    seed: int,
    P: int,
    *,
    horizon: float,
    max_crashes: int | None = None,
    p_recover: float = 0.4,
    p_slowdown: float = 0.5,
    spare: Sequence[int] = (0,),
) -> FaultPlan:
    """Draw a seeded random fault plan for a ``P``-rank run.

    ``horizon`` bounds event times (crash times land in
    ``[0, horizon)``).  ``spare`` ranks never crash (default: rank 0,
    so collectives rooted there keep a live root); they may still slow
    down.  ``max_crashes`` defaults to ``P - len(spare) - 1`` clamped to
    at least 1 when any rank is crashable — at least one rank always
    survives.
    """
    if P < 1:
        raise ValueError(f"P must be >= 1, got {P}")
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    rng = random.Random(seed)
    crashable = [r for r in range(P) if r not in set(spare)]
    if max_crashes is None:
        max_crashes = max(len(crashable) - 1, 1 if crashable else 0)
    max_crashes = min(max_crashes, len(crashable))
    events: list[FaultEvent] = []
    n_crashes = rng.randint(0, max_crashes) if crashable else 0
    for rank in rng.sample(crashable, n_crashes):
        at = rng.uniform(0.0, horizon)
        if rng.random() < p_recover:
            events.append(
                CrashRecover(rank, at, rng.uniform(1.0, horizon / 2))
            )
        else:
            events.append(CrashStop(rank, at))
    for rank in range(P):
        if rng.random() < p_slowdown:
            start = rng.uniform(0.0, horizon)
            events.append(
                Slowdown(
                    rank,
                    start,
                    rng.uniform(1.0, horizon),
                    rng.uniform(1.5, 4.0),
                )
            )
    return FaultPlan(events)


# ----------------------------------------------------------------------
# Heartbeat failure detector configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class HeartbeatConfig:
    """Failure-detector parameters.

    Args:
        period: cycles between heartbeat emissions.
        timeout: silence (cycles since the last heartbeat heard) after
            which a watcher suspects a rank.  Must exceed ``period`` or
            every rank is suspected between consecutive beats.
        edges: optional pairs ``(a, b)`` that monitor *each other*;
            ``None`` means all-pairs monitoring.  Tree collectives pass
            their tree edges so detector traffic stays O(P), not O(P²).
        horizon: optional time after which the detector stops emitting.
            Without it the detector runs until every rank is finished or
            crashed — a program wedged forever on a dead peer would then
            keep the event queue alive, so bounded-mission harnesses
            (the chaos runner) always set a horizon.
    """

    period: float
    timeout: float
    edges: tuple[tuple[int, int], ...] | None = None
    horizon: float | None = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be > 0, got {self.period}")
        if self.timeout <= self.period:
            raise ValueError(
                f"timeout ({self.timeout}) must exceed the heartbeat "
                f"period ({self.period})"
            )
        if self.edges is not None:
            object.__setattr__(
                self, "edges", tuple((int(a), int(b)) for a, b in self.edges)
            )
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon}")

    def watch_map(self, P: int) -> list[list[int]]:
        """``watchers[r]`` = ranks that monitor ``r`` (receive its
        heartbeats).  Monitoring is symmetric per edge."""
        watchers: list[set[int]] = [set() for _ in range(P)]
        if self.edges is None:
            for r in range(P):
                watchers[r] = {w for w in range(P) if w != r}
        else:
            for a, b in self.edges:
                if not (0 <= a < P and 0 <= b < P) or a == b:
                    raise ValueError(
                        f"heartbeat edge ({a}, {b}) invalid for P={P}"
                    )
                watchers[a].add(b)
                watchers[b].add(a)
        return [sorted(s) for s in watchers]

    def detect_delay(self) -> float:
        """Worst-case cycles from a crash to suspicion at a watcher:
        the silence must exceed ``timeout`` and is only *checked* at
        detector ticks, so one extra ``period`` of slack applies (plus
        the beat in flight when the crash hit)."""
        return self.timeout + 2 * self.period


# ----------------------------------------------------------------------
# Retry policies (lossy-fabric ARQ retransmission schedules)
# ----------------------------------------------------------------------


class RetryPolicy:
    """Retransmission schedule for the sender-side ARQ.

    ``delay(attempt, seq)`` returns the cycles to wait for an ack before
    retransmission number ``attempt`` (1-based); ``seq`` is the message
    sequence number, available so jittered policies stay deterministic
    per message rather than drawing from shared mutable state.
    ``budget`` optionally caps the *total* cycles a message may spend
    unacked; ``None`` means only the machine's ``max_retries`` bounds
    the protocol.

    The policy is unit-agnostic: the machine reads ``delay`` in model
    cycles, while :class:`repro.sim.supervise.SupervisedPool` reuses
    the same taxonomy with seconds for resubmitting chunks orphaned by
    a dead worker — one retry vocabulary for in-model ARQ and
    infrastructure-level supervision alike.
    """

    budget: float | None = None

    def delay(self, attempt: int, seq: int = 0) -> float:
        raise NotImplementedError

    def next_delay(
        self, attempt: int, seq: int = 0, *, spent: float = 0.0
    ) -> float | None:
        """Budget-aware schedule step: the wait before ``attempt``.

        Returns ``None`` when ``spent`` (the cumulative wait already
        charged) plus this attempt's delay would exceed ``budget`` —
        the caller should give up (the machine records the send as
        undeliverable; the supervisor quarantines the item).
        """
        d = self.delay(attempt, seq)
        if self.budget is not None and spent + d > self.budget:
            return None
        return d


@dataclass(frozen=True)
class FixedRetry(RetryPolicy):
    """The original hardwired policy: a constant timeout per attempt.

    ``LogPMachine`` defaults to ``FixedRetry(3*bound + 2*o + 1)`` — one
    full worst-case round trip (data flight ``<= bound``, ack flight
    ``= bound``) past the point the ack could still be in flight, i.e.
    ``2*bound + ack_latency + 2*o + 1`` with ``ack_latency == bound``.
    """

    timeout: float
    budget: float | None = None

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")

    def delay(self, attempt: int, seq: int = 0) -> float:
        return self.timeout


@dataclass(frozen=True)
class ExponentialBackoffRetry(RetryPolicy):
    """Exponential backoff with deterministic per-message jitter.

    Attempt ``k`` waits ``min(base * mult**(k-1), cap)`` cycles, scaled
    by ``1 + U*jitter`` where ``U`` is drawn from a PRNG seeded with
    ``(seed, seq, k)`` — reruns of the same machine reproduce the same
    schedule exactly (determinism is load-bearing for the differential
    harnesses).
    """

    base: float
    mult: float = 2.0
    cap: float = float("inf")
    jitter: float = 0.0
    seed: int = 0
    budget: float | None = None

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError(f"base must be > 0, got {self.base}")
        if self.mult < 1.0:
            raise ValueError(f"mult must be >= 1, got {self.mult}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def delay(self, attempt: int, seq: int = 0) -> float:
        # Guard the exponentiation: a long crash-retry loop can push
        # ``attempt`` past float range long before anything else stops
        # it, and an OverflowError from the *backoff policy* must never
        # be what kills a supervised map.
        try:
            raw = self.base * self.mult ** (attempt - 1)
        except OverflowError:
            raw = float("inf")
        d = min(raw, self.cap)
        if self.jitter:
            u = random.Random((self.seed, seq, attempt)).random()
            d *= 1.0 + u * self.jitter
        return d


@dataclass(frozen=True)
class BudgetedRetry(RetryPolicy):
    """Wrap another policy with a total-time budget.

    Once the cumulative unacked time would exceed ``budget`` cycles the
    machine stops retransmitting: on a fault-free-processor run this is
    an error (undeliverable message), under a :class:`FaultPlan` the
    send is recorded as given up in the fault report.
    """

    inner: RetryPolicy = field(default_factory=lambda: FixedRetry(16.0))
    budget: float | None = None

    def __post_init__(self) -> None:
        if self.budget is None or self.budget <= 0:
            raise ValueError(
                f"BudgetedRetry needs a positive budget, got {self.budget}"
            )

    def delay(self, attempt: int, seq: int = 0) -> float:
        return self.inner.delay(attempt, seq)
