"""Collective operations built from point-to-point messages.

LogP gives the programmer nothing but sends and receives: "In LogP,
processors must explicitly send messages to perform these operations"
(Section 5.5).  These generators are composable program fragments — use
them inside a processor program with ``yield from``::

    def program(rank, P):
        value = yield from binomial_broadcast(rank, P, rank == 0 and 42)
        total = yield from tree_reduce(rank, P, value, operator.add)
        yield from software_barrier(rank, P, tag="phase1")

Every collective tags its messages so that adjacent collectives in one
program cannot steal each other's traffic.

The *optimal* LogP broadcast and summation (Section 3.3) need machine-
parameter-aware trees; those live in :mod:`repro.algorithms.broadcast`
and :mod:`repro.algorithms.summation` and are executed through
:func:`tree_broadcast` / explicit schedules.  The binomial forms here are
the parameter-oblivious baselines.

The collectives are fabric-agnostic: they run unmodified over any
:mod:`repro.sim.net` fabric, including a
:class:`~repro.sim.net.FaultyFabric` (the machine's retry protocol
preserves exactly-once delivery, so correctness tests double as
robustness tests under drop/duplicate/delay faults — see
``tests/test_net_fabric.py``).
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Generator, Hashable, Sequence

from .program import Barrier, Recv, Send

__all__ = [
    "binomial_parent",
    "binomial_children",
    "binomial_broadcast",
    "binomial_reduce",
    "tree_broadcast",
    "tree_reduce",
    "software_barrier",
    "all_to_all",
    "hardware_barrier",
    "exchange",
    "all_reduce",
    "group_broadcast",
    "prefix_scan",
]

Gen = Generator[Any, Any, Any]


def binomial_parent(rank: int, P: int, root: int = 0) -> int | None:
    """Parent of ``rank`` in the binomial broadcast tree rooted at
    ``root`` (``None`` for the root itself)."""
    r = (rank - root) % P
    if r == 0:
        return None
    # Clear the highest set bit of r.
    high = 1 << (r.bit_length() - 1)
    return ((r - high) + root) % P


def binomial_children(rank: int, P: int, root: int = 0) -> list[int]:
    """Children of ``rank`` in the binomial tree rooted at ``root``,
    largest subtree first (the order that minimizes completion time)."""
    r = (rank - root) % P
    children: list[int] = []
    bit = 1 << (r.bit_length() if r else 0)
    # Children of r are r + 2^k for 2^k > r's highest bit, while < P.
    k = bit
    while r + k < P:
        children.append(((r + k) + root) % P)
        k <<= 1
    children.reverse()  # largest subtree first
    return children


def binomial_broadcast(
    rank: int, P: int, value: Any, root: int = 0, tag: Hashable = "bcast"
) -> Gen:
    """Broadcast ``value`` (meaningful at ``root`` only) to all ranks via
    the binomial tree.  Returns the broadcast value on every rank."""
    if P == 1:
        return value
    if rank != root:
        msg = yield Recv(tag=tag)
        value = msg.payload
    for child in binomial_children(rank, P, root):
        yield Send(child, payload=value, tag=tag)
    return value


def binomial_reduce(
    rank: int,
    P: int,
    value: Any,
    combine: Callable[[Any, Any], Any] = operator.add,
    root: int = 0,
    tag: Hashable = "reduce",
) -> Gen:
    """Reduce every rank's ``value`` to ``root`` over the binomial tree.

    Returns the reduction at ``root`` and ``None`` elsewhere.  ``combine``
    must be associative; commutativity is not required (children are
    combined in deterministic rank order).
    """
    if P == 1:
        return value
    acc = value
    # Receive from children in *reverse* schedule order so the deepest
    # subtree (sent to first in broadcast) is awaited first here.
    for child in binomial_children(rank, P, root):
        msg = yield Recv(tag=(tag, child))
        acc = combine(acc, msg.payload)
    parent = binomial_parent(rank, P, root)
    if parent is not None:
        yield Send(parent, payload=acc, tag=(tag, rank))
        return None
    return acc


def tree_broadcast(
    rank: int,
    P: int,
    value: Any,
    children_of: Sequence[Sequence[int]],
    root: int = 0,
    tag: Hashable = "tbcast",
) -> Gen:
    """Broadcast over an explicit tree (e.g. the optimal LogP tree).

    ``children_of[r]`` lists r's children in the order they should be
    sent to (earliest-deadline first for the optimal tree).
    """
    if P == 1:
        return value
    if rank != root:
        msg = yield Recv(tag=tag)
        value = msg.payload
    for child in children_of[rank]:
        yield Send(child, payload=value, tag=tag)
    return value


def tree_reduce(
    rank: int,
    P: int,
    value: Any,
    combine: Callable[[Any, Any], Any] = operator.add,
    children_of: Sequence[Sequence[int]] | None = None,
    root: int = 0,
    tag: Hashable = "treduce",
) -> Gen:
    """Reduce over an explicit tree (binomial if ``children_of`` is None).

    Children are awaited in reverse send order: the child sent to last in
    the mirrored broadcast finishes earliest, so we consume it first.
    """
    if P == 1:
        return value
    if children_of is None:
        children = binomial_children(rank, P, root)
    else:
        children = list(children_of[rank])
    acc = value
    for child in reversed(children):
        msg = yield Recv(tag=(tag, child))
        acc = combine(acc, msg.payload)
    if rank != root:
        parent = _parent_from_children(rank, P, children_of, root)
        yield Send(parent, payload=acc, tag=(tag, rank))
        return None
    return acc


def _parent_from_children(
    rank: int,
    P: int,
    children_of: Sequence[Sequence[int]] | None,
    root: int,
) -> int:
    if children_of is None:
        parent = binomial_parent(rank, P, root)
        assert parent is not None
        return parent
    for r in range(P):
        if rank in children_of[r]:
            return r
    raise ValueError(f"rank {rank} has no parent in the supplied tree")


def software_barrier(rank: int, P: int, tag: Hashable = "barrier") -> Gen:
    """Barrier from messages alone: binomial reduce then broadcast.

    Costs roughly ``2 ceil(log2 P) (L + 2o)`` — the price Section 6.3
    notes LogP pays for synchronization relative to BSP's assumed
    hardware.
    """
    if P == 1:
        return None
    yield from binomial_reduce(
        rank, P, 0, operator.add, root=0, tag=("sb-up", tag)
    )
    yield from binomial_broadcast(rank, P, None, root=0, tag=("sb-down", tag))
    return None


def hardware_barrier(name: Hashable = None) -> Gen:
    """The machine's hardware barrier as a composable fragment."""
    yield Barrier(name=name)
    return None


def all_to_all(
    rank: int,
    P: int,
    outgoing: dict[int, Sequence[Any]],
    expected: int,
    stagger: bool = True,
    tag: Hashable = "a2a",
) -> Gen:
    """Personalized all-to-all: send ``outgoing[dst]`` element-wise to
    each destination, then collect ``expected`` incoming messages.

    ``stagger=True`` uses the contention-free schedule of Section 4.1.2:
    processor ``i`` starts with destination ``i+1`` and wraps around, so
    no two processors ever target the same destination in the same gap
    slot.  ``stagger=False`` is the naive schedule — every processor
    walks destinations ``0, 1, 2, ...`` in the same order, flooding each
    destination in turn ("all processors first send data to processor 0,
    then all to processor 1, and so on").

    Returns the list of received messages (order of reception).
    """
    if expected < 0:
        raise ValueError(f"expected must be >= 0, got {expected}")
    for dst in outgoing:
        if dst == rank:
            raise ValueError("outgoing must not include the local rank")
        if not 0 <= dst < P:
            raise ValueError(f"destination {dst} out of range")

    if stagger:
        order = [(rank + k) % P for k in range(1, P)]
    else:
        order = [d for d in range(P) if d != rank]

    for dst in order:
        for item in outgoing.get(dst, ()):
            yield Send(dst, payload=item, tag=tag)

    received = []
    for _ in range(expected):
        msg = yield Recv(tag=tag)
        received.append(msg)
    return received


def exchange(
    rank: int,
    P: int,
    outgoing: dict[int, Sequence[Any]],
    tag: Hashable = "xchg",
) -> Gen:
    """Irregular all-to-all where receivers don't know the counts.

    Two staggered sweeps: first every pair exchanges its message *count*
    (one small message each way, including zeros), then the payloads
    flow.  This is the standard pattern for data-dependent communication
    (splitter sort's key redistribution, the connected-components query
    rounds) where an h-relation's ``h`` is only known at runtime.

    Returns the received ``(src, payload)`` pairs.
    """
    counts = {d: len(outgoing.get(d, ())) for d in range(P) if d != rank}
    order = [(rank + k) % P for k in range(1, P)]
    for dst in order:
        yield Send(dst, payload=counts[dst], tag=("xc", tag))
    expected_from: dict[int, int] = {}
    for _ in range(P - 1):
        msg = yield Recv(tag=("xc", tag))
        expected_from[msg.src] = msg.payload
    for dst in order:
        for item in outgoing.get(dst, ()):
            yield Send(dst, payload=item, tag=("xp", tag))
    total = sum(expected_from.values())
    received: list[tuple[int, Any]] = []
    for _ in range(total):
        msg = yield Recv(tag=("xp", tag))
        received.append((msg.src, msg.payload))
    return received


def group_broadcast(
    rank: int,
    members: Sequence[int],
    value: Any,
    root: int,
    tag: Hashable = "gbcast",
    words: int = 1,
) -> Gen:
    """Broadcast within an arbitrary subgroup of processors.

    ``members`` lists the participating ranks (the caller must be one of
    them; non-members must not call this).  A binomial tree is built
    over the member *indices*, so any subgroup — a processor row of a
    grid, a fat-tree subtree — works.  ``words`` sends the payload as a
    long message (LogGP machines).

    Returns the broadcast value on every member.
    """
    members = list(members)
    if rank not in members:
        raise ValueError(f"rank {rank} is not in the group {members}")
    if root not in members:
        raise ValueError(f"root {root} is not in the group {members}")
    P = len(members)
    if P == 1:
        return value
    index = {m: i for i, m in enumerate(members)}
    my = index[rank]
    root_i = index[root]
    if rank != root:
        msg = yield Recv(tag=tag)
        value = msg.payload
    for child_i in binomial_children(my, P, root_i):
        yield Send(members[child_i], payload=value, tag=tag, words=words)
    return value


def prefix_scan(
    rank: int,
    P: int,
    value: Any,
    combine: Callable[[Any, Any], Any] = operator.add,
    inclusive: bool = True,
    identity: Any = 0,
    tag: Hashable = "scan",
) -> Gen:
    """Parallel prefix (scan) by recursive doubling.

    Section 5.5 notes some machines offer scans in hardware (the CM-5's
    control network, the scan-model of Section 6.2 even makes them unit
    time); under LogP they cost ``ceil(log2 P)`` rounds of messages.
    Returns the inclusive (default) or exclusive prefix of ``combine``
    over ranks ``0..rank``.
    """
    if P == 1:
        return value if inclusive else identity
    acc = value  # inclusive prefix of the window ending at this rank
    carried = value  # combined value of the window starting at this rank
    del carried  # recursive doubling needs only the prefix accumulator
    distance = 1
    step = 0
    while distance < P:
        # Send my current prefix to rank + distance; receive from
        # rank - distance.  Values always flow upward, so the combine
        # order is preserved for non-commutative operators.
        if rank + distance < P:
            yield Send(rank + distance, payload=acc, tag=(tag, step))
        if rank - distance >= 0:
            msg = yield Recv(tag=(tag, step))
            acc = combine(msg.payload, acc)
        distance <<= 1
        step += 1
    if inclusive:
        return acc
    # Exclusive scan: shift the inclusive results up by one rank.
    if rank + 1 < P:
        yield Send(rank + 1, payload=acc, tag=(tag, "shift"))
    if rank > 0:
        msg = yield Recv(tag=(tag, "shift"))
        return msg.payload
    return identity


def all_reduce(
    rank: int,
    P: int,
    value: Any,
    combine: Callable[[Any, Any], Any] = operator.add,
    tag: Hashable = "allred",
) -> Gen:
    """Reduce to rank 0 then broadcast the result — every rank returns
    the full reduction.  Used for convergence tests (global OR/SUM)."""
    total = yield from binomial_reduce(
        rank, P, value, combine, root=0, tag=("ar-up", tag)
    )
    total = yield from binomial_broadcast(
        rank, P, total, root=0, tag=("ar-down", tag)
    )
    return total
