"""Collective operations built from point-to-point messages.

LogP gives the programmer nothing but sends and receives: "In LogP,
processors must explicitly send messages to perform these operations"
(Section 5.5).  These generators are composable program fragments — use
them inside a processor program with ``yield from``::

    def program(rank, P):
        value = yield from binomial_broadcast(rank, P, rank == 0 and 42)
        total = yield from tree_reduce(rank, P, value, operator.add)
        yield from software_barrier(rank, P, tag="phase1")

Every collective tags its messages so that adjacent collectives in one
program cannot steal each other's traffic.

The *optimal* LogP broadcast and summation (Section 3.3) need machine-
parameter-aware trees; those live in :mod:`repro.algorithms.broadcast`
and :mod:`repro.algorithms.summation` and are executed through
:func:`tree_broadcast` / explicit schedules.  The binomial forms here are
the parameter-oblivious baselines.

The collectives are fabric-agnostic: they run unmodified over any
:mod:`repro.sim.net` fabric, including a
:class:`~repro.sim.net.FaultyFabric` (the machine's retry protocol
preserves exactly-once delivery, so correctness tests double as
robustness tests under drop/duplicate/delay faults — see
``tests/test_net_fabric.py``).
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Generator, Hashable, Sequence

from .program import Barrier, Now, Recv, Send, Suspects

__all__ = [
    "binomial_parent",
    "binomial_children",
    "binomial_ancestors",
    "binomial_subtree",
    "ft_watch_edges",
    "binomial_broadcast",
    "binomial_reduce",
    "ft_broadcast",
    "ft_reduce",
    "tree_broadcast",
    "tree_reduce",
    "software_barrier",
    "all_to_all",
    "hardware_barrier",
    "exchange",
    "all_reduce",
    "group_broadcast",
    "prefix_scan",
]

Gen = Generator[Any, Any, Any]


def binomial_parent(rank: int, P: int, root: int = 0) -> int | None:
    """Parent of ``rank`` in the binomial broadcast tree rooted at
    ``root`` (``None`` for the root itself)."""
    r = (rank - root) % P
    if r == 0:
        return None
    # Clear the highest set bit of r.
    high = 1 << (r.bit_length() - 1)
    return ((r - high) + root) % P


def binomial_children(rank: int, P: int, root: int = 0) -> list[int]:
    """Children of ``rank`` in the binomial tree rooted at ``root``,
    largest subtree first (the order that minimizes completion time)."""
    r = (rank - root) % P
    children: list[int] = []
    bit = 1 << (r.bit_length() if r else 0)
    # Children of r are r + 2^k for 2^k > r's highest bit, while < P.
    k = bit
    while r + k < P:
        children.append(((r + k) + root) % P)
        k <<= 1
    children.reverse()  # largest subtree first
    return children


def binomial_broadcast(
    rank: int, P: int, value: Any, root: int = 0, tag: Hashable = "bcast"
) -> Gen:
    """Broadcast ``value`` (meaningful at ``root`` only) to all ranks via
    the binomial tree.  Returns the broadcast value on every rank."""
    if P == 1:
        return value
    if rank != root:
        msg = yield Recv(tag=tag)
        value = msg.payload
    for child in binomial_children(rank, P, root):
        yield Send(child, payload=value, tag=tag)
    return value


def binomial_reduce(
    rank: int,
    P: int,
    value: Any,
    combine: Callable[[Any, Any], Any] = operator.add,
    root: int = 0,
    tag: Hashable = "reduce",
) -> Gen:
    """Reduce every rank's ``value`` to ``root`` over the binomial tree.

    Returns the reduction at ``root`` and ``None`` elsewhere.  ``combine``
    must be associative; commutativity is not required (children are
    combined in deterministic rank order).
    """
    if P == 1:
        return value
    acc = value
    # Receive from children in *reverse* schedule order so the deepest
    # subtree (sent to first in broadcast) is awaited first here.
    for child in binomial_children(rank, P, root):
        msg = yield Recv(tag=(tag, child))
        acc = combine(acc, msg.payload)
    parent = binomial_parent(rank, P, root)
    if parent is not None:
        yield Send(parent, payload=acc, tag=(tag, rank))
        return None
    return acc


def tree_broadcast(
    rank: int,
    P: int,
    value: Any,
    children_of: Sequence[Sequence[int]],
    root: int = 0,
    tag: Hashable = "tbcast",
) -> Gen:
    """Broadcast over an explicit tree (e.g. the optimal LogP tree).

    ``children_of[r]`` lists r's children in the order they should be
    sent to (earliest-deadline first for the optimal tree).
    """
    if P == 1:
        return value
    if rank != root:
        msg = yield Recv(tag=tag)
        value = msg.payload
    for child in children_of[rank]:
        yield Send(child, payload=value, tag=tag)
    return value


def tree_reduce(
    rank: int,
    P: int,
    value: Any,
    combine: Callable[[Any, Any], Any] = operator.add,
    children_of: Sequence[Sequence[int]] | None = None,
    root: int = 0,
    tag: Hashable = "treduce",
) -> Gen:
    """Reduce over an explicit tree (binomial if ``children_of`` is None).

    Children are awaited in reverse send order: the child sent to last in
    the mirrored broadcast finishes earliest, so we consume it first.
    """
    if P == 1:
        return value
    if children_of is None:
        children = binomial_children(rank, P, root)
    else:
        children = list(children_of[rank])
    acc = value
    for child in reversed(children):
        msg = yield Recv(tag=(tag, child))
        acc = combine(acc, msg.payload)
    if rank != root:
        parent = _parent_from_children(rank, P, children_of, root)
        yield Send(parent, payload=acc, tag=(tag, rank))
        return None
    return acc


def _parent_from_children(
    rank: int,
    P: int,
    children_of: Sequence[Sequence[int]] | None,
    root: int,
) -> int:
    if children_of is None:
        parent = binomial_parent(rank, P, root)
        assert parent is not None
        return parent
    for r in range(P):
        if rank in children_of[r]:
            return r
    raise ValueError(f"rank {rank} has no parent in the supplied tree")


def software_barrier(rank: int, P: int, tag: Hashable = "barrier") -> Gen:
    """Barrier from messages alone: binomial reduce then broadcast.

    Costs roughly ``2 ceil(log2 P) (L + 2o)`` — the price Section 6.3
    notes LogP pays for synchronization relative to BSP's assumed
    hardware.
    """
    if P == 1:
        return None
    yield from binomial_reduce(
        rank, P, 0, operator.add, root=0, tag=("sb-up", tag)
    )
    yield from binomial_broadcast(rank, P, None, root=0, tag=("sb-down", tag))
    return None


def hardware_barrier(name: Hashable = None) -> Gen:
    """The machine's hardware barrier as a composable fragment."""
    yield Barrier(name=name)
    return None


def all_to_all(
    rank: int,
    P: int,
    outgoing: dict[int, Sequence[Any]],
    expected: int,
    stagger: bool = True,
    tag: Hashable = "a2a",
) -> Gen:
    """Personalized all-to-all: send ``outgoing[dst]`` element-wise to
    each destination, then collect ``expected`` incoming messages.

    ``stagger=True`` uses the contention-free schedule of Section 4.1.2:
    processor ``i`` starts with destination ``i+1`` and wraps around, so
    no two processors ever target the same destination in the same gap
    slot.  ``stagger=False`` is the naive schedule — every processor
    walks destinations ``0, 1, 2, ...`` in the same order, flooding each
    destination in turn ("all processors first send data to processor 0,
    then all to processor 1, and so on").

    Returns the list of received messages (order of reception).
    """
    if expected < 0:
        raise ValueError(f"expected must be >= 0, got {expected}")
    for dst in outgoing:
        if dst == rank:
            raise ValueError("outgoing must not include the local rank")
        if not 0 <= dst < P:
            raise ValueError(f"destination {dst} out of range")

    if stagger:
        order = [(rank + k) % P for k in range(1, P)]
    else:
        order = [d for d in range(P) if d != rank]

    for dst in order:
        for item in outgoing.get(dst, ()):
            yield Send(dst, payload=item, tag=tag)

    received = []
    for _ in range(expected):
        msg = yield Recv(tag=tag)
        received.append(msg)
    return received


def exchange(
    rank: int,
    P: int,
    outgoing: dict[int, Sequence[Any]],
    tag: Hashable = "xchg",
) -> Gen:
    """Irregular all-to-all where receivers don't know the counts.

    Two staggered sweeps: first every pair exchanges its message *count*
    (one small message each way, including zeros), then the payloads
    flow.  This is the standard pattern for data-dependent communication
    (splitter sort's key redistribution, the connected-components query
    rounds) where an h-relation's ``h`` is only known at runtime.

    Returns the received ``(src, payload)`` pairs.
    """
    counts = {d: len(outgoing.get(d, ())) for d in range(P) if d != rank}
    order = [(rank + k) % P for k in range(1, P)]
    for dst in order:
        yield Send(dst, payload=counts[dst], tag=("xc", tag))
    expected_from: dict[int, int] = {}
    for _ in range(P - 1):
        msg = yield Recv(tag=("xc", tag))
        expected_from[msg.src] = msg.payload
    for dst in order:
        for item in outgoing.get(dst, ()):
            yield Send(dst, payload=item, tag=("xp", tag))
    total = sum(expected_from.values())
    received: list[tuple[int, Any]] = []
    for _ in range(total):
        msg = yield Recv(tag=("xp", tag))
        received.append((msg.src, msg.payload))
    return received


def group_broadcast(
    rank: int,
    members: Sequence[int],
    value: Any,
    root: int,
    tag: Hashable = "gbcast",
    words: int = 1,
) -> Gen:
    """Broadcast within an arbitrary subgroup of processors.

    ``members`` lists the participating ranks (the caller must be one of
    them; non-members must not call this).  A binomial tree is built
    over the member *indices*, so any subgroup — a processor row of a
    grid, a fat-tree subtree — works.  ``words`` sends the payload as a
    long message (LogGP machines).

    Returns the broadcast value on every member.
    """
    members = list(members)
    if rank not in members:
        raise ValueError(f"rank {rank} is not in the group {members}")
    if root not in members:
        raise ValueError(f"root {root} is not in the group {members}")
    P = len(members)
    if P == 1:
        return value
    index = {m: i for i, m in enumerate(members)}
    my = index[rank]
    root_i = index[root]
    if rank != root:
        msg = yield Recv(tag=tag)
        value = msg.payload
    for child_i in binomial_children(my, P, root_i):
        yield Send(members[child_i], payload=value, tag=tag, words=words)
    return value


def prefix_scan(
    rank: int,
    P: int,
    value: Any,
    combine: Callable[[Any, Any], Any] = operator.add,
    inclusive: bool = True,
    identity: Any = 0,
    tag: Hashable = "scan",
) -> Gen:
    """Parallel prefix (scan) by recursive doubling.

    Section 5.5 notes some machines offer scans in hardware (the CM-5's
    control network, the scan-model of Section 6.2 even makes them unit
    time); under LogP they cost ``ceil(log2 P)`` rounds of messages.
    Returns the inclusive (default) or exclusive prefix of ``combine``
    over ranks ``0..rank``.
    """
    if P == 1:
        return value if inclusive else identity
    acc = value  # inclusive prefix of the window ending at this rank
    carried = value  # combined value of the window starting at this rank
    del carried  # recursive doubling needs only the prefix accumulator
    distance = 1
    step = 0
    while distance < P:
        # Send my current prefix to rank + distance; receive from
        # rank - distance.  Values always flow upward, so the combine
        # order is preserved for non-commutative operators.
        if rank + distance < P:
            yield Send(rank + distance, payload=acc, tag=(tag, step))
        if rank - distance >= 0:
            msg = yield Recv(tag=(tag, step))
            acc = combine(msg.payload, acc)
        distance <<= 1
        step += 1
    if inclusive:
        return acc
    # Exclusive scan: shift the inclusive results up by one rank.
    if rank + 1 < P:
        yield Send(rank + 1, payload=acc, tag=(tag, "shift"))
    if rank > 0:
        msg = yield Recv(tag=(tag, "shift"))
        return msg.payload
    return identity


def all_reduce(
    rank: int,
    P: int,
    value: Any,
    combine: Callable[[Any, Any], Any] = operator.add,
    tag: Hashable = "allred",
) -> Gen:
    """Reduce to rank 0 then broadcast the result — every rank returns
    the full reduction.  Used for convergence tests (global OR/SUM)."""
    total = yield from binomial_reduce(
        rank, P, value, combine, root=0, tag=("ar-up", tag)
    )
    total = yield from binomial_broadcast(
        rank, P, total, root=0, tag=("ar-down", tag)
    )
    return total


# ----------------------------------------------------------------------
# Self-healing collectives (fault-tolerant broadcast / reduce)
# ----------------------------------------------------------------------


def binomial_ancestors(rank: int, P: int, root: int = 0) -> list[int]:
    """Ancestor chain of ``rank`` in the binomial tree, nearest first,
    ending at ``root``.  Empty for the root itself."""
    out: list[int] = []
    r = rank
    while True:
        parent = binomial_parent(r, P, root)
        if parent is None:
            break
        out.append(parent)
        r = parent
    return out


def binomial_subtree(rank: int, P: int, root: int = 0) -> list[int]:
    """All ranks in ``rank``'s binomial subtree (including ``rank``)."""
    out: list[int] = []
    stack = [rank]
    while stack:
        r = stack.pop()
        out.append(r)
        stack.extend(binomial_children(r, P, root))
    return sorted(out)


def ft_watch_edges(P: int, root: int = 0) -> tuple[tuple[int, int], ...]:
    """Heartbeat edges for the self-healing collectives.

    Every rank mutually monitors its whole binomial *ancestor chain*
    (an orphan may have to climb several dead generations) and the
    root monitors everyone (it accounts for every rank when deciding
    termination).  O(P log P) edges instead of all-pairs O(P²).
    """
    edges: set[tuple[int, int]] = set()
    for r in range(P):
        if r == root:
            continue
        for a in binomial_ancestors(r, P, root):
            edges.add((min(r, a), max(r, a)))
        edges.add((min(r, root), max(r, root)))
    return tuple(sorted(edges))


def ft_broadcast(
    rank: int,
    P: int,
    value: Any,
    *,
    root: int = 0,
    poll: float = 16.0,
    deadline: float | None = None,
    tag: Hashable = "ftb",
) -> Gen:
    """Self-healing broadcast: survives crash-stop failures of any set
    of non-root ranks, at any time.

    Protocol (run under a machine with a heartbeat detector whose edges
    include :func:`ft_watch_edges`):

    * Data flows down the binomial tree as usual.  A rank waiting for
      its parent uses ``Recv(timeout=poll)`` so it can periodically
      consult the local failure detector (``yield Suspects()``).
    * An orphan whose parent is suspected *re-grafts*: it climbs its
      ancestor chain to the nearest unsuspected ancestor (ultimately the
      root) and requests the payload.  A rank holding the payload serves
      requests; one that is still waiting itself remembers the request
      and serves it as soon as its own copy arrives.
    * Termination is root-accounted: each rank reports ``done`` to the
      root after obtaining the payload; once every rank is done or
      suspected, the root tells everyone to ``stop``.  This makes the
      completion rule immune to the lost-ack problem (a dead interior
      rank taking its children's acks to the grave).

    Returns the broadcast value on every surviving rank (``None`` if a
    ``deadline`` was hit first — pass one when the plan may crash the
    root or contains crash-*recover* events, whose late incarnations
    re-enter the protocol after the mission ended).

    The root must survive for the protocol to terminate on its own;
    the degradation bound under f crashes is asserted in
    ``tests/test_ft_collectives.py`` and documented in DESIGN.md §9.
    """
    if P == 1:
        return value
    have = rank == root
    chain = binomial_ancestors(rank, P, root)
    kids = binomial_children(rank, P, root)
    pending_reqs: list[int] = []
    asked: set[int] = set()

    # -- acquire phase (non-root ranks without the payload) ------------
    while not have:
        if deadline is not None:
            t = yield Now()
            if t >= deadline:
                return None
        msg = yield Recv(tag=tag, timeout=poll)
        if msg is None:
            sus = yield Suspects()
            if chain[0] in sus:
                # Orphaned: re-graft to the nearest live ancestor.
                target = next((a for a in chain if a not in sus), root)
                if target not in asked:
                    asked.add(target)
                    yield Send(target, payload=("req", rank), tag=tag)
            continue
        kind = msg.payload[0]
        if kind == "data":
            value = msg.payload[1]
            have = True
        elif kind == "req":
            pending_reqs.append(msg.payload[1])
        elif kind == "stop":
            # Late incarnation (crash-recover): mission already over.
            return None

    # -- distribute phase ----------------------------------------------
    sus = yield Suspects()
    served: set[int] = set()
    for child in kids:
        if child not in sus:
            yield Send(child, payload=("data", value), tag=tag)
            served.add(child)
    for q in pending_reqs:
        if q not in served:
            served.add(q)
            yield Send(q, payload=("data", value), tag=tag)

    if rank != root:
        yield Send(root, payload=("done", rank), tag=tag)
        # -- serve phase: answer re-graft requests until told to stop --
        while True:
            if deadline is not None:
                t = yield Now()
                if t >= deadline:
                    return value
            msg = yield Recv(tag=tag, timeout=poll)
            if msg is None:
                continue
            kind = msg.payload[0]
            if kind == "stop":
                return value
            if kind == "req":
                q = msg.payload[1]
                if q not in served:
                    served.add(q)
                    yield Send(q, payload=("data", value), tag=tag)
            # duplicate "data" (two targets answered a re-graft): ignore.
    else:
        done = {root}
        while True:
            sus = yield Suspects()
            if all(r in done or r in sus for r in range(P)):
                break
            if deadline is not None:
                t = yield Now()
                if t >= deadline:
                    break
            msg = yield Recv(tag=tag, timeout=poll)
            if msg is None:
                continue
            kind = msg.payload[0]
            if kind == "done":
                done.add(msg.payload[1])
            elif kind == "req":
                q = msg.payload[1]
                if q not in served:
                    served.add(q)
                    yield Send(q, payload=("data", value), tag=tag)
        # Stop everyone — including suspected ranks (the send to a dead
        # interface vanishes; a recovered incarnation is released).
        for r in range(P):
            if r != root:
                yield Send(r, payload=("stop",), tag=tag)
        return value


def ft_reduce(
    rank: int,
    P: int,
    value: Any,
    combine: Callable[[Any, Any], Any] = operator.add,
    *,
    root: int = 0,
    poll: float = 16.0,
    deadline: float | None = None,
    tag: Hashable = "ftr",
) -> Gen:
    """Self-healing reduction with explicit coverage accounting.

    Every rank contributes ``value``; partial results flow up the
    binomial tree.  Each contribution carries the *mask* of leaf ranks
    it covers, and a sender retains its partial until the receiver
    acknowledges custody — a partial sent to a rank that dies before
    absorbing it is re-routed directly to the root.  A partial that a
    rank absorbed *before* dying is genuinely lost (crash-recover loses
    volatile state); the protocol detects this via root-driven queries
    and reports it instead of wedging.

    Returns at the root a tuple ``(result, covered, lost)`` where
    ``covered`` and ``lost`` are frozensets of ranks partitioning
    ``range(P)``: ``result`` combines exactly the values of ``covered``.
    Non-root ranks return ``None``.  Under a single crash, ``lost`` is
    contained in the set of masks the dead rank had taken custody of
    (at minimum the dead rank's own leaf).

    Same detector requirements and root-survival scope as
    :func:`ft_broadcast`.
    """
    if P == 1:
        return (value, frozenset({rank}), frozenset())
    chain = binomial_ancestors(rank, P, root)
    kids = binomial_children(rank, P, root)

    if rank != root:
        acc = value
        mask: set[int] = {rank}
        dead_seen: set[int] = set()
        expected = set(kids)
        # -- gather phase: absorb children's partials ------------------
        while expected:
            if deadline is not None:
                t = yield Now()
                if t >= deadline:
                    return None
            msg = yield Recv(tag=tag, timeout=poll)
            if msg is None:
                sus = yield Suspects()
                for k in [k for k in expected if k in sus]:
                    # Dead child: its live descendants re-route straight
                    # to the root; report the death upward so the root
                    # adopts and accounts for the subtree.
                    expected.discard(k)
                    dead_seen.add(k)
                continue
            kind = msg.payload[0]
            if kind == "part":
                _, pmask, pdead, pval = msg.payload
                acc = combine(acc, pval)
                mask |= pmask
                dead_seen |= pdead
                expected.discard(msg.src)
                yield Send(msg.src, payload=("pack",), tag=tag)
            elif kind == "stop":
                return None
            # "query" before delivery cannot happen (root only queries
            # subtrees of ranks reported dead, and our report is the
            # partial we have not sent yet); ignore strays.

        # -- deliver phase: send up, retain until acked ----------------
        delivered_to: int | None = None
        part = ("part", frozenset(mask), frozenset(dead_seen), acc)
        sus = yield Suspects()
        target = next((a for a in chain if a not in sus), root)
        yield Send(target, payload=part, tag=tag)
        while delivered_to is None:
            if deadline is not None:
                t = yield Now()
                if t >= deadline:
                    return None
            msg = yield Recv(tag=tag, timeout=poll)
            if msg is None:
                sus = yield Suspects()
                if target in sus:
                    # Custody never transferred: re-route to the root.
                    target = root
                    yield Send(target, payload=part, tag=tag)
                continue
            kind = msg.payload[0]
            if kind == "pack":
                delivered_to = target
            elif kind == "nack":
                # Receiver's gather phase had already closed us out
                # (false suspicion): hand the partial to the root.
                target = root
                yield Send(target, payload=part, tag=tag)
            elif kind == "query":
                # Still holding: the root will receive our partial via
                # the (re-routed) delivery above; tell it the route.
                yield Send(
                    msg.src,
                    payload=("route", rank, frozenset(mask)),
                    tag=tag,
                )
            elif kind == "part":
                # Late partial from a child we gave up on: refuse custody
                # so the sender re-routes to the root.
                yield Send(msg.src, payload=("nack",), tag=tag)
            elif kind == "stop":
                return None

        # -- serve phase: answer queries until told to stop ------------
        while True:
            if deadline is not None:
                t = yield Now()
                if t >= deadline:
                    return None
            msg = yield Recv(tag=tag, timeout=poll)
            if msg is None:
                continue
            kind = msg.payload[0]
            if kind == "stop":
                return None
            if kind == "query":
                yield Send(
                    msg.src,
                    payload=("route", delivered_to, frozenset(mask)),
                    tag=tag,
                )
            elif kind == "part":
                yield Send(msg.src, payload=("nack",), tag=tag)
        return None

    # -- root ----------------------------------------------------------
    acc = value
    covered: set[int] = {root}
    lost: set[int] = set()
    handled_dead: set[int] = set()
    expected = set(kids)
    queried: set[int] = set()

    def adopt(dead: int, sus: frozenset[int]) -> list[tuple[Any, Any]]:
        """Account for a dead rank's subtree: its own leaf is lost
        (unless its partial already arrived) and each live descendant
        not yet covered is queried for its route."""
        sends: list[tuple[Any, Any]] = []
        stack = [dead]
        while stack:
            d = stack.pop()
            if d in handled_dead:
                continue
            handled_dead.add(d)
            expected.discard(d)
            if d not in covered:
                lost.add(d)
            for c in binomial_children(d, P, root):
                if c in covered or c in handled_dead:
                    continue
                if c in sus:
                    stack.append(c)
                elif c not in queried:
                    queried.add(c)
                    expected.add(c)
                    sends.append((c, ("query",)))
        return sends

    while expected:
        if deadline is not None:
            t = yield Now()
            if t >= deadline:
                break
        msg = yield Recv(tag=tag, timeout=poll)
        sus = yield Suspects()
        for k in [k for k in expected if k in sus]:
            for dst, payload in adopt(k, sus):
                yield Send(dst, payload=payload, tag=tag)
        if msg is None:
            continue
        kind = msg.payload[0]
        if kind == "part":
            _, pmask, pdead, pval = msg.payload
            if pmask <= covered:
                # Duplicate route (custody holder died after its own
                # delivery, sender re-routed): absorb nothing.
                yield Send(msg.src, payload=("pack",), tag=tag)
                expected.discard(msg.src)
                continue
            acc = combine(acc, pval)
            covered |= pmask
            lost -= pmask
            expected.discard(msg.src)
            # A queried rank whose mask arrived via its ancestor chain
            # will never deliver to us directly: stop expecting it.
            expected -= covered
            yield Send(msg.src, payload=("pack",), tag=tag)
            for d in pdead:
                for dst, payload in adopt(d, sus):
                    yield Send(dst, payload=payload, tag=tag)
        elif kind == "route":
            _, via, rmask = msg.payload
            if via == msg.src:
                # Still holding and heading our way: keep expecting it.
                continue
            expected.discard(msg.src)
            if via in sus:
                # Delivered into a rank that then died: custody lost.
                lost |= rmask - covered
            # Delivered into a live rank: its partial covers rmask and
            # will arrive via that rank's own (re-routed) delivery.
    for r in range(P):
        if r != root:
            yield Send(r, payload=("stop",), tag=tag)
    # Every rank is either combined into the result or reported lost.
    lost |= set(range(P)) - covered - lost
    return (acc, frozenset(covered), frozenset(lost))
