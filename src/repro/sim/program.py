"""The program API: how LogP programs are written for the simulator.

A *program* is a Python generator run on one simulated processor.  It
``yield``\\ s action objects and receives results back, in the style::

    def worker(rank: int, P: int):
        yield Compute(5)                      # 5 cycles of local work
        yield Send((rank + 1) % P, payload=rank)
        msg = yield Recv()                    # blocks; msg.payload, msg.src
        t = yield Now()                       # current simulated time

Real data flows through ``payload``, so algorithm implementations built
on the simulator are checked for *numerical* correctness, not just for
their timing.

Action semantics (enforced by :class:`repro.sim.machine.LogPMachine`):

* ``Send`` — the processor is engaged for ``o`` cycles; consecutive sends
  at one processor start at least ``max(g, o)`` apart; the send stalls
  while the capacity constraint (at most ``ceil(L/g)`` outstanding
  messages from this source or to that destination) would be violated.
* ``Recv`` — blocks until a message has been received (the ``o``-cycle
  reception paid, receive gap respected) and returns it.
* ``Compute`` — the processor is engaged and cannot service messages.
* ``Barrier`` — the machine's hardware barrier (CM-5-style, Section 5.5);
  software barriers are built from messages in
  :mod:`repro.sim.collectives`.
* ``Now`` — returns the current time without consuming any.
* ``Sleep`` — idle (not engaged: incoming messages are serviced).

Action objects and :class:`ReceivedMessage` are *immutable by
convention*, not enforcement: they are plain slotted dataclasses (with
value equality and hashing) rather than frozen ones, because frozen
dataclasses pay an ``object.__setattr__`` per field on construction and
programs construct one action per simulated operation — a measurable
fraction of hot-loop time (see the DESIGN.md "Performance" section).
Do not mutate an action after yielding it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

__all__ = [
    "Send",
    "Recv",
    "Compute",
    "Sleep",
    "Now",
    "Poll",
    "Barrier",
    "Checkpoint",
    "Restore",
    "Suspects",
    "RestoreInfo",
    "ReceivedMessage",
    "Action",
]


@dataclass(slots=True, unsafe_hash=True)
class Send:
    """Transmit one message to processor ``dst``.

    Args:
        dst: destination rank, ``0 <= dst < P`` (sending to self is an
            error — local data needs no message).
        payload: arbitrary data carried by the message.
        tag: optional hashable tag for selective receive.
        words: message length.  1 (default) is the basic model's small
            message.  ``words > 1`` uses the long-message extension
            (Section 5.4 / LogGP): the machine must be built with
            :class:`repro.core.loggp.LogGPParams`; the sender pays one
            ``o`` of setup, its network port streams the remaining
            ``words - 1`` words ``G`` cycles apart (overlapped with
            computation), and the receiver pays one ``o``.
    """

    dst: int
    payload: Any = None
    tag: Hashable = None
    words: int = 1

    def __post_init__(self) -> None:
        if self.words < 1:
            raise ValueError(f"words must be >= 1, got {self.words}")


@dataclass(slots=True, unsafe_hash=True)
class Recv:
    """Block until one message is available and return it.

    With ``tag=None`` any message is accepted (in reception-completion
    order).  With a tag, only messages bearing that tag match; others
    stay queued for later ``Recv`` calls.

    ``timeout`` (cycles, ``None`` = wait forever) bounds the wait:
    if no matching message is available within ``timeout`` cycles the
    yield returns ``None`` instead of a :class:`ReceivedMessage`.  A
    reception already in progress when the timeout fires completes into
    the mailbox; the timeout wins the race.  This is the primitive the
    self-healing collectives build on — wait for the parent's message
    *or* notice (via :class:`Suspects`) that the parent is dead.
    """

    tag: Hashable = None
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout < 0:
            raise ValueError(
                f"timeout must be >= 0, got {self.timeout}"
            )


@dataclass(slots=True, unsafe_hash=True)
class Compute:
    """Engage the processor for ``cycles`` of local work (``>= 0``)."""

    cycles: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"compute cycles must be >= 0, got {self.cycles}")


@dataclass(slots=True, unsafe_hash=True)
class Sleep:
    """Idle for ``cycles`` — unlike ``Compute``, the processor services
    incoming messages while sleeping."""

    cycles: float

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"sleep cycles must be >= 0, got {self.cycles}")


@dataclass(slots=True, unsafe_hash=True)
class Now:
    """Yieldable that returns the current simulation time."""


@dataclass(slots=True, unsafe_hash=True)
class Poll:
    """Service immediately available incoming messages, without waiting.

    Receives (paying ``o`` each, respecting the receive gap) every
    arrived message that can start *now*, stopping as soon as the next
    reception would require waiting for the gap or for an arrival.
    Returns the number of messages serviced; they land in the mailbox
    for later ``Recv`` calls.

    This is the active-message polling discipline of the CM-5
    communication layer (von Eicken et al., the paper's [33]): a tight
    send loop calls ``Poll`` each iteration so that reception interleaves
    with transmission even when the loop is never otherwise idle.
    """


@dataclass(slots=True, unsafe_hash=True)
class Barrier:
    """Hardware barrier: block until every processor has entered the same
    barrier, then all exit simultaneously (plus the machine's configured
    barrier cost).  Mirrors the CM-5 control network used by the
    synchronized FFT schedule in Figure 8."""

    name: Hashable = None


@dataclass(slots=True, unsafe_hash=True)
class Checkpoint:
    """Save ``payload`` to stable storage surviving a transient crash.

    A rank restarted after a :class:`~repro.sim.faults.CrashRecover`
    retrieves the most recent checkpoint with :class:`Restore`.  The
    processor is engaged for ``cost`` cycles (default 0: checkpoints to
    a battery-backed NIC buffer; set a real cost to model stable-storage
    writes).  Yield value: ``None``.
    """

    payload: Any = None
    cost: float = 0.0

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError(f"cost must be >= 0, got {self.cost}")


@dataclass(slots=True, unsafe_hash=True)
class Restore:
    """Return this rank's :class:`RestoreInfo` — the last checkpoint
    payload and the incarnation number.  Costs no time.  A program that
    supports crash-recovery starts with ``info = yield Restore()`` and
    skips the work the checkpoint already covers."""


@dataclass(slots=True, unsafe_hash=True)
class Suspects:
    """Return the frozenset of ranks this rank's failure detector
    currently suspects (empty when no heartbeat detector is attached).
    A local read of detector state: costs no time."""


@dataclass(frozen=True, slots=True)
class RestoreInfo:
    """What ``yield Restore()`` returns: ``checkpoint`` is the last
    :class:`Checkpoint` payload (``None`` if never checkpointed) and
    ``incarnation`` counts restarts (0 = original execution)."""

    checkpoint: Any
    incarnation: int


Action = (
    Send | Recv | Compute | Sleep | Now | Poll | Barrier
    | Checkpoint | Restore | Suspects
)


@dataclass(slots=True, unsafe_hash=True)
class ReceivedMessage:
    """What ``yield Recv()`` returns."""

    src: int
    payload: Any
    tag: Hashable
    sent_at: float
    received_at: float

    @property
    def in_flight(self) -> float:
        """End-to-end time this message spent from send start to
        availability."""
        return self.received_at - self.sent_at


@dataclass(slots=True)
class ProgramResult:
    """Final state of one processor's program after the run."""

    rank: int
    value: Any = None
    finished_at: float = 0.0
    sends: int = 0
    receives: int = 0
    stall_time: float = 0.0
    extras: dict[str, Any] = field(default_factory=dict)


__all__.append("ProgramResult")
