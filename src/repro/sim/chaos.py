"""Chaos harness: the fuzz families under randomized processor + link faults.

The differential fuzzer (:mod:`repro.sim.fuzz`) proves the machine
correct on *fault-free* runs; this module is the complementary
robustness sweep.  Each fuzz case is re-run with a seeded
:func:`~repro.sim.faults.random_fault_plan` (crash-stop, crash-recover
and slowdown events), an always-on heartbeat failure detector, and — on
a third of the seeds — a :class:`~repro.sim.net.FaultyFabric` injecting
link drops/duplicates/delays on top of the node faults.  The programs
themselves are *not* fault-tolerant; the harness checks the **machine's
fault semantics**, not protocol liveness:

1. **termination** — the run returns (no hang, no crash) and its
   makespan stays under a generous structural bound: wedged survivors
   park with no pending events and the detector stops at its horizon,
   so the event queue must drain.
2. **exactly-once** — ``duplicate_deliveries == 0``: no sequence number
   ever completes reception at a program twice, even when the lossy
   fabric manufactures duplicate copies and crash-recovered incarnations
   re-execute their sends.
3. **fault-report / trace consistency** — the condensed
   :class:`~repro.sim.trace.FaultReport` must agree exactly with the
   plan (every crash and recovery appears once, at its scheduled time)
   and with the detector (every suspicion names a rank that really
   crashed, after it crashed, with ``missed >= 1`` periods of silence —
   i.e. the generously-spaced detector never produces a false positive).
4. **determinism** — an untraced rerun is bit-identical: same makespan,
   same fault report.
5. **benign-plan transparency** — a plan with no crashes (only
   slowdowns) must leave values, message counts and completion intact:
   degradation stretches the schedule, never the semantics.

``python -m repro.sim.chaos --seeds 500`` runs the sweep from the
command line; the fuzzer's check 6 runs one chaos execution per
deterministic-latency fuzz case, and the tier-1 suite pins a fixed seed
block.  ``--service`` instead runs the *service-level* chaos harness
(:mod:`repro.serve.chaos`): SIGKILLed pool workers, a server killed and
restarted mid-job, journal tears, deadline and overload drills.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .faults import (
    CrashRecover,
    FaultPlan,
    HeartbeatConfig,
    random_fault_plan,
)
from .latency import FixedLatency
from .machine import LogPMachine, MachineResult
from .net import FaultyFabric, LatencyFabric
from .sweep import resolve_workers, sweep_map
from .validate import validate_schedule

if TYPE_CHECKING:  # pragma: no cover - import cycle is runtime-lazy
    from .fuzz import FuzzCase

__all__ = [
    "ChaosOutcome",
    "ChaosSummary",
    "chaos_heartbeat",
    "chaos_fault_plan",
    "is_lossy_seed",
    "run_chaos_case",
    "check_case_under_faults",
    "chaos_sweep",
]


#: Link-fault rates for the seeds that compose a FaultyFabric on top of
#: the node faults (roughly one seed in three, see :func:`is_lossy_seed`).
LOSSY_DROP = 0.12
LOSSY_DUPLICATE = 0.08
LOSSY_DELAY = 0.10


def chaos_heartbeat(p, *, horizon: float) -> HeartbeatConfig:
    """All-pairs detector sized so chaos runs cannot false-suspect.

    Beats serialize on the message ports, so the period must dominate
    both the ``(P-1) * max(g, o)`` all-pairs emission backlog and any
    transient program backlog in front of a beat.  ``4 * P * max(g, o,
    1)`` gives the fuzz families (a handful of sends per round) an ample
    margin; ``timeout = 2.5 * period + L + 2o`` follows the sizing rule
    of :func:`repro.algorithms.broadcast.ft_heartbeat_config` — the
    ``L + 2o`` term matters on latency-dominated draws (``L`` several
    times the period), where the *first* beat is still in flight when a
    bare multiple-of-period timeout would already have expired.  The
    ``horizon`` is mandatory here: it is what lets a run whose programs
    wedged on a dead peer drain its event queue and terminate.
    """
    beat = max(p.g, p.o, 1.0)
    period = max(4.0 * p.P * beat, 8.0)
    return HeartbeatConfig(
        period=period,
        timeout=2.5 * period + p.L + 2.0 * p.o,
        horizon=horizon,
    )


def chaos_fault_plan(case: "FuzzCase") -> tuple[FaultPlan, float]:
    """The seeded fault plan for one fuzz case, plus its time horizon.

    Crash times span ``[0, horizon)``.  The case's ``upper_bound`` is a
    deliberately loose livelock detector (several times the real
    makespan), so drawing over all of it would land most crashes after
    the program finished; a quarter of it keeps the draw spread over
    before/during/after the active phase, which is what actually
    exercises wedged receivers and mid-protocol re-grafts.  Rank 0 is
    spared (the fuzz hot-spot families root their traffic there;
    sparing it keeps at least one rank alive without special-casing
    every family).
    """
    horizon = max(case.upper_bound / 4.0, 32.0)
    return random_fault_plan(case.seed, case.params.P, horizon=horizon), horizon


def is_lossy_seed(seed: int) -> bool:
    """Whether this seed additionally composes link faults (FaultyFabric)."""
    return seed % 3 == 0


@dataclass(slots=True)
class ChaosOutcome:
    """Everything checked about one chaos execution."""

    seed: int
    family: str
    lossy: bool
    makespan: float
    crashes: int
    recoveries: int
    suspects: int
    wedged: int
    gave_up_sends: int
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass(slots=True)
class ChaosSummary:
    """Aggregate of a chaos sweep."""

    cases: int = 0
    lossy_cases: int = 0
    crashes: int = 0
    recoveries: int = 0
    suspects: int = 0
    wedged: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _run(
    case: "FuzzCase",
    plan: FaultPlan,
    hb: HeartbeatConfig,
    *,
    trace: bool,
    lossy: bool,
) -> MachineResult:
    p = case.params
    # A fresh fabric per run: FaultyFabric draws from an internal seeded
    # stream, so reuse would break the determinism differential.
    fabric = (
        FaultyFabric(
            LatencyFabric(FixedLatency(p.L)),
            drop=LOSSY_DROP,
            duplicate=LOSSY_DUPLICATE,
            delay=LOSSY_DELAY,
            seed=case.seed,
        )
        if lossy
        else None
    )
    machine = LogPMachine(
        p,
        fabric=fabric,
        fault_plan=plan,
        heartbeat=hb,
        trace=trace,
        max_events=2_000_000,
    )
    return machine.run(case.factory)


def run_chaos_case(case: "FuzzCase", where: str | None = None) -> ChaosOutcome:
    """Execute one fuzz case under its seeded fault plan; run every check."""
    p = case.params
    if where is None:
        where = f"seed={case.seed} family={case.family} {p}"
    where = f"{where} [chaos]"
    plan, fault_horizon = chaos_fault_plan(case)
    # Detection of the latest possible crash needs detect_delay() past
    # the crash itself; pad the detector horizon accordingly.
    hb = chaos_heartbeat(p, horizon=fault_horizon + 8.0 * max(p.g, p.o, 1.0) * 4.0 * p.P)
    lossy = is_lossy_seed(case.seed)
    out = ChaosOutcome(
        seed=case.seed,
        family=case.family,
        lossy=lossy,
        makespan=0.0,
        crashes=len(plan.crashes),
        recoveries=0,
        suspects=0,
        wedged=0,
        gave_up_sends=0,
    )

    try:
        res = _run(case, plan, hb, trace=True, lossy=lossy)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        out.failures.append(f"{where}: run crashed: {exc!r}")
        return out
    report = res.fault_report()
    out.makespan = res.makespan
    out.recoveries = len(report.recoveries)
    out.suspects = len(report.suspects)
    out.wedged = len(report.wedged_ranks)
    out.gave_up_sends = report.gave_up_sends

    # 1. Termination bound.  Structural termination got us *here*; the
    # bound turns a runaway (retry storm, detector that never stops)
    # into a failure instead of a 2M-event crawl.  Horizon + recovery
    # tails + a lossy retry chain per message is generous but finite.
    limit = (
        (hb.horizon or 0.0)
        + hb.timeout
        + 2.0 * fault_horizon
        + 4.0 * case.upper_bound
        + 2048.0
    )
    if res.makespan > limit:
        out.failures.append(
            f"{where}: makespan {res.makespan} exceeds chaos bound {limit}"
        )

    # 1b. Fault-aware semantic validation: outside the downtime windows
    # the traced schedule still obeys every LogP clause, and every
    # suspicion is backed by real silence.  Lossy seeds step outside
    # the LogP contract (retries violate flight <= L by design), so
    # only node-fault runs are validated.
    if not lossy:
        val = validate_schedule(
            res.schedule,
            exact_latency=True,
            fault_plan=plan,
            fault_report=report,
            heartbeat=hb,
        )
        for v in val.violations:
            out.failures.append(f"{where}: {v}")

    # 2. Exactly-once among survivors: no seq completes reception twice,
    # under crash-recover re-execution and fabric-manufactured copies.
    if report.duplicate_deliveries != 0:
        out.failures.append(
            f"{where}: {report.duplicate_deliveries} duplicate deliveries "
            "reached a program (exactly-once violated)"
        )

    # 3a. Every planned crash appears exactly once, at its time.
    want_crashes = sorted(
        (
            c.rank,
            c.at,
            "transient" if isinstance(c, CrashRecover) else "stop",
        )
        for c in plan.crashes
    )
    got_crashes = sorted((e.rank, e.time, e.kind) for e in report.crashes)
    if got_crashes != want_crashes:
        out.failures.append(
            f"{where}: traced crashes {got_crashes} != plan {want_crashes}"
        )

    # 3b. Every crash-recover restarts exactly once, on schedule.
    want_rec = sorted(
        (c.rank, c.back_at) for c in plan.crashes if isinstance(c, CrashRecover)
    )
    got_rec = sorted((e.rank, e.time) for e in report.recoveries)
    if got_rec != want_rec:
        out.failures.append(
            f"{where}: traced recoveries {got_rec} != plan {want_rec}"
        )
    for e in report.recoveries:
        if e.incarnation != 1:
            out.failures.append(
                f"{where}: P{e.rank} recovered with incarnation "
                f"{e.incarnation}, expected 1 (single crash per rank)"
            )

    # 3c. No false positives: every suspicion names a rank that really
    # crashed, strictly after the crash, with real silence behind it.
    crashed_at = {c.rank: c.at for c in plan.crashes}
    for e in report.suspects:
        if e.suspect not in crashed_at:
            out.failures.append(
                f"{where}: P{e.watcher} suspected live rank P{e.suspect} "
                f"at t={e.time} (false positive)"
            )
            continue
        if e.time < crashed_at[e.suspect]:
            out.failures.append(
                f"{where}: P{e.suspect} suspected at t={e.time}, before "
                f"its crash at t={crashed_at[e.suspect]}"
            )
        if e.missed < 1 or e.time - e.last_heard <= hb.timeout:
            out.failures.append(
                f"{where}: suspicion of P{e.suspect} at t={e.time} with "
                f"missed={e.missed}, last_heard={e.last_heard} — silence "
                "does not exceed the timeout"
            )

    # 3d. A wedged survivor implies the detector was still running when
    # the program parked — it must have emitted heartbeats.
    if report.wedged_ranks and report.heartbeats_sent == 0:
        out.failures.append(
            f"{where}: ranks {report.wedged_ranks} wedged but zero "
            "heartbeats were emitted"
        )
    for r in report.wedged_ranks:
        if r in report.down_forever:
            out.failures.append(
                f"{where}: P{r} is both wedged and crashed-forever"
            )

    # 4. Determinism: an untraced rerun is bit-identical — makespan and
    # the full fault report (events are collected untraced too).
    try:
        rerun = _run(case, plan, hb, trace=False, lossy=lossy)
    except Exception as exc:  # noqa: BLE001
        out.failures.append(f"{where}: untraced rerun crashed: {exc!r}")
        return out
    if rerun.makespan != res.makespan:
        out.failures.append(
            f"{where}: untraced makespan {rerun.makespan} != traced "
            f"{res.makespan} (must be bit-identical)"
        )
    if rerun.fault_report() != report:
        out.failures.append(
            f"{where}: untraced fault report differs from traced"
        )

    # 5. A benign plan (no crashes) must not change semantics: every
    # rank completes and the family's expected values survive slowdowns,
    # detector traffic, and (lossy seeds) the retry protocol.
    if not plan.crashes:
        if report.wedged_ranks:
            out.failures.append(
                f"{where}: no crashes planned but ranks "
                f"{report.wedged_ranks} never finished"
            )
        for rank, expect in case.expected_values.items():
            got = res.value(rank)
            if got != expect:
                out.failures.append(
                    f"{where}: no crashes planned but P{rank} returned "
                    f"{got!r}, expected {expect!r}"
                )
        if not lossy and res.total_messages != case.expected_messages:
            out.failures.append(
                f"{where}: no crashes planned but {res.total_messages} "
                f"messages delivered, expected {case.expected_messages}"
            )
    return out


def check_case_under_faults(
    case: "FuzzCase", where: str | None = None
) -> list[str]:
    """The fuzzer's check-6 entry point: failures only."""
    return run_chaos_case(case, where).failures


# ----------------------------------------------------------------------
# Sweep
# ----------------------------------------------------------------------


def _chaos_seed(seed: int) -> ChaosOutcome:
    """Per-seed work unit: regenerate the case in-process (factories do
    not pickle) and run the chaos checks.  Module-level so it pickles."""
    from .fuzz import make_case

    return run_chaos_case(make_case(int(seed)))


def chaos_sweep(
    seeds: "range | list[int]",
    *,
    max_failures: int = 50,
    workers: int | None = None,
    min_chunk: int | None = None,
) -> ChaosSummary:
    """Run the chaos checks over a seed range (parallel like the fuzzer).

    The summary folds outcomes in seed submission order with the same
    ``max_failures`` early exit whether the sweep ran serial or
    parallel, so worker count never changes the verdict.
    """
    from .fuzz import MIN_SEEDS_PER_WORKER, make_case

    if min_chunk is None:
        min_chunk = MIN_SEEDS_PER_WORKER
    summary = ChaosSummary()
    seed_list = [int(s) for s in seeds]

    def fold(out: ChaosOutcome) -> bool:
        summary.cases += 1
        summary.lossy_cases += int(out.lossy)
        summary.crashes += out.crashes
        summary.recoveries += out.recoveries
        summary.suspects += out.suspects
        summary.wedged += out.wedged
        summary.failures.extend(out.failures)
        return len(summary.failures) < max_failures

    if resolve_workers(workers) <= 1 or len(seed_list) < 2 * min_chunk:
        for seed in seed_list:
            if not fold(run_chaos_case(make_case(seed))):
                return summary
        return summary

    for out in sweep_map(
        _chaos_seed, seed_list, workers=workers, min_chunk=min_chunk
    ):
        if not fold(out):
            return summary
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=500)
    parser.add_argument("--start", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process count for the sweep (default: REPRO_SWEEP_WORKERS "
        "env var, then cpu count; 1 = serial)",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="run the *service* chaos harness instead (SIGKILLed pool "
        "workers, server kill -9 + journal replay, deadline/overload "
        "drills — see repro.serve.chaos); equivalent to "
        "`python -m repro.serve --chaos`",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="with --service: write the JSON report artifact",
    )
    args = parser.parse_args(argv)
    if args.service:
        from ..serve.chaos import run_service_chaos

        return run_service_chaos(args.out)
    summary = chaos_sweep(
        range(args.start, args.start + args.seeds), workers=args.workers
    )
    print(
        f"{summary.cases} chaos cases ({summary.lossy_cases} with link "
        f"faults): {summary.crashes} crashes, {summary.recoveries} "
        f"recoveries, {summary.suspects} suspicions, {summary.wedged} "
        "wedged survivors"
    )
    if summary.ok:
        print("OK — zero violations")
        return 0
    print(f"{len(summary.failures)} FAILURES:")
    for f in summary.failures[:20]:
        print(" ", f)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
