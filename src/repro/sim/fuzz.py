"""Differential fuzzing of the LogP machine simulator.

The stall/wakeup core of :mod:`repro.sim.machine` is the part of the
model a paper-reading cannot check by inspection — capacity back-pressure
interacts with send pacing, receive gaps, polling and barriers in ways
only exhaustive execution exposes.  This harness generates random
*well-formed* program families (every ``Recv`` has a matching ``Send``,
every processor reaches every barrier), runs each through the simulator
under the deterministic and the randomized latency models, and
cross-checks every run three ways:

1. **semantic validation** — :func:`~repro.sim.validate.validate_schedule`
   re-derives every model clause (overheads, gaps, latency bound, the
   ``ceil(L/g)`` capacity constraint) from the trace;
2. **differential execution** — the same case is run traced and
   untraced (identical makespans, message counts and stall totals) and
   twice under the same latency model (bit-identical determinism);
   deterministic cases additionally run through the network-fabric
   layer: a :class:`~repro.sim.net.LatencyFabric` over
   :class:`~repro.sim.latency.FixedLatency` must reproduce the bare
   machine's schedule *bit-identically* (the fabric refactor's
   no-regression witness), and a ring
   :class:`~repro.sim.net.ContentionFabric` calibrated to ``L`` must
   deliver the same messages and values under hop-consistent,
   semantically valid routing; finally — under *every* latency model,
   fixed and seeded-draw alike — the schedule is lowered by
   :mod:`repro.sim.compiled` and the engine-free compiled evaluator
   must reproduce the machine *bit-identically* — makespan, event
   counts, per-rank accounting, return values, and the full
   capacity-stall feed cross-checked through ``stall_report()``;
3. **analytic cross-check** — for families with a closed form
   (single-pair streams, disjoint pairwise streams) the simulated
   makespan must equal the formulas in :mod:`repro.core.cost` exactly;
   families without a closed form (many-to-one floods) are checked
   against receiver-bandwidth lower bounds and a generous linear upper
   bound that turns livelock into a failure instead of a hang;
4. **chaos** — deterministic-latency cases are additionally re-run
   under a seeded processor fault plan with the heartbeat detector (and,
   on a third of the seeds, a lossy fabric): the run must terminate,
   deliver exactly-once, and keep its fault report consistent with the
   plan and the traced event feed (see :mod:`repro.sim.chaos`).

Payloads carry checksums, so message *data* integrity is verified along
with timing.  ``python -m repro.sim.fuzz --seeds 500`` runs a sweep from
the command line; the tier-1 test suite runs a fixed-seed smoke profile.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable

import numpy as np

from ..core import cost
from ..core.params import LogPParams
from .latency import FixedLatency, JitteredLatency, LatencyModel, UniformLatency
from .machine import LogPMachine, MachineResult
from .net import ContentionFabric, Fabric, LatencyFabric
from .program import Barrier, Compute, Poll, Recv, Send, Sleep
from .sweep import resolve_workers, sweep_map
from .validate import validate_schedule

__all__ = [
    "FuzzCase",
    "CaseOutcome",
    "FuzzSummary",
    "FAMILIES",
    "FOLD_FAMILIES",
    "LATENCIES",
    "make_case",
    "make_fold_case",
    "run_case",
    "run_fold_case",
    "fuzz_sweep",
    "fold_fuzz_sweep",
]

FAMILIES = (
    "stream",
    "pairs",
    "flood",
    "barrier_rounds",
    "tagged",
    "poll_sleep",
    "mixed",
)

#: Broadcast-tree shapes exercised by the symmetry-folding fuzz
#: dimension (:func:`fold_fuzz_sweep`).
FOLD_FAMILIES = ("linear", "flat", "binomial", "optimal", "random")

#: Latency models exercised per case: name -> constructor(L, seed).
LATENCIES: dict[str, Callable[[float, int], LatencyModel]] = {
    "fixed": lambda L, seed: FixedLatency(L),
    "uniform": lambda L, seed: UniformLatency(L, lo_frac=0.25, seed=seed),
    "jittered": lambda L, seed: JitteredLatency(L, scale_frac=0.3, seed=seed),
}


@dataclass(frozen=True, slots=True)
class FuzzCase:
    """One generated program family instance."""

    seed: int
    family: str
    params: LogPParams
    factory: Callable[[int, int], Any]
    expected_messages: int
    #: Exact makespan under FixedLatency, when a closed form exists.
    closed_form: float | None
    #: Lower/upper makespan bounds under FixedLatency (always present).
    lower_bound: float
    upper_bound: float
    #: Expected per-rank program return values (None = don't check).
    expected_values: dict[int, Any]


@dataclass(slots=True)
class CaseOutcome:
    """Everything checked about one (case, latency-model) execution."""

    seed: int
    family: str
    latency: str
    makespan: float
    messages: int
    stalls: int
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass(slots=True)
class FuzzSummary:
    """Aggregate of a sweep."""

    cases: int
    runs: int
    total_messages: int
    failures: list[str] = field(default_factory=list)
    by_family: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


# ----------------------------------------------------------------------
# Case generation
# ----------------------------------------------------------------------

_EPS = 1e-9


def _draw_params(rng: np.random.Generator) -> LogPParams:
    """Random parameters on a 0.5-cycle grid (exact in binary floats),
    spanning o-dominated, g-dominated and latency-dominated regimes."""
    L = float(rng.integers(0, 33)) / 2.0
    o = float(rng.integers(0, 9)) / 2.0
    # g == 0 (infinite bandwidth / unbounded capacity) is a legal corner;
    # include it occasionally, otherwise keep capacity finite.
    g = 0.0 if rng.random() < 0.08 else float(rng.integers(1, 13)) / 2.0
    P = int(rng.integers(2, 7))
    return LogPParams(L=L, o=o, g=g, P=P)


def _checksum(src: int, i: int) -> int:
    return src * 10_000 + i


def make_case(seed: int) -> FuzzCase:
    """Generate the deterministic fuzz case for ``seed``."""
    rng = np.random.default_rng(seed)
    family = FAMILIES[int(rng.integers(0, len(FAMILIES)))]
    p = _draw_params(rng)
    builder = _BUILDERS[family]
    return builder(seed, p, rng)


def _lin_bound(p: LogPParams, n_msgs: int) -> float:
    """Generous linear makespan bound: any run beyond this is a livelock
    (or a quadratic-blowup bug), not legitimate LogP scheduling."""
    per = p.L + 2 * p.o + p.send_interval + 1.0
    return 2.0 * (n_msgs + p.P) * per + 10.0


def _build_stream(seed: int, p: LogPParams, rng) -> FuzzCase:
    """Single-pair pipelined stream: the paper's closed-form schedule."""
    k = int(rng.integers(1, 12))
    src, dst = 0, 1

    def factory(rank: int, P: int):
        if rank == src:
            for i in range(k):
                yield Send(dst, payload=_checksum(rank, i))
            return None
        if rank == dst:
            total = 0
            for _ in range(k):
                m = yield Recv()
                total += m.payload
            return total
        return None
        yield

    expect = sum(_checksum(src, i) for i in range(k))
    exact = cost.pipelined_stream_exact(p, k)
    return FuzzCase(
        seed=seed,
        family="stream",
        params=p,
        factory=factory,
        expected_messages=k,
        closed_form=exact,
        lower_bound=exact,
        upper_bound=_lin_bound(p, k),
        expected_values={dst: expect},
    )


def _build_pairs(seed: int, p: LogPParams, rng) -> FuzzCase:
    """Disjoint one-directional streams 0->1, 2->3, ...: independent
    pairs share the closed form of the slowest stream."""
    n_pairs = p.P // 2
    ks = [int(rng.integers(1, 10)) for _ in range(n_pairs)]

    def factory(rank: int, P: int):
        pair = rank // 2
        if pair < n_pairs and rank % 2 == 0:
            for i in range(ks[pair]):
                yield Send(rank + 1, payload=_checksum(rank, i))
            return None
        if pair < n_pairs and rank % 2 == 1:
            total = 0
            for _ in range(ks[pair]):
                m = yield Recv()
                total += m.payload
            return total
        return None
        yield

    expected_values = {
        2 * i + 1: sum(_checksum(2 * i, j) for j in range(ks[i]))
        for i in range(n_pairs)
    }
    exact = max(cost.pipelined_stream_exact(p, k) for k in ks)
    total = sum(ks)
    return FuzzCase(
        seed=seed,
        family="pairs",
        params=p,
        factory=factory,
        expected_messages=total,
        closed_form=exact,
        lower_bound=exact,
        upper_bound=_lin_bound(p, total),
        expected_values=expected_values,
    )


def _build_flood(seed: int, p: LogPParams, rng) -> FuzzCase:
    """Many-to-one hot spot: the Section 4.1.2 stall regime.  No closed
    form (capacity dynamics), but the receiver drains at most one message
    per ``g``, which bounds the makespan from below."""
    k = int(rng.integers(1, 8))
    senders = list(range(1, p.P))
    n = k * len(senders)

    def factory(rank: int, P: int):
        if rank == 0:
            total = 0
            for _ in range(n):
                m = yield Recv()
                total += m.payload
            return total
        for i in range(k):
            yield Send(0, payload=_checksum(rank, i))
        return None

    expect = sum(_checksum(s, i) for s in senders for i in range(k))
    # First reception cannot start before o + L; the rest are paced >= g.
    lower = p.o + p.L + (n - 1) * p.g + p.o
    return FuzzCase(
        seed=seed,
        family="flood",
        params=p,
        factory=factory,
        expected_messages=n,
        closed_form=None,
        lower_bound=lower,
        upper_bound=_lin_bound(p, n),
        expected_values={0: expect},
    )


def _round_plan(
    rng, P: int, n_msgs: int, *, hotspot: float = 0.3, tags: bool = False
) -> list[tuple[int, int, Any]]:
    """A random message plan: list of (src, dst, tag).  ``hotspot``
    biases destinations toward rank 0 to exercise capacity stalls."""
    plan = []
    for i in range(n_msgs):
        src = int(rng.integers(0, P))
        if rng.random() < hotspot:
            dst = 0 if src != 0 else 1
        else:
            dst = int(rng.integers(0, P - 1))
            if dst >= src:
                dst += 1
        tag = f"t{i}" if tags else None
        plan.append((src, dst, tag))
    return plan


def _rounds_factory(
    rounds: list[list[tuple[int, int, Any]]],
    rng_seed: int,
    *,
    barrier: bool,
    tagged: bool,
    spice: bool,
):
    """Build a program factory from per-round message plans.

    Deadlock-freedom by construction: within a round every processor
    performs all its sends before any receive, receive counts equal the
    messages addressed to it, and rounds are separated by barriers (when
    enabled) that every processor reaches.
    """

    def factory(rank: int, P: int):
        rng = np.random.default_rng((rng_seed, rank))
        seq = 0
        for rnd in rounds:
            outgoing = [(d, t) for (s, d, t) in rnd if s == rank]
            incoming = [(s, t) for (s, d, t) in rnd if d == rank]
            for dst, tag in outgoing:
                if spice and rng.random() < 0.3:
                    yield Compute(float(rng.integers(0, 7)))
                if spice and rng.random() < 0.15:
                    yield Poll()
                yield Send(dst, payload=_checksum(rank, seq), tag=tag)
                seq += 1
            if spice and rng.random() < 0.3:
                yield Sleep(float(rng.integers(0, 9)))
            if tagged:
                order = list(range(len(incoming)))
                rng.shuffle(order)
                for i in order:
                    m = yield Recv(tag=incoming[i][1])
                    assert m.tag == incoming[i][1], "tag mismatch"
            else:
                for _ in incoming:
                    yield Recv()
            if barrier:
                yield Barrier()
        return None
        yield

    return factory


def _build_rounds_case(
    seed: int,
    family: str,
    p: LogPParams,
    rng,
    *,
    barrier: bool,
    tagged: bool,
    spice: bool,
) -> FuzzCase:
    n_rounds = int(rng.integers(1, 4))
    rounds = [
        _round_plan(rng, p.P, int(rng.integers(1, 9)), tags=tagged)
        for _ in range(n_rounds)
    ]
    total = sum(len(r) for r in rounds)
    factory = _rounds_factory(
        rounds, seed, barrier=barrier, tagged=tagged, spice=spice
    )
    return FuzzCase(
        seed=seed,
        family=family,
        params=p,
        factory=factory,
        expected_messages=total,
        closed_form=None,
        lower_bound=0.0,
        upper_bound=_lin_bound(p, total) * max(1, n_rounds),
        expected_values={},
    )


def _build_barrier_rounds(seed: int, p: LogPParams, rng) -> FuzzCase:
    return _build_rounds_case(
        seed, "barrier_rounds", p, rng, barrier=True, tagged=False, spice=False
    )


def _build_tagged(seed: int, p: LogPParams, rng) -> FuzzCase:
    return _build_rounds_case(
        seed, "tagged", p, rng, barrier=True, tagged=True, spice=False
    )


def _build_mixed(seed: int, p: LogPParams, rng) -> FuzzCase:
    return _build_rounds_case(
        seed, "mixed", p, rng, barrier=bool(rng.integers(0, 2)),
        tagged=False, spice=True,
    )


def _build_poll_sleep(seed: int, p: LogPParams, rng) -> FuzzCase:
    """Senders stream to one receiver that alternates Sleep/Poll, then
    collects everything with Recv — the active-message discipline."""
    k = int(rng.integers(1, 6))
    senders = list(range(1, p.P))
    n = k * len(senders)
    naps = [float(rng.integers(1, 9)) for _ in range(4)]

    def factory(rank: int, P: int):
        if rank == 0:
            for nap in naps:
                yield Sleep(nap)
                yield Poll()
            total = 0
            for _ in range(n):
                m = yield Recv()
                total += m.payload
            return total
        for i in range(k):
            yield Send(0, payload=_checksum(rank, i))
        return None

    expect = sum(_checksum(s, i) for s in senders for i in range(k))
    return FuzzCase(
        seed=seed,
        family="poll_sleep",
        params=p,
        factory=factory,
        expected_messages=n,
        closed_form=None,
        lower_bound=p.o + (n - 1) * p.g + p.o,
        upper_bound=_lin_bound(p, n) + sum(naps),
        expected_values={0: expect},
    )


_BUILDERS: dict[str, Callable[..., FuzzCase]] = {
    "stream": _build_stream,
    "pairs": _build_pairs,
    "flood": _build_flood,
    "barrier_rounds": _build_barrier_rounds,
    "tagged": _build_tagged,
    "poll_sleep": _build_poll_sleep,
    "mixed": _build_mixed,
}


# ----------------------------------------------------------------------
# Execution + differential checks
# ----------------------------------------------------------------------


def _run_machine(
    case: FuzzCase,
    latency: LatencyModel | None,
    *,
    trace: bool,
    fabric: Fabric | None = None,
) -> MachineResult:
    machine = LogPMachine(
        case.params,
        latency=latency,
        fabric=fabric,
        trace=trace,
        max_events=2_000_000,
    )
    return machine.run(case.factory)


def run_case(
    case: FuzzCase,
    latency_name: str = "fixed",
    *,
    compiled_check: bool = True,
    chaos_check: bool = True,
) -> CaseOutcome:
    """Execute one case under one latency model and run every check.

    ``compiled_check=False`` skips differential check 5 (the compiled
    evaluator) and ``chaos_check=False`` skips the fault-injection
    check 6; used by ``repro.bench`` to keep the ``fuzz_smoke``
    workload's cost comparable across benchmark records predating
    those checks.  Correctness sweeps leave both on.
    """
    where = f"seed={case.seed} family={case.family} {case.params} [{latency_name}]"
    make_latency = LATENCIES[latency_name]
    fixed = latency_name == "fixed"
    out = CaseOutcome(
        seed=case.seed,
        family=case.family,
        latency=latency_name,
        makespan=0.0,
        messages=0,
        stalls=0,
    )

    try:
        res = _run_machine(case, make_latency(case.params.L, case.seed), trace=True)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        out.failures.append(f"{where}: traced run crashed: {exc!r}")
        return out
    out.makespan = res.makespan
    out.messages = res.total_messages
    report = res.stall_report()
    out.stalls = report.stalls
    if not report.ok:
        out.failures.append(
            f"{where}: unresolved stall episodes for senders "
            f"{report.unresolved}"
        )

    # 1. Semantic validation of the trace.
    val = validate_schedule(res.schedule, exact_latency=fixed)
    for v in val.violations:
        out.failures.append(f"{where}: {v}")

    # 2a. Message accounting + payload checksums.
    if res.total_messages != case.expected_messages:
        out.failures.append(
            f"{where}: {res.total_messages} messages, "
            f"expected {case.expected_messages}"
        )
    for rank, expect in case.expected_values.items():
        got = res.value(rank)
        if got != expect:
            out.failures.append(
                f"{where}: P{rank} returned {got!r}, expected {expect!r}"
            )

    # 2b. Untraced differential: identical makespan and totals.
    try:
        bare = _run_machine(
            case, make_latency(case.params.L, case.seed), trace=False
        )
    except Exception as exc:  # noqa: BLE001
        out.failures.append(f"{where}: untraced run crashed: {exc!r}")
        return out
    if abs(bare.makespan - res.makespan) > _EPS:
        out.failures.append(
            f"{where}: untraced makespan {bare.makespan} != traced "
            f"{res.makespan}"
        )
    if bare.total_messages != res.total_messages:
        out.failures.append(
            f"{where}: untraced message count {bare.total_messages} != "
            f"traced {res.total_messages}"
        )
    if abs(bare.total_stall_time - res.total_stall_time) > _EPS:
        out.failures.append(
            f"{where}: untraced stall time {bare.total_stall_time} != "
            f"traced {res.total_stall_time}"
        )

    # 2c. Determinism: a rerun under the same (reset) model is identical.
    rerun = _run_machine(
        case, make_latency(case.params.L, case.seed), trace=False
    )
    if abs(rerun.makespan - res.makespan) > _EPS:
        out.failures.append(
            f"{where}: rerun makespan {rerun.makespan} != {res.makespan} "
            "(nondeterminism)"
        )

    # 3. Analytic cross-checks (deterministic latency only).
    if fixed and case.closed_form is not None:
        if abs(res.makespan - case.closed_form) > _EPS:
            out.failures.append(
                f"{where}: makespan {res.makespan} != closed form "
                f"{case.closed_form}"
            )
    if fixed and res.makespan < case.lower_bound - _EPS:
        out.failures.append(
            f"{where}: makespan {res.makespan} below analytic lower bound "
            f"{case.lower_bound}"
        )
    if res.makespan > case.upper_bound + _EPS:
        out.failures.append(
            f"{where}: makespan {res.makespan} exceeds linear bound "
            f"{case.upper_bound} (livelock?)"
        )

    # 4. Fabric differentials (deterministic latency only: randomized
    # models draw per-message, so schedules are only comparable when the
    # flight times are a constant).
    if fixed:
        out.failures.extend(_check_fabrics(case, res, where))

    # 5. Compiled-evaluator differential: the engine-free fast path must
    # be *bit-identical* to the machine — under the fixed model and the
    # seeded draw models alike (the evaluator consumes the same reset
    # draw stream at the same injections).
    if compiled_check:
        out.failures.extend(
            _check_compiled(
                case,
                res,
                where,
                latency=(
                    None
                    if fixed
                    else make_latency(case.params.L, case.seed)
                ),
            )
        )

    # 6. Chaos: the same case under a seeded processor fault plan (and,
    # on a third of the seeds, a lossy fabric) must terminate, deliver
    # exactly-once, and keep its fault report consistent with the plan
    # and the traced event feed.  Lazy import: chaos imports this module.
    if fixed and chaos_check:
        from .chaos import check_case_under_faults

        out.failures.extend(check_case_under_faults(case, where))
    return out


def _schedules_identical(a, b) -> list[str]:
    """Exact (zero-tolerance) schedule comparison, as difference strings."""
    diffs: list[str] = []
    if a.messages != b.messages:
        diffs.append(
            f"message records differ ({len(a.messages)} vs "
            f"{len(b.messages)} records)"
        )
    ranks = set(a.timelines) | set(b.timelines)
    for rank in sorted(ranks):
        ta = a.timelines.get(rank)
        tb = b.timelines.get(rank)
        ia = ta.intervals if ta is not None else []
        ib = tb.intervals if tb is not None else []
        if ia != ib:
            diffs.append(f"P{rank} intervals differ")
    return diffs


def _check_fabrics(
    case: FuzzCase, res: MachineResult, where: str
) -> list[str]:
    """Run the case through the fabric layer and diff against ``res``."""
    failures: list[str] = []
    p = case.params

    # 4a. LatencyFabric over FixedLatency: bit-identical to the bare
    # machine — same makespan, same stalls, same schedule, exactly.
    try:
        wrapped = _run_machine(
            case, None, trace=True, fabric=LatencyFabric(FixedLatency(p.L))
        )
    except Exception as exc:  # noqa: BLE001
        failures.append(f"{where}: LatencyFabric run crashed: {exc!r}")
        return failures
    if wrapped.makespan != res.makespan:
        failures.append(
            f"{where}: LatencyFabric makespan {wrapped.makespan} != bare "
            f"{res.makespan} (must be bit-identical)"
        )
    if wrapped.total_messages != res.total_messages:
        failures.append(
            f"{where}: LatencyFabric message count "
            f"{wrapped.total_messages} != bare {res.total_messages}"
        )
    if wrapped.total_stall_time != res.total_stall_time:
        failures.append(
            f"{where}: LatencyFabric stall time {wrapped.total_stall_time} "
            f"!= bare {res.total_stall_time} (must be bit-identical)"
        )
    for diff in _schedules_identical(res.schedule, wrapped.schedule):
        failures.append(f"{where}: LatencyFabric schedule: {diff}")

    # 4b. Ring ContentionFabric calibrated to L: routed flights are
    # distance-dependent (so no schedule diff), but delivery must be
    # hop-consistent, semantically valid, and carry the same messages to
    # the same values.
    fab = ContentionFabric.ring(p.P, L=p.L)
    try:
        routed = _run_machine(case, None, trace=True, fabric=fab)
    except Exception as exc:  # noqa: BLE001
        failures.append(f"{where}: ContentionFabric run crashed: {exc!r}")
        return failures
    val = validate_schedule(routed.schedule, fabric=fab)
    for v in val.violations:
        failures.append(f"{where} [ring-fabric]: {v}")
    if routed.total_messages != case.expected_messages:
        failures.append(
            f"{where}: ContentionFabric delivered {routed.total_messages} "
            f"messages, expected {case.expected_messages}"
        )
    for rank, expect in case.expected_values.items():
        got = routed.value(rank)
        if got != expect:
            failures.append(
                f"{where}: ContentionFabric P{rank} returned {got!r}, "
                f"expected {expect!r}"
            )
    if not routed.stall_report().ok:
        failures.append(
            f"{where}: ContentionFabric left unresolved stall episodes"
        )
    # Trace gating must not change semantics: the untraced routed run
    # (no link accounting, no queue-watch events) is bit-identical.
    bare = _run_machine(case, None, trace=False, fabric=fab)
    if bare.makespan != routed.makespan:
        failures.append(
            f"{where}: untraced ContentionFabric makespan {bare.makespan} "
            f"!= traced {routed.makespan}"
        )
    if bare.total_stall_time != routed.total_stall_time:
        failures.append(
            f"{where}: untraced ContentionFabric stall time "
            f"{bare.total_stall_time} != traced {routed.total_stall_time}"
        )
    return failures


def _check_compiled(
    case: FuzzCase,
    res: MachineResult,
    where: str,
    *,
    latency: LatencyModel | None = None,
) -> list[str]:
    """Diff the compiled evaluator against the traced machine run.

    Everything is compared with ``==`` — bit-identity, no tolerance:
    makespan, message/event counts, per-rank accounting, program return
    values, the raw stall/wakeup event feed, and the condensed
    ``stall_report()`` the feed folds into.  ``latency`` is a fresh
    same-seed model when the machine run drew flight times; the
    evaluator resets it and must consume the identical stream.
    """
    from .compiled import CompileError, compile_programs, evaluate

    failures: list[str] = []
    try:
        prog = compile_programs(case.factory, case.params.P)
    except CompileError as exc:
        # Every fuzz family is deterministic by construction (no Now,
        # no deadlock), so failing to lower one is itself a finding.
        failures.append(f"{where}: schedule failed to compile: {exc}")
        return failures
    try:
        comp = evaluate(
            prog,
            case.params,
            latency=latency,
            collect_stalls=True,
            max_events=2_000_000,
        )
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        failures.append(f"{where}: compiled evaluation crashed: {exc!r}")
        return failures
    if comp.makespan != res.makespan:
        failures.append(
            f"{where}: compiled makespan {comp.makespan} != machine "
            f"{res.makespan} (must be bit-identical)"
        )
    if comp.total_messages != res.total_messages:
        failures.append(
            f"{where}: compiled message count {comp.total_messages} != "
            f"machine {res.total_messages}"
        )
    if comp.total_stall_time != res.total_stall_time:
        failures.append(
            f"{where}: compiled stall time {comp.total_stall_time} != "
            f"machine {res.total_stall_time} (must be bit-identical)"
        )
    if comp.events_run != res.events_run:
        failures.append(
            f"{where}: compiled ran {comp.events_run} events, machine "
            f"ran {res.events_run}"
        )
    for rank in range(case.params.P):
        got, want = comp.values[rank], res.value(rank)
        if got != want:
            failures.append(
                f"{where}: compiled P{rank} returned {got!r}, machine "
                f"returned {want!r}"
            )
    if comp.stall_events != res.stall_events:
        failures.append(
            f"{where}: compiled stall/wakeup feed differs from the "
            f"machine's ({len(comp.stall_events)} vs "
            f"{len(res.stall_events)} events)"
        )
    if comp.stall_report() != res.stall_report():
        failures.append(
            f"{where}: compiled stall_report() differs from the "
            "machine's"
        )
    return failures


def _sweep_seed(
    seed: int,
    latencies: tuple[str, ...],
    compiled_check: bool = True,
    chaos_check: bool = True,
) -> tuple[str, list[CaseOutcome]]:
    """Per-seed work unit for the parallel sweep: regenerate the case
    (program factories are generators and cannot cross a process
    boundary — only the seed does) and run it under every latency
    model.  Module-level so it pickles."""
    case = make_case(int(seed))
    return case.family, [
        run_case(
            case, name, compiled_check=compiled_check, chaos_check=chaos_check
        )
        for name in latencies
    ]


# ----------------------------------------------------------------------
# Symmetry-folding fuzz dimension: random broadcast trees, three ways
# ----------------------------------------------------------------------


def _fold_children(family: str, P: int, rng) -> list:
    """Children lists for one fold-fuzz tree family at ``P`` ranks."""
    from ..algorithms.broadcast import (
        binomial_tree,
        flat_tree,
        linear_tree,
    )

    if family == "linear":
        return linear_tree(P)
    if family == "flat":
        return flat_tree(P)
    if family == "binomial":
        return binomial_tree(P)
    if family == "random":
        children: list = [[] for _ in range(P)]
        for i in range(1, P):
            children[int(rng.integers(0, i))].append(i)
        return children
    raise ValueError(f"unknown fold family {family!r}")


def make_fold_case(seed: int) -> FuzzCase:
    """Generate the deterministic fold-fuzz case for ``seed``.

    A broadcast over a random tree shape (:data:`FOLD_FAMILIES`) at a
    larger ``P`` than the main fuzz draw (folding is about many ranks),
    on the same 0.5-cycle dyadic parameter grid the folded evaluator's
    exactness guard requires.
    """
    rng = np.random.default_rng([int(seed), 0xF01D])
    family = FOLD_FAMILIES[int(rng.integers(0, len(FOLD_FAMILIES)))]
    base = _draw_params(rng)
    P = int(rng.integers(2, 65))
    p = LogPParams(L=base.L, o=base.o, g=base.g, P=P)
    if family == "optimal":
        from ..algorithms.broadcast import optimal_broadcast_tree

        children = optimal_broadcast_tree(p).children
    else:
        children = _fold_children(family, P, rng)
    payload = _checksum(0, seed)

    def factory(rank: int, P_: int):
        from .collectives import tree_broadcast

        return tree_broadcast(
            rank, P_, payload if rank == 0 else None, children, root=0
        )

    return FuzzCase(
        seed=seed,
        family=family,
        params=p,
        factory=factory,
        expected_messages=P - 1,
        closed_form=None,
        lower_bound=0.0,
        upper_bound=_lin_bound(p, P - 1),
        expected_values={r: payload for r in range(P)},
    )


def run_fold_case(case: FuzzCase, latency_name: str = "fixed") -> CaseOutcome:
    """One fold-fuzz case under one latency model: three-way differential.

    The machine is the semantics; the unfolded compiled evaluator must
    match it bit-identically; the folded path must match *both* —
    aggregates and every expanded per-rank view — whenever the timing
    configuration and the schedule fold.  Under the seeded draw models
    folding is ineligible by design (draws are consumed in event order);
    the check there is that ``fold="auto"`` degrades to the unfolded
    compiled path *with the ineligibility reason recorded* and values
    unchanged.
    """
    from .compiled import (
        CompileError,
        FoldError,
        compile_programs,
        evaluate,
        evaluate_folded,
        fold_program,
        resolve_fold,
    )
    from .sweep import GridMapReport, grid_map

    where = (
        f"fold seed={case.seed} family={case.family} {case.params} "
        f"[{latency_name}]"
    )
    make_latency = LATENCIES[latency_name]
    fixed = latency_name == "fixed"
    out = CaseOutcome(
        seed=case.seed,
        family=case.family,
        latency=latency_name,
        makespan=0.0,
        messages=0,
        stalls=0,
    )

    try:
        res = _run_machine(
            case, make_latency(case.params.L, case.seed), trace=False
        )
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        out.failures.append(f"{where}: machine run crashed: {exc!r}")
        return out
    out.makespan = res.makespan
    out.messages = res.total_messages
    for rank, expect in case.expected_values.items():
        if res.value(rank) != expect:
            out.failures.append(
                f"{where}: machine P{rank} returned {res.value(rank)!r}, "
                f"expected {expect!r}"
            )

    eval_latency = None if fixed else make_latency(case.params.L, case.seed)
    try:
        prog = compile_programs(case.factory, case.params.P)
        comp = evaluate(prog, case.params, latency=eval_latency)
    except CompileError as exc:
        out.failures.append(f"{where}: schedule failed to compile: {exc}")
        return out
    if comp.makespan != res.makespan:
        out.failures.append(
            f"{where}: compiled makespan {comp.makespan} != machine "
            f"{res.makespan}"
        )
    if comp.total_stall_time != res.total_stall_time:
        out.failures.append(
            f"{where}: compiled stall time {comp.total_stall_time} != "
            f"machine {res.total_stall_time}"
        )

    mode = resolve_fold("auto", latency=eval_latency)
    if mode == "on":
        try:
            folded = fold_program(prog)
        except FoldError as exc:
            out.failures.append(
                f"{where}: broadcast tree failed to fold: {exc}"
            )
            return out
        try:
            fr = evaluate_folded(folded, case.params)
        except FoldError:
            # A per-point refusal (capacity stall at this point) is
            # legitimate — the auto path covers it with the unfolded
            # evaluator, checked through grid_map below.
            fr = None
        if fr is not None:
            if fr.makespan != res.makespan:
                out.failures.append(
                    f"{where}: folded makespan {fr.makespan} != machine "
                    f"{res.makespan}"
                )
            if fr.total_stall_time != res.total_stall_time:
                out.failures.append(
                    f"{where}: folded stall time {fr.total_stall_time} "
                    f"!= machine {res.total_stall_time}"
                )
            if fr.total_messages != res.total_messages:
                out.failures.append(
                    f"{where}: folded message count {fr.total_messages} "
                    f"!= machine {res.total_messages}"
                )
            for rank in range(case.params.P):
                if fr.finished_at(rank) != comp.finished_at[rank]:
                    out.failures.append(
                        f"{where}: folded P{rank} finished at "
                        f"{fr.finished_at(rank)}, compiled at "
                        f"{comp.finished_at[rank]}"
                    )
                    break
            for rank, expect in case.expected_values.items():
                if fr.value(rank) != expect:
                    out.failures.append(
                        f"{where}: folded P{rank} returned "
                        f"{fr.value(rank)!r}, expected {expect!r}"
                    )
                    break
    elif fixed:  # pragma: no cover - fixed latency is always eligible
        out.failures.append(
            f"{where}: fold='auto' refused a fixed-latency configuration"
        )

    # Dispatch-layer differential: grid_map(fold="auto") must return
    # the machine's numbers and report the fold decision truthfully.
    report = GridMapReport()
    got = grid_map(
        case.factory,
        [case.params],
        fold="auto",
        latency=None if fixed else make_latency(case.params.L, case.seed),
        report=report,
    )
    if got[0] != (res.makespan, res.total_stall_time):
        out.failures.append(
            f"{where}: grid_map(fold='auto') returned {got[0]}, machine "
            f"says {(res.makespan, res.total_stall_time)}"
        )
    group = report.groups[0]
    if not fixed:
        if group.fold != "off":
            out.failures.append(
                f"{where}: seeded-draw group reported fold={group.fold!r}"
            )
        if not group.fold_reason:
            out.failures.append(
                f"{where}: seeded-draw fallback recorded no fold_reason"
            )
    return out


def _fold_sweep_seed(
    seed: int, latencies: tuple[str, ...]
) -> tuple[str, list[CaseOutcome]]:
    """Per-seed fold-fuzz work unit; module-level so it pickles."""
    case = make_fold_case(int(seed))
    return case.family, [run_fold_case(case, name) for name in latencies]


def fold_fuzz_sweep(
    seeds: "range | list[int]",
    latencies: tuple[str, ...] = ("fixed", "uniform", "jittered"),
    *,
    max_failures: int = 50,
    workers: int | None = None,
    min_chunk: int | None = None,
) -> FuzzSummary:
    """Differential sweep of the symmetry-folding dimension.

    Every (seed, latency model) pair runs :func:`run_fold_case`; the
    accounting and determinism contract match :func:`fuzz_sweep`.
    """
    summary = FuzzSummary(cases=0, runs=0, total_messages=0)
    per_seed = sweep_map(
        partial(_fold_sweep_seed, latencies=tuple(latencies)),
        [int(s) for s in seeds],
        workers=workers,
        min_chunk=MIN_SEEDS_PER_WORKER if min_chunk is None else min_chunk,
    )
    for family, outcomes in per_seed:
        summary.cases += 1
        summary.by_family[family] = summary.by_family.get(family, 0) + 1
        for out in outcomes:
            summary.runs += 1
            summary.total_messages += out.messages
            summary.failures.extend(out.failures)
            if len(summary.failures) >= max_failures:
                return summary
    return summary


#: Smallest per-worker share of a fuzz sweep worth a process dispatch.
#: One seed costs a few milliseconds; below ~this many seeds per worker,
#: pool startup and per-task IPC exceed the work shipped and sweep_map
#: degrades to the (bit-identical) serial loop instead.
MIN_SEEDS_PER_WORKER = 48


def fuzz_sweep(
    seeds: "range | list[int]",
    latencies: tuple[str, ...] = ("fixed", "uniform", "jittered"),
    *,
    max_failures: int = 50,
    workers: int | None = None,
    min_chunk: int = MIN_SEEDS_PER_WORKER,
    compiled_check: bool = True,
    chaos_check: bool = True,
) -> FuzzSummary:
    """Run a seeded sweep; every (seed, latency model) pair is one run.

    ``workers`` fans the per-seed work out over a process pool via
    :func:`repro.sim.sweep.sweep_map` (``None`` honours the
    ``REPRO_SWEEP_WORKERS`` environment variable).  The summary is
    *identical* to the serial sweep's for any worker count: outcomes are
    folded in seed submission order with the same accounting, including
    the ``max_failures`` early exit — a parallel sweep may merely
    compute results past the cut that the fold then discards.
    ``min_chunk`` (seeds per worker; see :func:`sweep_map`) keeps small
    sweeps serial where a pool could only add overhead;
    ``compiled_check`` and ``chaos_check`` are forwarded to
    :func:`run_case`.
    """
    summary = FuzzSummary(cases=0, runs=0, total_messages=0)
    seed_list = [int(s) for s in seeds]
    latencies = tuple(latencies)

    def fold(family: str, outcomes: "list[CaseOutcome]") -> bool:
        """Accumulate one seed's outcomes; True means keep sweeping."""
        summary.cases += 1
        summary.by_family[family] = summary.by_family.get(family, 0) + 1
        for out in outcomes:
            summary.runs += 1
            summary.total_messages += out.messages
            summary.failures.extend(out.failures)
            if len(summary.failures) >= max_failures:
                return False
        return True

    if resolve_workers(workers) <= 1:
        # Lazy serial loop: stop generating work at the failure cap.
        for seed in seed_list:
            case = make_case(seed)
            outcomes = []
            stop = False
            for name in latencies:
                outcomes.append(
                    run_case(
                        case,
                        name,
                        compiled_check=compiled_check,
                        chaos_check=chaos_check,
                    )
                )
                if len(summary.failures) + sum(
                    len(o.failures) for o in outcomes
                ) >= max_failures:
                    stop = True
                    break
            if not fold(case.family, outcomes) or stop:
                return summary
        return summary

    per_seed = sweep_map(
        partial(
            _sweep_seed,
            latencies=latencies,
            compiled_check=compiled_check,
            chaos_check=chaos_check,
        ),
        seed_list,
        workers=workers,
        min_chunk=min_chunk,
    )
    for family, outcomes in per_seed:
        if not fold(family, outcomes):
            return summary
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=500)
    parser.add_argument("--start", type=int, default=0)
    parser.add_argument(
        "--latencies", nargs="+", default=list(LATENCIES), choices=list(LATENCIES)
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process count for the sweep (default: REPRO_SWEEP_WORKERS "
        "env var, then cpu count; 1 = serial)",
    )
    parser.add_argument(
        "--fold",
        action="store_true",
        help="run the symmetry-folding dimension (random broadcast "
        "trees, folded == unfolded == machine) instead of the main "
        "program families",
    )
    args = parser.parse_args(argv)
    sweep = fold_fuzz_sweep if args.fold else fuzz_sweep
    summary = sweep(
        range(args.start, args.start + args.seeds),
        tuple(args.latencies),
        workers=args.workers,
    )
    print(
        f"{summary.cases} cases x {len(args.latencies)} latency models = "
        f"{summary.runs} runs, {summary.total_messages} messages"
    )
    print(f"families: {summary.by_family}")
    if summary.ok:
        print("OK — zero violations")
        return 0
    print(f"{len(summary.failures)} FAILURES:")
    for f in summary.failures[:20]:
        print(" ", f)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
