"""The network fabric interface and the latency-model fabric.

A *fabric* is the pluggable network layer of the LogP machine
(:class:`repro.sim.machine.LogPMachine`): when a committed message passes
the capacity check, the machine hands it to the fabric —
``submit(src, dst, t)`` — and the fabric answers with the absolute
delivery time plus the *network stall*, the portion of the flight spent
queued behind other traffic inside the network (zero for uncontended
fabrics).  Everything else — overheads, gaps, the capacity constraint,
stalling senders — stays in the machine; the fabric models only what
happens between injection and arrival.

Section 5 of the paper grounds ``L`` in real networks three ways:
topology average distance (§5.1), unloaded per-hop message time (§5.2),
and the sharp latency rise near saturation (§5.3).  The concrete fabrics
mirror that progression:

* :class:`LatencyFabric` (here) — wraps a
  :class:`~repro.sim.latency.LatencyModel`; the abstract network the
  paper's analyses assume.  With :class:`~repro.sim.latency.FixedLatency`
  it is bit-identical to the pre-fabric machine (enforced differentially
  by :mod:`repro.sim.fuzz`).
* :class:`~repro.sim.net.topology.TopologyFabric` — routes each message
  over an explicit :mod:`repro.topology` topology, charging per-hop
  delay so the unloaded flight time matches
  :mod:`repro.topology.unloaded` and never exceeds ``L``.
* :class:`~repro.sim.net.contention.ContentionFabric` — adds finite
  per-link capacity with FIFO link queues; offered load past saturation
  shows the §5.3 knee, reported as ``NetStall`` excess rather than
  silently folded into flight time (the model deliberately excludes
  saturated operation; the fabric makes the excursion observable).
* :class:`~repro.sim.net.faulty.FaultyFabric` — a decorator injecting
  seeded drop/duplicate/extra-delay faults, paired with the machine's
  sender-side timeout-and-retry protocol, for robustness testing.

Invariants every fabric must keep (checked by
:func:`repro.sim.validate.validate_schedule` with ``fabric=``):

1. ``unloaded(src, dst) <= bound`` for every pair, and the machine
   refuses a fabric whose ``bound`` exceeds its ``L`` — so below
   saturation the LogP clause *flight* ``<= L`` holds on every fabric;
2. for a deterministic fabric, every delivered message satisfies
   ``arrive - inject == unloaded(src, dst) + net_stall`` exactly
   (hop-consistent delivery);
3. ``net_stall >= 0``, and it is nonzero only when the message queued
   inside the network.

Observability (per-link utilization, queue-depth high-water marks) is
*trace-gated*: fabrics only collect it when the machine attached them
with ``trace=True``, so the untraced hot path stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

import numpy as np

from ..latency import FixedLatency, LatencyModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..engine import Engine

__all__ = ["Fabric", "FabricReport", "LatencyFabric"]


@dataclass(slots=True)
class FabricReport:
    """What one run moved through the fabric.

    Per-link maps are keyed by directed link id — ``(node, node)``
    tuples for topology fabrics — and are only populated on traced runs
    of fabrics that track links; uncontended fabrics report totals only.
    """

    fabric: str
    messages: int
    net_stall_total: float
    net_stall_max: float
    link_busy: dict[Hashable, float] = field(default_factory=dict)
    link_messages: dict[Hashable, int] = field(default_factory=dict)
    queue_high_water: dict[Hashable, int] = field(default_factory=dict)

    @property
    def links_used(self) -> int:
        return len(self.link_busy)

    @property
    def max_queue_depth(self) -> int:
        """Deepest FIFO any link reached (0 when nothing ever queued)."""
        return max(self.queue_high_water.values(), default=0)

    def utilization(self, makespan: float) -> dict[Hashable, float]:
        """Per-link busy fraction of the run (``busy_time / makespan``)."""
        if makespan <= 0:
            return {link: 0.0 for link in self.link_busy}
        return {
            link: busy / makespan for link, busy in self.link_busy.items()
        }

    def utilization_histogram(
        self, makespan: float, bins: int = 10
    ) -> tuple[np.ndarray, np.ndarray]:
        """Histogram of per-link utilizations over ``[0, 1]``.

        The §5.3 diagnostic: a healthy run has every link well below 1;
        a saturated run piles links into the top bin.  Returns
        ``(counts, bin_edges)`` as :func:`numpy.histogram` does.
        """
        util = list(self.utilization(makespan).values())
        return np.histogram(util, bins=bins, range=(0.0, 1.0))


class Fabric:
    """Message transport between injection and arrival.

    Subclasses set :attr:`bound` (the maximum *unloaded* flight time —
    the machine refuses a fabric whose bound exceeds its ``L``) and
    implement :meth:`submit`.  :attr:`deterministic` declares that
    :meth:`unloaded` predicts the uncontended flight exactly, which
    enables the validator's hop-consistency clause; :attr:`lossy` marks
    fault-injecting fabrics the machine must run its retry protocol
    over.
    """

    #: Maximum unloaded flight time; must be ``<= L`` of the machine.
    bound: float = 0.0
    #: ``unloaded()`` is the exact uncontended flight (enables the
    #: validator's hop-consistency check).
    deterministic: bool = False
    #: Fault-injecting fabric: the machine must use submit_lossy() and
    #: its timeout-and-retry protocol (see repro.sim.net.faulty).
    lossy: bool = False

    def submit(self, src: int, dst: int, t: float) -> tuple[float, float]:
        """Accept a message injected at ``t``; return
        ``(arrival_time, net_stall)``.

        ``net_stall`` is the queueing excess over the unloaded flight —
        always 0 for uncontended fabrics.  Calls arrive in nondecreasing
        ``t`` (the machine submits at injection events, which the engine
        dispatches in time order), which is what lets stateful fabrics
        resolve FIFO link contention deterministically at submit time.
        """
        raise NotImplementedError

    def unloaded(self, src: int, dst: int) -> float:
        """Uncontended flight time for the pair (exact when
        :attr:`deterministic`, an upper bound otherwise)."""
        return self.bound

    def attach(self, engine: "Engine", P: int, trace: bool) -> None:
        """Called by the machine at the start of every run, before any
        submit.  ``engine`` lets stateful fabrics schedule their own
        bookkeeping events; ``trace`` gates observability collection."""

    def reset(self) -> None:
        """Restore initial state (queues, RNG streams) for a rerun."""

    def report(self) -> FabricReport:
        """Summarize the traffic of the last run.

        Raises:
            ValueError: if the run was untraced and this fabric only
                collects its statistics under tracing.
        """
        raise NotImplementedError


class LatencyFabric(Fabric):
    """The src/dst-agnostic fabric: flight times from a
    :class:`~repro.sim.latency.LatencyModel`.

    This is exactly the network the machine had before the fabric layer
    existed; with :class:`~repro.sim.latency.FixedLatency` the machine
    bypasses :meth:`submit` entirely (the constant is inlined into the
    injection hot path), so the refactor costs the untraced fast path
    nothing — and the fuzz harness pins the schedules bit-identical.
    """

    def __init__(self, model: LatencyModel) -> None:
        self.model = model
        self.bound = model.L
        self.deterministic = type(model) is FixedLatency
        self._messages = 0
        self._traced = False

    def submit(self, src: int, dst: int, t: float) -> tuple[float, float]:
        if self._traced:
            self._messages += 1
        return t + self.model.draw(src, dst), 0.0

    def unloaded(self, src: int, dst: int) -> float:
        return self.model.L

    def attach(self, engine: "Engine", P: int, trace: bool) -> None:
        self._traced = trace
        self._messages = 0

    def reset(self) -> None:
        self.model.reset()
        self._messages = 0

    def report(self) -> FabricReport:
        return FabricReport(
            fabric=f"LatencyFabric({type(self.model).__name__})",
            messages=self._messages,
            net_stall_total=0.0,
            net_stall_max=0.0,
        )
