"""Contention fabric: finite link capacity and the §5.3 saturation knee.

"In a real machine the latency experienced by a message tends to
increase as a function of the load ... there is typically a saturation
point at which the latency increases sharply."  §5.3 captures that knee
with the standalone packet simulator of
:mod:`repro.topology.saturation`; :class:`ContentionFabric` brings the
same mechanism *inside* the LogP machine: store-and-forward routing
where every directed link serves one message per :attr:`hop_delay`
cycles and FIFO-queues the rest.

A message injected at ``t`` crosses its route link by link; at each link
it waits until both it has arrived (``t_cur``) and the link is free,
then occupies the link for ``hop_delay``::

    start = max(t_cur, link_free[link]);  link_free[link] = start + hop_delay

The returned flight decomposes exactly as ``unloaded(src, dst) +
net_stall`` where ``net_stall`` is the total time spent queued — the
validator's hop-consistency clause.  Below saturation ``net_stall`` is
(near) zero and the LogP bound ``flight <= L`` holds; past saturation
the excess is *reported* (as ``NetStall`` trace events and in the
fabric report) rather than hidden, mirroring the paper's observation
that the model deliberately excludes saturated operation.

Contention is resolved at submit time: the machine submits messages at
their injection events, which the engine dispatches in deterministic
``(time, seq)`` order, so the FIFO order at every link is the global
injection order — no extra network events are needed for *semantics*.
The engine is used for *observability*: on traced runs the fabric
schedules queue-enter/queue-leave bookkeeping events so per-link queue
depth (and its high-water mark) is tracked in simulation time.
"""

from __future__ import annotations

from typing import Hashable

from .topology import TopologyFabric

__all__ = ["ContentionFabric"]


class ContentionFabric(TopologyFabric):
    """A :class:`TopologyFabric` whose links have finite capacity.

    Same constructors (:meth:`~TopologyFabric.for_topology`,
    :meth:`~TopologyFabric.ring`) and routing; ``hop_delay`` doubles as
    the per-link service time (store-and-forward: an unloaded hop costs
    exactly one service).  ``hop_delay == 0`` (an infinitely fast
    network, the ``L = serialization`` corner) never queues.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._link_free: dict[Hashable, float] = {}
        self._queue_depth: dict[Hashable, int] = {}
        self._queue_high: dict[Hashable, int] = {}
        self._engine = None

    def submit(self, src: int, dst: int, t: float) -> tuple[float, float]:
        links = self._route_links(src, dst)
        hop = self.hop_delay
        link_free = self._link_free
        t_cur = t + self.serialization
        stall = 0.0
        traced = self._traced
        for link in links:
            free = link_free.get(link, 0.0)
            if free > t_cur:
                stall += free - t_cur
                if traced:
                    self._watch_queue(link, t_cur, free)
                t_cur = free
            done = t_cur + hop
            link_free[link] = done
            t_cur = done
        if traced:
            self._account(links, stall)
        return t_cur, stall

    # -- queue-depth observability (traced runs only) ------------------

    def _watch_queue(self, link: Hashable, enter: float, leave: float) -> None:
        """Track one message's wait on ``link`` over ``[enter, leave)``.

        Depth changes are scheduled through the machine's engine so they
        interleave with every other message's waits in simulation time;
        the high-water mark is taken at enter events.
        """
        engine = self._engine
        engine.schedule(enter, self._queue_enter, link)
        engine.schedule(leave, self._queue_leave, link)

    def _queue_enter(self, link: Hashable) -> None:
        depth = self._queue_depth.get(link, 0) + 1
        self._queue_depth[link] = depth
        if depth > self._queue_high.get(link, 0):
            self._queue_high[link] = depth

    def _queue_leave(self, link: Hashable) -> None:
        self._queue_depth[link] -= 1

    # -- Fabric interface ----------------------------------------------

    def attach(self, engine, P: int, trace: bool) -> None:
        super().attach(engine, P, trace)
        self._engine = engine
        self._link_free = {}
        self._queue_depth = {}
        self._queue_high = {}

    def reset(self) -> None:
        super().reset()
        self._link_free = {}
        self._queue_depth = {}
        self._queue_high = {}

    def _queue_high_water(self) -> dict[Hashable, int]:
        return dict(self._queue_high)
