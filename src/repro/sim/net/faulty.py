"""Fault-injecting fabric decorator for robustness testing.

Real networks drop, duplicate and delay packets; LogP abstracts all of
that away behind reliable delivery ``<= L``.  :class:`FaultyFabric`
wraps any inner fabric and injects seeded faults at submit time so the
machine's sender-side timeout-and-retry protocol (activated
automatically for ``lossy`` fabrics, see
:class:`repro.sim.machine.LogPMachine`) can be exercised under every
collective and fuzz family:

* **drop** — the message vanishes in the network (no arrival);
* **duplicate** — a second copy arrives after an extra seeded delay;
* **delay** — the single copy arrives late, past the inner fabric's
  unloaded time (and possibly past the sender's retry timeout, which
  then produces a retransmission *and* a late original — the classic
  duplicate-generation path ARQ protocols must dedup).

The machine's protocol: every logical message keeps its sequence number
across retransmissions; the receiver's network interface delivers the
first copy of each sequence number and discards the rest; each delivery
is acknowledged over a reliable zero-overhead control channel (ack
flight = the inner fabric's bound); a sender that has not been acked
``retry_timeout`` cycles after injection resubmits, up to
``max_retries`` times.  Delivery therefore stays *exactly-once* in
program order per pair — the collectives run unmodified — while the
trace shows retries, drops and suppressed duplicates
(``MachineResult.extras["net_faults"]``).

A lossy run deliberately steps outside the LogP contract: end-to-end
times are unbounded (retries), so the machine disables the capacity
constraint (retransmissions happen below the model's capacity
accounting) and traces from lossy runs are not semantically validated
against ``flight <= L``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fabric import Fabric, FabricReport

__all__ = ["FaultyFabric", "LossyOutcome"]


@dataclass(frozen=True, slots=True)
class LossyOutcome:
    """What the faulty network did to one submitted copy.

    ``deliveries`` holds zero (dropped), one, or two (duplicated)
    absolute arrival times; ``net_stall`` is the inner fabric's
    queueing excess for the underlying flight.
    """

    deliveries: tuple[float, ...]
    net_stall: float
    dropped: bool
    duplicated: bool
    delayed: bool


class FaultyFabric(Fabric):
    """Decorate ``inner`` with seeded drop/duplicate/delay faults.

    Args:
        inner: the fabric that computes the underlying flight times.
        drop: probability a submitted copy is lost entirely.
        duplicate: probability a delivered copy is accompanied by a
            second, later copy.
        delay: probability a delivered copy is held back by an extra
            exponential delay.
        delay_scale: mean of the extra delay (and of the duplicate
            copy's lag), in cycles; defaults to the inner bound (so a
            delayed copy typically misses the LogP window).
        seed: seed of the fabric's dedicated fault stream.
    """

    lossy = True

    def __init__(
        self,
        inner: Fabric,
        *,
        drop: float = 0.0,
        duplicate: float = 0.0,
        delay: float = 0.0,
        delay_scale: float | None = None,
        seed: int = 0,
    ) -> None:
        for name, p in (("drop", drop), ("duplicate", duplicate), ("delay", delay)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if inner.lossy:
            raise ValueError("cannot stack FaultyFabric on a lossy fabric")
        self.inner = inner
        self.bound = inner.bound
        self.drop = drop
        self.duplicate = duplicate
        self.delay = delay
        self.delay_scale = (
            delay_scale if delay_scale is not None else max(inner.bound, 1.0)
        )
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._drops = 0
        self._duplicates = 0
        self._delays = 0

    def submit(self, src: int, dst: int, t: float) -> tuple[float, float]:
        raise TypeError(
            "FaultyFabric is lossy: delivery is not guaranteed, so the "
            "machine must drive it through submit_lossy() and its "
            "timeout-and-retry protocol"
        )

    def submit_lossy(self, src: int, dst: int, t: float) -> LossyOutcome:
        """Submit one copy (initial send or retransmission)."""
        arrive, net_stall = self.inner.submit(src, dst, t)
        rng = self._rng
        if self.drop and rng.random() < self.drop:
            self._drops += 1
            return LossyOutcome((), net_stall, True, False, False)
        delayed = bool(self.delay) and rng.random() < self.delay
        if delayed:
            self._delays += 1
            arrive += float(rng.exponential(self.delay_scale))
        deliveries = [arrive]
        duplicated = bool(self.duplicate) and rng.random() < self.duplicate
        if duplicated:
            self._duplicates += 1
            deliveries.append(arrive + float(rng.exponential(self.delay_scale)))
        return LossyOutcome(tuple(deliveries), net_stall, False, duplicated, delayed)

    def unloaded(self, src: int, dst: int) -> float:
        return self.inner.unloaded(src, dst)

    def attach(self, engine, P: int, trace: bool) -> None:
        self.inner.attach(engine, P, trace)

    def reset(self) -> None:
        self.inner.reset()
        self._rng = np.random.default_rng(self._seed)
        self._drops = 0
        self._duplicates = 0
        self._delays = 0

    @property
    def fault_counts(self) -> dict[str, int]:
        """Faults injected since the last reset."""
        return {
            "drops": self._drops,
            "duplicates": self._duplicates,
            "delays": self._delays,
        }

    def report(self) -> FabricReport:
        inner = self.inner.report()
        return FabricReport(
            fabric=f"FaultyFabric({inner.fabric})",
            messages=inner.messages,
            net_stall_total=inner.net_stall_total,
            net_stall_max=inner.net_stall_max,
            link_busy=inner.link_busy,
            link_messages=inner.link_messages,
            queue_high_water=inner.queue_high_water,
        )
