"""Pluggable network fabrics connecting :mod:`repro.topology` to the
discrete-event machine.

The :class:`~repro.sim.machine.LogPMachine` delegates message transport
to a :class:`Fabric`: ``submit(src, dst, t) -> (arrival, net_stall)``.
Four fabrics ship (see :mod:`repro.sim.net.fabric` for the contract and
invariants):

* :class:`LatencyFabric` — the abstract src/dst-agnostic network the
  paper's analyses assume (wraps a
  :class:`~repro.sim.latency.LatencyModel`; the machine's default).
* :class:`TopologyFabric` — routes over an explicit §5.1 topology,
  charging §5.2 per-hop delay; unloaded flight ``<= L`` always.
* :class:`ContentionFabric` — finite per-link capacity with FIFO link
  queues; shows the §5.3 saturation knee, reporting the excess as
  ``NetStall``.
* :class:`FaultyFabric` — seeded drop/duplicate/delay fault injection,
  driven by the machine's timeout-and-retry protocol.
"""

from .contention import ContentionFabric
from .fabric import Fabric, FabricReport, LatencyFabric
from .faulty import FaultyFabric, LossyOutcome
from .topology import TopologyFabric, ring_router, router_for

__all__ = [
    "Fabric",
    "FabricReport",
    "LatencyFabric",
    "TopologyFabric",
    "ContentionFabric",
    "FaultyFabric",
    "LossyOutcome",
    "router_for",
    "ring_router",
]
