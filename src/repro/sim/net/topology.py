"""Topology-routed fabric: hop-charged flight over a §5.1 network.

:class:`TopologyFabric` routes every message over an explicit
:mod:`repro.topology` topology using the deterministic routers of
:mod:`repro.topology.routing` (e-cube for hypercubes, dimension-order
for meshes and tori, up-down for fat trees, stage-forwarding for
butterflies) and charges the §5.2 unloaded network time per message::

    flight(src, dst) = serialization + hops(src, dst) * hop_delay

— ``ceil(M/w)`` channel-width serialization plus ``H*r`` per-node
routing delay, exactly the network portion of
:func:`repro.topology.unloaded.unloaded_time` (the ``Tsnd``/``Trcv``
overheads are the machine's ``o``, not the fabric's business).  The
fabric's :attr:`bound` is the diameter flight, so calibrating
``hop_delay = (L - serialization) / diameter`` (what the ``L=`` keyword
does) makes the worst-case route take exactly ``L`` and every other
route strictly less — the LogP reading of ``L`` as an upper bound whose
slack is topology-dependent distance.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from ...topology.routing import (
    butterfly_route,
    fat_tree_route,
    grid_route,
    hypercube_route,
)
from ...topology.topologies import (
    Butterfly,
    FatTree,
    Hypercube,
    Topology,
    _Grid,
)
from .fabric import Fabric, FabricReport

__all__ = ["TopologyFabric", "router_for", "ring_router"]

#: ``router(src, dst)`` -> node sequence from src to dst inclusive.
Router = Callable[[int, int], Sequence[Hashable]]


def ring_router(P: int) -> Router:
    """Dimension-order router on a ``P``-node ring (1-D torus).

    The ring is not in the paper's §5.1 table, but it is the one
    topology defined for *every* ``P >= 2``, which makes it the fabric
    the fuzz sweep can route arbitrary generated cases over.
    """

    def route(src: int, dst: int) -> list[int]:
        return [c[0] for c in grid_route((src,), (dst,), (P,), wrap=True)]

    return route


def router_for(topology: Topology) -> Router:
    """The deterministic router for a :mod:`repro.topology` topology.

    Ranks are identified with nodes (hypercube), leaves (fat tree),
    entry/exit rows (butterfly) or row-major grid coordinates
    (meshes/tori); routes are the node sequences of
    :mod:`repro.topology.routing`.
    """
    if isinstance(topology, Hypercube):
        import math

        dim = int(math.log2(topology.P))
        return lambda src, dst: hypercube_route(src, dst, dim)
    if isinstance(topology, Butterfly):
        import math

        dim = int(math.log2(topology.P))
        return lambda src, dst: butterfly_route(src, dst, dim)
    if isinstance(topology, FatTree):
        height = topology.height
        return lambda src, dst: fat_tree_route(src, dst, height)
    if isinstance(topology, _Grid):
        side, dims, wrap = topology.side, topology.dims, topology.wrap
        shape = (side,) * dims

        def to_coords(rank: int) -> tuple[int, ...]:
            coords = []
            for _ in range(dims):
                coords.append(rank % side)
                rank //= side
            return tuple(reversed(coords))

        return lambda src, dst: grid_route(
            to_coords(src), to_coords(dst), shape, wrap=wrap
        )
    raise TypeError(
        f"no router known for topology {type(topology).__name__}; pass an "
        "explicit router to TopologyFabric"
    )


class TopologyFabric(Fabric):
    """Route messages over an explicit topology, charging per-hop delay.

    Args:
        P: processor count (ranks ``0..P-1`` are the routable sources
            and destinations).
        router: ``router(src, dst)`` -> node sequence, src to dst
            inclusive (see :func:`router_for` / :func:`ring_router`).
        hop_delay: cycles per link crossed (§5.2's per-node delay ``r``).
        serialization: fixed per-message cycles (§5.2's ``ceil(M/w)``
            channel-width term).
        max_hops: longest route the router can produce (the diameter).
            ``None`` measures it by routing every ordered pair — fine
            for the simulator's processor counts, quadratic in ``P``.
        name: label for reports.
    """

    deterministic = True

    def __init__(
        self,
        P: int,
        router: Router,
        *,
        hop_delay: float = 1.0,
        serialization: float = 0.0,
        max_hops: int | None = None,
        name: str = "",
    ) -> None:
        if P < 2:
            raise ValueError(f"a routable fabric needs P >= 2, got {P}")
        if hop_delay < 0 or serialization < 0:
            raise ValueError("hop_delay and serialization must be >= 0")
        self.P = P
        self.router = router
        self.hop_delay = hop_delay
        self.serialization = serialization
        self.name = name or type(self).__name__
        # Route cache: (src, dst) -> tuple of directed link ids.  Routes
        # are deterministic, so caching cannot change behaviour.
        self._links: dict[tuple[int, int], tuple] = {}
        if max_hops is None:
            max_hops = max(
                len(self._route_links(s, d))
                for s in range(P)
                for d in range(P)
                if s != d
            )
        self.max_hops = max_hops
        self.bound = serialization + max_hops * hop_delay
        self._traced = False
        self._messages = 0
        self._net_stall_total = 0.0
        self._net_stall_max = 0.0
        self._link_busy: dict[Hashable, float] = {}
        self._link_msgs: dict[Hashable, int] = {}

    # -- construction helpers ------------------------------------------

    @classmethod
    def for_topology(
        cls,
        topology: Topology,
        *,
        hop_delay: float | None = None,
        serialization: float = 0.0,
        L: float | None = None,
        **kwargs,
    ) -> "TopologyFabric":
        """Build a fabric over a :mod:`repro.topology` topology.

        Either give ``hop_delay`` directly, or give ``L`` to calibrate
        ``hop_delay = (L - serialization) / diameter`` so the diameter
        route takes exactly ``L`` (``bound == L``).
        """
        diameter = topology.diameter()
        hop_delay = cls._calibrate(hop_delay, serialization, L, diameter)
        return cls(
            topology.P,
            router_for(topology),
            hop_delay=hop_delay,
            serialization=serialization,
            max_hops=diameter,
            name=f"{cls.__name__}[{topology.name}]",
            **kwargs,
        )

    @classmethod
    def ring(
        cls,
        P: int,
        *,
        hop_delay: float | None = None,
        serialization: float = 0.0,
        L: float | None = None,
        **kwargs,
    ) -> "TopologyFabric":
        """A ``P``-node ring fabric (defined for every ``P >= 2``)."""
        diameter = max(1, P // 2)
        hop_delay = cls._calibrate(hop_delay, serialization, L, diameter)
        return cls(
            P,
            ring_router(P),
            hop_delay=hop_delay,
            serialization=serialization,
            max_hops=diameter,
            name=f"{cls.__name__}[Ring{P}]",
            **kwargs,
        )

    @staticmethod
    def _calibrate(
        hop_delay: float | None,
        serialization: float,
        L: float | None,
        diameter: int,
    ) -> float:
        if hop_delay is not None:
            if L is not None:
                raise ValueError("give hop_delay or L, not both")
            return hop_delay
        if L is None:
            return 1.0
        if L < serialization:
            raise ValueError(
                f"cannot calibrate: L={L} is below serialization="
                f"{serialization}"
            )
        return (L - serialization) / max(1, diameter)

    # -- routing -------------------------------------------------------

    def _route_links(self, src: int, dst: int) -> tuple:
        """Directed link ids of the pair's route, cached."""
        key = (src, dst)
        links = self._links.get(key)
        if links is None:
            nodes = self.router(src, dst)
            links = tuple(zip(nodes, nodes[1:]))
            if not links:
                raise ValueError(
                    f"router produced an empty route for {src}->{dst}"
                )
            self._links[key] = links
        return links

    def hops(self, src: int, dst: int) -> int:
        """Links crossed by the pair's route."""
        return len(self._route_links(src, dst))

    # -- Fabric interface ----------------------------------------------

    def unloaded(self, src: int, dst: int) -> float:
        return self.serialization + self.hops(src, dst) * self.hop_delay

    def submit(self, src: int, dst: int, t: float) -> tuple[float, float]:
        links = self._route_links(src, dst)
        if self._traced:
            self._account(links, 0.0)
        return t + self.serialization + len(links) * self.hop_delay, 0.0

    def _account(self, links: tuple, net_stall: float) -> None:
        self._messages += 1
        if net_stall > 0.0:
            self._net_stall_total += net_stall
            if net_stall > self._net_stall_max:
                self._net_stall_max = net_stall
        busy, msgs, hop = self._link_busy, self._link_msgs, self.hop_delay
        for link in links:
            busy[link] = busy.get(link, 0.0) + hop
            msgs[link] = msgs.get(link, 0) + 1

    def attach(self, engine, P: int, trace: bool) -> None:
        if P > self.P:
            raise ValueError(
                f"machine has {P} processors but the fabric routes only "
                f"{self.P}"
            )
        self._traced = trace
        self._clear_stats()

    def _clear_stats(self) -> None:
        self._messages = 0
        self._net_stall_total = 0.0
        self._net_stall_max = 0.0
        self._link_busy = {}
        self._link_msgs = {}

    def reset(self) -> None:
        self._clear_stats()

    def report(self) -> FabricReport:
        if not self._traced:
            raise ValueError(
                "fabric statistics are trace-gated: re-run the machine "
                "with trace=True to collect a fabric report"
            )
        return FabricReport(
            fabric=self.name,
            messages=self._messages,
            net_stall_total=self._net_stall_total,
            net_stall_max=self._net_stall_max,
            link_busy=dict(self._link_busy),
            link_messages=dict(self._link_msgs),
            queue_high_water=self._queue_high_water(),
        )

    def _queue_high_water(self) -> dict[Hashable, int]:
        """Uncontended fabric: nothing ever queues."""
        return {}
