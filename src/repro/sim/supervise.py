"""Supervised process pool: crash-tolerant fan-out for :func:`sweep_map`.

:class:`~repro.sim.sweep.WorkerPool` wraps ``multiprocessing.Pool``,
whose blocking ``map()`` has no story for a worker that *dies*: a
SIGKILLed child (the OOM killer at a 2^20-point folded grid, a chaos
drill, a segfaulting extension) either hangs the call or poisons the
whole pool.  The simulated machine learned crash-stop/detect/recover
discipline in :mod:`repro.sim.faults`; this module gives the
*infrastructure that runs the simulations* the same discipline.

:class:`SupervisedPool` keeps one ``multiprocessing.Process`` per
worker slot with a dedicated duplex pipe, and dispatches chunks
asynchronously from a supervision loop:

* **Death detection.**  The loop waits on every worker's pipe *and*
  process sentinel (``multiprocessing.connection.wait``), so a killed
  worker is noticed within one tick even mid-chunk; an optional
  per-chunk heartbeat deadline (``chunk_timeout``) additionally SIGKILLs
  and replaces a worker whose chunk has produced nothing for too long
  (a wedged worker is indistinguishable from a dead one to callers).
* **Restart.**  A dead worker slot is refilled immediately; the
  ``restarts`` counter is surfaced through the server's health stats.
* **Retry with backoff.**  The dead worker's orphaned chunk is
  resubmitted under a :class:`~repro.sim.faults.RetryPolicy` — the same
  ``Fixed`` / ``ExponentialBackoff`` / ``Budgeted`` taxonomy the lossy
  fabric ARQ uses, with seconds in place of cycles — after
  ``policy.next_delay(attempt, index, spent=...)``.  A multi-item chunk
  is first *split into singletons* so one poison item cannot starve its
  innocent chunk-mates.
* **Quarantine.**  A singleton item that has killed its worker
  ``max_attempts`` times (or exhausted the policy's budget) is
  quarantined, and the sweep fails with a structured
  :class:`PoisonItemError` naming the item — deterministically the
  *lowest* quarantined submission index, for any worker count, matching
  :class:`~repro.sim.sweep.SweepItemError`'s lowest-index contract.
  Items below the poison index still run to completion first, so the
  raised index never depends on scheduling order.
* **Deadline.**  ``map(..., deadline=...)`` (or the pool-wide
  ``map_deadline``) bounds the whole call: on expiry every worker is
  killed and :class:`SweepDeadlineError` names the unresolved item
  count — a supervised sweep never hangs past its deadline.

The determinism contract is :func:`~repro.sim.sweep.sweep_map`'s:
results merge in submission order, bit-identical to the serial loop for
any worker count and any interleaving of worker deaths, because retries
recompute items from the same pickled inputs and a deterministic ``fn``
(the repository-wide requirement) produces the same bytes on any
attempt.  The pool duck-types :class:`~repro.sim.sweep.WorkerPool`
(``workers`` / ``started`` / ``map`` / ``close``), so
``sweep_map(..., pool=SupervisedPool(...))`` and the
:mod:`repro.serve` server drop it in unchanged.

What is *not* retried: an ordinary Python exception raised by ``fn``
crosses the pipe and fails the call immediately (exceptions are
deterministic — retrying one is wasted work); under ``sweep_map`` the
guarded wrapper converts those into indexed
:class:`~repro.sim.sweep.SweepItemError` failures exactly as before.
Only worker *death* — the nondeterministic, infrastructure-level
failure — enters the retry/quarantine path.
"""

from __future__ import annotations

import pickle
import signal
import time
import multiprocessing
from multiprocessing import connection as mp_connection

from .faults import ExponentialBackoffRetry, RetryPolicy
from .sweep import resolve_workers

__all__ = [
    "PoisonItemError",
    "SupervisedPool",
    "SweepDeadlineError",
    "WorkerRestartStorm",
]

_OK = "ok"
_EXC = "exc"
_MISSING = object()


class PoisonItemError(RuntimeError):
    """A sweep item repeatedly killed its worker and was quarantined.

    ``index`` is the submission index (deterministically the lowest
    quarantined one), ``attempts`` how many workers it killed before
    quarantine.  The item's ``repr`` is embedded in the message so logs
    name the poison input, not just its position.
    """

    def __init__(self, index: int, total: int, attempts: int, item_repr: str):
        super().__init__(
            f"sweep item {index} of {total} killed its worker "
            f"{attempts} time(s) and was quarantined as poison: {item_repr}"
        )
        self.index = index
        self.total = total
        self.attempts = attempts


class SweepDeadlineError(RuntimeError):
    """A supervised ``map`` exceeded its deadline; all workers killed.

    ``pending`` counts the items that never produced a result.  Raised
    instead of hanging — the point of the deadline.
    """

    def __init__(self, deadline: float, pending: int, total: int):
        super().__init__(
            f"supervised sweep missed its {deadline}s deadline with "
            f"{pending} of {total} item(s) unresolved; workers killed"
        )
        self.deadline = deadline
        self.pending = pending
        self.total = total


class WorkerRestartStorm(RuntimeError):
    """Workers are dying faster than supervision can make progress.

    The supervisor bounds total deaths per ``map`` call at
    ``8 + max_attempts * n_items``; exceeding it means the environment
    (not any one item) is killing workers — e.g. fork failure or a
    machine-wide OOM — and retrying forever would hang, so refuse
    loudly instead.
    """


def _supervised_worker(conn) -> None:
    """Child main loop: recv ``(chunk_id, fn, items)``, send results.

    An ordinary exception from ``fn`` is shipped back as an ``exc``
    frame (downgraded to a picklable ``RuntimeError`` if needed) — the
    worker survives and takes the next chunk.  Only process death ends
    the loop, which is exactly what the parent's sentinel watch is for.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        chunk_id, fn, items = task
        try:
            out = [fn(item) for item in items]
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            try:
                pickle.loads(pickle.dumps(exc))
            except Exception:  # noqa: BLE001 - unpicklable exception
                exc = RuntimeError(
                    f"unpicklable worker exception "
                    f"{type(exc).__name__}: {exc!r}"
                )
            try:
                conn.send((chunk_id, _EXC, exc))
            except (EOFError, OSError, BrokenPipeError):
                return
            continue
        try:
            conn.send((chunk_id, _OK, out))
        except (EOFError, OSError, BrokenPipeError):
            return
        except Exception as exc:  # noqa: BLE001 - unpicklable result
            conn.send(
                (
                    chunk_id,
                    _EXC,
                    RuntimeError(
                        f"unpicklable worker result for chunk {chunk_id}: "
                        f"{type(exc).__name__}: {exc!r}"
                    ),
                )
            )


class _Chunk:
    """A contiguous [lo, hi) slice of the sweep with its retry history."""

    __slots__ = ("cid", "lo", "hi", "attempts", "not_before", "spent")

    def __init__(self, cid, lo, hi, attempts=0, not_before=0.0, spent=0.0):
        self.cid = cid
        self.lo = lo
        self.hi = hi
        self.attempts = attempts  # worker deaths charged to this slice
        self.not_before = not_before  # monotonic dispatch gate (backoff)
        self.spent = spent  # cumulative backoff, for policy budgets


class _WorkerHandle:
    __slots__ = ("proc", "conn", "chunk", "since")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.chunk = None  # the in-flight _Chunk, if any
        self.since = 0.0  # monotonic dispatch time of that chunk


class _MapFailed(Exception):
    """Internal control flow: a worker shipped an ordinary exception."""

    def __init__(self, original: BaseException):
        self.original = original


class SupervisedPool:
    """A self-healing process pool; see the module docstring.

    Drop-in for :class:`~repro.sim.sweep.WorkerPool` wherever one is
    passed to ``sweep_map(..., pool=...)``.  Not thread-safe: one
    ``map`` at a time (the serve batcher and the bench loops already
    serialize their sweeps).

    Args:
        workers: slot count; ``None`` resolves via
            :func:`~repro.sim.sweep.resolve_workers`.
        retry: backoff schedule for orphaned chunks, any
            :class:`~repro.sim.faults.RetryPolicy` read in *seconds*.
            Default ``ExponentialBackoffRetry(base=0.05, cap=1.0)``.
        max_attempts: worker deaths a single item may cause before
            quarantine (>= 1).
        chunk_timeout: per-chunk heartbeat deadline in seconds; a worker
            silent on one chunk for longer is SIGKILLed and the chunk
            enters the ordinary orphan/retry path.  ``None`` disables.
        map_deadline: default overall deadline per ``map`` call in
            seconds (overridable per call); ``None`` means unbounded.
        tick: supervision loop wake-up bound in seconds.
        death_budget: worker deaths a single ``map`` call tolerates
            before :class:`WorkerRestartStorm`; ``None`` (the default)
            derives ``8 + max_attempts * len(items)`` — generous enough
            that legitimate retries never trip it, finite enough that a
            crash loop (e.g. an external killer faster than progress)
            cannot spin forever.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        retry: RetryPolicy | None = None,
        max_attempts: int = 3,
        chunk_timeout: float | None = None,
        map_deadline: float | None = None,
        tick: float = 0.05,
        death_budget: int | None = None,
    ):
        self.workers = resolve_workers(workers)
        self.retry = (
            retry
            if retry is not None
            else ExponentialBackoffRetry(base=0.05, mult=2.0, cap=1.0)
        )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ValueError(
                f"chunk_timeout must be > 0, got {chunk_timeout}"
            )
        if death_budget is not None and death_budget < 1:
            raise ValueError(
                f"death_budget must be >= 1, got {death_budget}"
            )
        self.max_attempts = max_attempts
        self.chunk_timeout = chunk_timeout
        self.map_deadline = map_deadline
        self.tick = tick
        self.death_budget = death_budget
        #: Worker processes replaced after a death (cumulative).
        self.restarts = 0
        #: Worker deaths observed (cumulative; includes heartbeat kills).
        self.deaths = 0
        self._handles: list[_WorkerHandle] = []
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._next_cid = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def started(self) -> bool:
        return bool(self._handles)

    def pids(self) -> list[int]:
        """Live worker PIDs — what a chaos harness aims its SIGKILLs at."""
        return [
            h.proc.pid
            for h in self._handles
            if h.proc.pid is not None and h.proc.is_alive()
        ]

    def _spawn(self) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_supervised_worker, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return _WorkerHandle(proc, parent_conn)

    def _ensure_started(self) -> None:
        # Replace slots whose worker died while the pool sat idle
        # (between map calls nobody watches the sentinels).
        alive = []
        for h in self._handles:
            if h.proc.is_alive():
                alive.append(h)
            else:
                self._discard(h)
                self.restarts += 1
        self._handles = alive
        while len(self._handles) < self.workers:
            self._handles.append(self._spawn())

    def _discard(self, h: _WorkerHandle) -> None:
        try:
            h.conn.close()
        except OSError:
            pass
        if h.proc.is_alive():
            h.proc.kill()
        h.proc.join(timeout=5.0)

    def _replace(self, h: _WorkerHandle) -> None:
        self._discard(h)
        self.restarts += 1
        self._handles[self._handles.index(h)] = self._spawn()

    def close(self, drain: bool = True) -> None:
        """Tear the pool down.

        ``drain=True`` (default) asks each worker to finish and exit via
        a shutdown frame and joins it; a worker that ignores the frame
        for 5s is killed.  ``drain=False`` SIGKILLs immediately.  ``map``
        is synchronous, so there is never un-returned work to lose at
        close time — drain only changes how politely workers exit.
        """
        for h in self._handles:
            if drain:
                try:
                    h.conn.send(None)
                except (OSError, BrokenPipeError):
                    pass
            else:
                h.proc.kill()
        for h in self._handles:
            h.proc.join(timeout=5.0 if drain else 1.0)
            if h.proc.is_alive():
                h.proc.kill()
                h.proc.join(timeout=1.0)
            try:
                h.conn.close()
            except OSError:
                pass
        self._handles = []

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the supervised map --------------------------------------------

    def map(
        self,
        fn,
        items: list,
        chunksize: int = 1,
        *,
        deadline: float | None = None,
    ) -> list:
        """Submission-order map with supervision; see the module docstring."""
        items = list(items)
        n = len(items)
        if n == 0:
            return []
        if deadline is None:
            deadline = self.map_deadline
        deadline_at = (
            None if deadline is None else time.monotonic() + deadline
        )
        chunksize = max(1, int(chunksize))
        self._ensure_started()

        queue: list[_Chunk] = []
        for lo in range(0, n, chunksize):
            queue.append(
                _Chunk(self._next_cid, lo, min(lo + chunksize, n))
            )
            self._next_cid += 1
        results: list = [_MISSING] * n
        quarantined: dict[int, int] = {}  # index -> attempts at quarantine
        death_budget = (
            self.death_budget
            if self.death_budget is not None
            else 8 + self.max_attempts * n
        )
        deaths_at_start = self.deaths

        def outstanding_below(bound: int) -> bool:
            if any(c.lo < bound for c in queue):
                return True
            return any(
                h.chunk is not None and h.chunk.lo < bound
                for h in self._handles
            )

        def schedule(cid, lo, hi, attempts, spent, now) -> None:
            # One retry step for an orphaned slice: quarantine at the
            # attempt cap or on budget exhaustion, else backoff-gate it.
            if hi - lo == 1 and attempts >= self.max_attempts:
                quarantined[lo] = attempts
                return
            d = self.retry.next_delay(attempts, lo, spent=spent)
            if d is None:
                if hi - lo == 1:
                    quarantined[lo] = attempts
                    return
                d = 0.0  # multi-item slices always retry (split below)
            queue.append(
                _Chunk(cid, lo, hi, attempts, now + d, spent + d)
            )

        def orphan(c: _Chunk, now: float) -> None:
            attempts = c.attempts + 1
            if c.hi - c.lo > 1:
                # Split to singletons: blame lands on exactly one item
                # and innocents retry without inheriting its fate beyond
                # this shared death.
                for i in range(c.lo, c.hi):
                    schedule(self._next_cid, i, i + 1, attempts, c.spent, now)
                    self._next_cid += 1
            else:
                schedule(c.cid, c.lo, c.hi, attempts, c.spent, now)

        def on_death(h: _WorkerHandle, now: float) -> None:
            self.deaths += 1
            c, h.chunk = h.chunk, None
            if c is not None:
                orphan(c, now)
            self._replace(h)
            if self.deaths - deaths_at_start > death_budget:
                self._fail_inflight()
                raise WorkerRestartStorm(
                    f"{self.deaths - deaths_at_start} worker deaths for a "
                    f"{n}-item sweep (budget {death_budget}); the "
                    "environment is killing workers faster than "
                    "supervision can make progress"
                )

        def on_message(h: _WorkerHandle, msg) -> None:
            cid, kind, payload = msg
            c = h.chunk
            if c is None or c.cid != cid:
                return  # stale frame from an abandoned dispatch
            h.chunk = None
            if kind == _EXC:
                raise _MapFailed(payload)
            for off, val in enumerate(payload):
                results[c.lo + off] = val

        try:
            while True:
                qmin = min(quarantined) if quarantined else None
                if qmin is not None:
                    # Results at/above the poison index will never be
                    # returned; drop their queued work and, once every
                    # item below the poison index has resolved, raise.
                    queue = [c for c in queue if c.lo < qmin]
                    if not outstanding_below(qmin):
                        self._fail_inflight()
                        raise PoisonItemError(
                            qmin, n, quarantined[qmin],
                            repr(items[qmin])[:200],
                        )
                elif not queue and all(
                    h.chunk is None for h in self._handles
                ):
                    break
                now = time.monotonic()
                if deadline_at is not None and now >= deadline_at:
                    pending = sum(1 for r in results if r is _MISSING)
                    self._fail_inflight()
                    raise SweepDeadlineError(deadline, pending, n)

                # Dispatch ready chunks to idle workers in index order.
                queue.sort(key=lambda c: c.lo)
                for h in self._handles:
                    if h.chunk is not None:
                        continue
                    c = next(
                        (c for c in queue if c.not_before <= now), None
                    )
                    if c is None:
                        break
                    try:
                        h.conn.send(
                            (c.cid, fn, items[c.lo : c.hi])
                        )
                    except (OSError, BrokenPipeError):
                        # Died before dispatch: the chunk stays queued.
                        on_death(h, now)
                        continue
                    queue.remove(c)
                    h.chunk = c
                    h.since = now

                # How long may we sleep without missing a wake-up?
                timeout = self.tick
                for c in queue:
                    timeout = min(timeout, max(0.0, c.not_before - now))
                if deadline_at is not None:
                    timeout = min(timeout, max(0.0, deadline_at - now))
                if self.chunk_timeout is not None:
                    for h in self._handles:
                        if h.chunk is not None:
                            timeout = min(
                                timeout,
                                max(
                                    0.0,
                                    h.since + self.chunk_timeout - now,
                                ),
                            )

                by_obj = {}
                waitables = []
                for h in self._handles:
                    if h.chunk is not None:
                        waitables.append(h.conn)
                        by_obj[h.conn] = h
                    waitables.append(h.proc.sentinel)
                    by_obj[h.proc.sentinel] = h
                ready = (
                    mp_connection.wait(waitables, timeout)
                    if waitables
                    else []
                )
                now = time.monotonic()
                handled: set[int] = set()
                for obj in ready:
                    h = by_obj[obj]
                    if id(h) in handled:
                        continue
                    handled.add(id(h))
                    # Even when the *sentinel* fired, drain a buffered
                    # result first: a worker killed after sending has
                    # still done the work.
                    got = False
                    if h.chunk is not None:
                        try:
                            if h.conn.poll(0):
                                on_message(h, h.conn.recv())
                                got = True
                        except (EOFError, OSError):
                            pass
                    if not got and not h.proc.is_alive():
                        on_death(h, now)

                # Per-chunk heartbeat: a silent worker is a dead worker.
                if self.chunk_timeout is not None:
                    for h in list(self._handles):
                        if (
                            h.chunk is not None
                            and now - h.since > self.chunk_timeout
                        ):
                            h.proc.kill()
                            on_death(h, now)
        except _MapFailed as mf:
            self._fail_inflight()
            raise mf.original from None

        assert all(r is not _MISSING for r in results)
        return results

    def _fail_inflight(self) -> None:
        """Abandon in-flight chunks: kill their workers, refill slots.

        Called on any path that raises out of ``map`` — the results of
        still-running chunks are moot and a worker mid-poison-item must
        not outlive the call.
        """
        for h in list(self._handles):
            if h.chunk is not None:
                h.chunk = None
                h.proc.kill()
                self._replace(h)
