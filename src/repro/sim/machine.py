"""The simulated LogP machine.

:class:`LogPMachine` executes one program (a generator, see
:mod:`repro.sim.program`) per processor and enforces the model's
semantics from Section 3 of the paper:

* each send and each receive engages the processor for ``o`` cycles;
* consecutive sends at one processor start at least ``max(g, o)`` apart,
  and likewise consecutive receives (the gap ``g`` in both directions);
* at most ``ceil(L/g)`` messages may be *in transit* from any processor
  or to any processor; a transmission that would exceed either limit
  stalls the sender until a slot frees (the capacity constraint);
* message flight time is drawn from a :class:`~repro.sim.latency.LatencyModel`
  (exactly ``L`` by default; random ``<= L`` to exercise asynchrony and
  out-of-order delivery);
* processors are engaged during ``Compute`` and cannot service messages;
  while idle, sleeping, stalled or waiting they *drain* arrived messages
  (paying ``o`` per message, respecting the receive gap) — this is what
  lets a stalled sender's destination keep accepting one message per
  ``g`` cycles, the behaviour the paper's naive-FFT-schedule analysis
  describes ("one will send to processor 0 every g cycles").

Capacity accounting — the reading under which the model is
self-consistent: a message is *in transit from its source* between
injection (``send_start + o``) and arrival, so a sender pacing itself at
``g`` keeps at most ``L/g <= ceil(L/g)`` of its own messages in flight
and never self-stalls; it is *in transit to its destination* between
injection and the start of the destination's reception, so a flooded
destination — which drains at most one message per ``g`` — back-pressures
its senders, exactly the "all but L/g processors will stall on the first
send" dynamics of Section 4.1.2.  The capacity check happens at the
moment of injection ("if a processor attempts to transmit a message that
would exceed this limit, it stalls until the message can be sent"): the
send overhead is paid first, then the message waits at the interface —
with the processor stalled but able to service incoming messages — until
the network accepts it.

Stalled senders are tracked in an explicit *wait-graph*: each parked
sender records the full set of capacity slots its injection needs (its
own outbound slot, the destination's inbound slot, or both), and every
slot release scans the waiters of that slot in FIFO order, admitting
every sender whose complete constraint set is satisfiable at release
time.  Admission is a *re-examination*, not a reservation — the admitted
sender re-checks the constraint when its activation fires and re-parks
(keeping its queue position) if another injection took the slot first.
This closes the lost-wakeup hazard of a head-of-queue waiter that is
also blocked on its own outbound capacity: the freed destination slot
flows past it to the first waiter that can actually use it, and the
skipped waiter is woken later by whichever of its slots frees last.
Every park and every wakeup verdict is emitted on a structured event
feed (:class:`~repro.sim.trace.StallEvent` /
:class:`~repro.sim.trace.WakeupEvent`) so stall causality is observable.

The run produces a :class:`~repro.core.schedule.Schedule` trace that the
semantic validator (:mod:`repro.sim.validate`) and the figure benchmarks
consume.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Hashable, Iterable

from ..core.params import LogPParams
from ..core.schedule import Activity, MessageRecord, Schedule
from .engine import Engine, SimulationError
from .latency import FixedLatency, LatencyModel
from .trace import StallEvent, StallReport, WakeupEvent, stall_report
from .program import (
    Barrier,
    Compute,
    Now,
    Poll,
    ProgramResult,
    ReceivedMessage,
    Recv,
    Send,
    Sleep,
)

__all__ = ["LogPMachine", "MachineResult", "run_programs"]

Program = Generator[Any, Any, Any]
ProgramFactory = Callable[[int, int], Program]

# Processor states
_RUNNING = "running"
_BUSY = "busy"
_WAIT_GAP = "wait_gap"
_STALL_SEND = "stall_send"
_WAIT_RECV = "wait_recv"
_WAIT_BARRIER = "wait_barrier"
_SLEEPING = "sleeping"
_POLLING = "polling"
_DONE = "done"

_DRAINABLE = frozenset(
    {
        _WAIT_GAP,
        _STALL_SEND,
        _WAIT_RECV,
        _WAIT_BARRIER,
        _SLEEPING,
        _POLLING,
        _DONE,
    }
)


@dataclass(slots=True)
class _Msg:
    seq: int
    src: int
    dst: int
    payload: Any
    tag: Hashable
    send_start: float
    inject: float
    arrive: float
    words: int = 1


class _Proc:
    """Per-processor simulator state."""

    __slots__ = (
        "rank",
        "gen",
        "state",
        "pending",
        "resume",
        "busy_until",
        "last_send_start",
        "last_recv_start",
        "last_activity",
        "mailbox",
        "arrived",
        "stall_started",
        "result",
        "pending_activations",
        "poll_drained",
        "pending_inject",
        "needs_src",
        "needs_dst",
        "queued_on",
        "port_free",
    )

    def __init__(self, rank: int, gen: Program) -> None:
        self.rank = rank
        self.gen = gen
        self.state = _RUNNING
        self.pending: Any = None
        self.resume: Any = None
        self.busy_until = 0.0
        self.last_send_start = -math.inf
        self.last_recv_start = -math.inf
        # End of the latest recorded activity interval; gives untraced
        # runs the same makespan a full Schedule would report.
        self.last_activity = 0.0
        self.mailbox: deque[ReceivedMessage] = deque()
        self.arrived: deque[_Msg] = deque()
        self.stall_started: float | None = None
        self.result = ProgramResult(rank=rank)
        # Times of every not-yet-fired activation event, so duplicate
        # same-time activations are suppressed regardless of the order
        # wake conditions fire in.
        self.pending_activations: set[float] = set()
        self.poll_drained = 0
        # A committed message (send overhead already paid) waiting for
        # the network to accept it under the capacity constraint.
        self.pending_inject: "_Msg | None" = None
        # Wait-graph node: which capacity slots the parked injection
        # needs (refreshed on every failed attempt), and the destination
        # whose FIFO waiter list currently holds this processor.
        self.needs_src = False
        self.needs_dst = False
        self.queued_on: int | None = None
        # When this processor's network port finishes streaming the
        # current long message (LogGP extension); 1-word messages leave
        # the port free immediately.
        self.port_free = 0.0


@dataclass(slots=True)
class MachineResult:
    """Everything a run produces."""

    params: LogPParams
    makespan: float
    results: list[ProgramResult]
    schedule: Schedule | None
    total_messages: int
    total_stall_time: float
    events_run: int
    stall_events: list[StallEvent | WakeupEvent] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)

    def value(self, rank: int) -> Any:
        """Final return value of processor ``rank``'s program."""
        return self.results[rank].value

    def values(self) -> list[Any]:
        return [r.value for r in self.results]

    def stall_report(self) -> StallReport:
        """Condense the stall/wakeup event feed (traced runs only)."""
        return stall_report(self.stall_events)


class LogPMachine:
    """A simulated LogP machine.

    Args:
        params: the four LogP parameters.
        latency: network flight-time model; defaults to the deterministic
            ``FixedLatency(params.L)`` the paper's analyses assume.
        enforce_capacity: apply the ``ceil(L/g)`` constraint (disable for
            the capacity ablation).  Slots are held per the module
            docstring: source slots over [inject, arrive), destination
            slots over [inject, recv_start), checked at injection.
        capacity: override the in-flight limit (default ``params.capacity``).
        hw_barrier_cost: cycles a hardware ``Barrier`` costs after the
            last processor arrives (CM-5 control network, Section 5.5).
        compute_jitter: optional ``f(rank, cycles) -> actual_cycles``
            applied to every ``Compute`` — models the processor drift of
            Section 4.1.4 / Figure 8.
        trace: record a full :class:`Schedule` (intervals + message
            records).  Turn off for large runs; summary statistics are
            kept either way.
        max_events: event budget passed to the engine.
    """

    def __init__(
        self,
        params: LogPParams,
        *,
        latency: LatencyModel | None = None,
        enforce_capacity: bool = True,
        capacity: int | None = None,
        hw_barrier_cost: float = 0.0,
        compute_jitter: Callable[[int, float], float] | None = None,
        trace: bool = True,
        max_events: int = 50_000_000,
    ) -> None:
        if hw_barrier_cost < 0:
            raise ValueError(f"hw_barrier_cost must be >= 0, got {hw_barrier_cost}")
        self.params = params
        self.latency = latency if latency is not None else FixedLatency(params.L)
        if self.latency.L > params.L + 1e-12:
            raise ValueError(
                f"latency model bound {self.latency.L} exceeds L={params.L}"
            )
        self.enforce_capacity = enforce_capacity
        self.capacity = params.capacity if capacity is None else capacity
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        self.hw_barrier_cost = hw_barrier_cost
        self.compute_jitter = compute_jitter
        self.trace = trace
        self.max_events = max_events
        # Long-message Gap (Section 5.4 extension), present when the
        # machine is built from LogGPParams.
        self._G: float | None = getattr(params, "G", None)

    # ------------------------------------------------------------------

    def run(self, programs: Iterable[Program] | ProgramFactory) -> MachineResult:
        """Execute one program per processor and return the result.

        ``programs`` is either a sequence of exactly ``P`` generators or
        a factory called as ``factory(rank, P)``.
        """
        P = self.params.P
        if callable(programs):
            gens = [programs(r, P) for r in range(P)]
        else:
            gens = list(programs)
            if len(gens) != P:
                raise ValueError(
                    f"expected {P} programs, got {len(gens)}"
                )

        self._engine = Engine(max_events=self.max_events)
        self._procs = [_Proc(r, g) for r, g in enumerate(gens)]
        self._schedule = Schedule(self.params) if self.trace else None
        self._inflight_from = [0] * P
        self._inflight_to = [0] * P
        # Wait-graph: FIFO waiter list per destination inbound slot.  A
        # parked sender sits in exactly one list (its message's dst) and
        # additionally records, on its _Proc, whether it also needs its
        # own outbound slot; releases of either slot re-examine it.
        self._stall_queue: list[deque[int]] = [deque() for _ in range(P)]
        # Structured stall/wakeup causality feed (traced runs only —
        # unbounded per-wakeup records are too heavy for large untraced
        # sweeps).
        self._stall_feed: list[StallEvent | WakeupEvent] = []
        self._barrier_waiting: list[int] = []
        self._barrier_generation = 0
        self._msg_seq = 0
        self._total_messages = 0
        self.latency.reset()

        for r in range(P):
            self._schedule_activation(r, 0.0)

        self._engine.run()
        self._check_completion()

        makespan = max(
            max(p.result.finished_at, p.last_activity) for p in self._procs
        )
        if self._schedule is not None:
            self._schedule.sort_all()
            makespan = max(makespan, self._schedule.makespan)
        total_stall = sum(p.result.stall_time for p in self._procs)
        return MachineResult(
            params=self.params,
            makespan=makespan,
            results=[p.result for p in self._procs],
            schedule=self._schedule,
            total_messages=self._total_messages,
            total_stall_time=total_stall,
            events_run=self._engine.events_run,
            stall_events=self._stall_feed,
        )

    # ------------------------------------------------------------------
    # Activation: advance a processor as far as it can go right now.
    # ------------------------------------------------------------------

    def _make_activation(self, rank: int, time: float) -> Callable[[], None]:
        def fire() -> None:
            self._procs[rank].pending_activations.discard(time)
            self._activate(rank)

        return fire

    def _schedule_activation(self, rank: int, time: float) -> None:
        proc = self._procs[rank]
        # Suppress duplicate same-time activations (common when several
        # wake conditions fire together).  The full set of pending times
        # is kept — a single "last scheduled" slot forgets the earlier
        # suppression as soon as a different time is scheduled, letting
        # duplicates through when wake conditions interleave.
        if time in proc.pending_activations:
            return
        proc.pending_activations.add(time)
        self._engine.schedule(time, self._make_activation(rank, time))

    def _activate(self, rank: int) -> None:
        proc = self._procs[rank]
        now = self._engine.now

        while True:
            if proc.state == _DONE:
                self._try_drain(proc)
                return
            if now < proc.busy_until:
                self._schedule_activation(rank, proc.busy_until)
                return
            if proc.state == _SLEEPING:
                # Woken early (e.g. by an arrival): drain, stay asleep.
                self._try_drain(proc)
                return
            if proc.state == _WAIT_BARRIER:
                # Spurious wake while parked at a barrier: only drain.
                self._try_drain(proc)
                return

            if proc.pending_inject is not None:
                # A committed message is waiting at the network interface;
                # the processor may not proceed (but can service arrivals
                # while stalled).
                if self._try_inject(proc):
                    proc.state = _RUNNING
                    continue
                proc.state = _STALL_SEND
                self._try_drain(proc)
                return

            if proc.pending is None:
                try:
                    proc.pending = proc.gen.send(proc.resume)
                except StopIteration as stop:
                    proc.state = _DONE
                    proc.result.value = stop.value
                    proc.result.finished_at = now
                    self._try_drain(proc)
                    return
                proc.resume = None
                if isinstance(proc.pending, Poll):
                    proc.poll_drained = 0

            act = proc.pending

            if isinstance(act, Now):
                proc.resume = now
                proc.pending = None
                continue

            if isinstance(act, Compute):
                cycles = act.cycles
                if self.compute_jitter is not None:
                    cycles = self.compute_jitter(rank, cycles)
                    if cycles < 0:
                        raise SimulationError(
                            f"compute_jitter returned negative cycles {cycles}"
                        )
                proc.state = _BUSY
                proc.busy_until = now + cycles
                self._record(rank, now, proc.busy_until, Activity.COMPUTE, act.label)
                proc.pending = None
                if cycles > 0:
                    proc.state = _RUNNING
                    self._schedule_activation(rank, proc.busy_until)
                    return
                proc.state = _RUNNING
                continue

            if isinstance(act, Sleep):
                proc.state = _SLEEPING
                wake = now + act.cycles
                proc.pending = None
                self._engine.schedule(wake, self._make_wake(rank, wake))
                self._try_drain(proc)
                return

            if isinstance(act, Poll):
                can = bool(proc.arrived) and (
                    now >= proc.last_recv_start + self.params.g
                )
                if can:
                    proc.state = _POLLING
                    self._try_drain(proc)
                    return
                proc.resume = proc.poll_drained
                proc.pending = None
                proc.state = _RUNNING
                continue

            if isinstance(act, Send):
                if not self._try_send(proc, act):
                    return
                continue

            if isinstance(act, Recv):
                msg = self._mailbox_take(proc, act.tag)
                if msg is not None:
                    proc.resume = msg
                    proc.pending = None
                    proc.state = _RUNNING
                    continue
                proc.state = _WAIT_RECV
                self._try_drain(proc)
                return

            if isinstance(act, Barrier):
                proc.pending = None
                proc.state = _WAIT_BARRIER
                self._barrier_waiting.append(rank)
                if len(self._barrier_waiting) == self.params.P:
                    self._release_barrier()
                else:
                    self._try_drain(proc)
                return

            raise SimulationError(
                f"processor {rank} yielded unknown action {act!r}"
            )

    def _make_wake(self, rank: int, wake: float) -> Callable[[], None]:
        def fire() -> None:
            proc = self._procs[rank]
            if proc.state == _SLEEPING and self._engine.now >= wake:
                # The sleep may have been extended by a drain reception.
                if self._engine.now < proc.busy_until:
                    self._engine.schedule(proc.busy_until, fire)
                    return
                proc.state = _RUNNING
                self._activate(rank)

        return fire

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------

    def _try_send(self, proc: _Proc, act: Send) -> bool:
        """Attempt the pending send now.  Returns True if the processor
        should keep running (send committed), False if it blocked."""
        rank = proc.rank
        now = self._engine.now
        dst = act.dst
        if not 0 <= dst < self.params.P:
            raise SimulationError(
                f"processor {rank} sent to invalid destination {dst}"
            )
        if dst == rank:
            raise SimulationError(
                f"processor {rank} attempted to send to itself"
            )
        if act.words > 1 and self._G is None:
            raise SimulationError(
                f"processor {rank} sent a {act.words}-word message but the "
                "machine has no long-message Gap; build it with "
                "LogGPParams (core.loggp) to use the Section 5.4 extension"
            )

        earliest = max(
            now,
            proc.last_send_start + self.params.send_interval,
            proc.port_free,
        )
        if earliest > now:
            proc.state = _WAIT_GAP
            self._schedule_activation(rank, earliest)
            self._try_drain(proc)
            return False

        # Commit: pay the overhead now; the message then waits at the
        # network interface until the capacity constraint admits it
        # (usually immediately — see _try_inject).
        o = self.params.o
        msg = _Msg(
            seq=self._msg_seq,
            src=rank,
            dst=dst,
            payload=act.payload,
            tag=act.tag,
            send_start=now,
            inject=-1.0,
            arrive=-1.0,
            words=act.words,
        )
        self._msg_seq += 1
        self._total_messages += 1
        proc.last_send_start = now
        proc.result.sends += 1
        proc.pending_inject = msg
        proc.busy_until = max(proc.busy_until, now + o)
        self._record(rank, now, now + o, Activity.SEND, f"->{dst}")
        proc.pending = None
        proc.state = _RUNNING
        return True

    def _try_inject(self, proc: _Proc) -> bool:
        """Attempt to hand the committed message to the network now.

        Returns True on success.  On failure the caller stalls the
        processor; it is re-activated whenever a relevant capacity slot
        frees.
        """
        msg = proc.pending_inject
        assert msg is not None
        now = self._engine.now
        rank, dst = msg.src, msg.dst
        if self.enforce_capacity:
            needs_src = self._inflight_from[rank] >= self.capacity
            needs_dst = self._inflight_to[dst] >= self.capacity
            if needs_src or needs_dst:
                self._park(proc, dst, needs_src, needs_dst)
                return False

        if proc.stall_started is not None:
            proc.result.stall_time += now - proc.stall_started
            self._record(
                rank, proc.stall_started, now, Activity.STALL, f"->{dst}"
            )
            proc.stall_started = None
        if proc.queued_on is not None:
            self._stall_queue[proc.queued_on].remove(rank)
            proc.queued_on = None
            proc.needs_src = proc.needs_dst = False

        msg.inject = now
        stream = (msg.words - 1) * (self._G or 0.0)
        msg.arrive = now + stream + self.latency.draw(rank, dst)
        if stream > 0:
            # The network port streams the tail of the long message;
            # the processor itself is already free (DMA overlap).
            proc.port_free = now + stream
        self._inflight_from[rank] += 1
        self._inflight_to[dst] += 1
        proc.pending_inject = None
        self._engine.schedule(msg.arrive, self._make_arrival(msg))
        return True

    # ------------------------------------------------------------------
    # Wait-graph: parked senders and slot releases
    # ------------------------------------------------------------------

    def _park(
        self, proc: _Proc, dst: int, needs_src: bool, needs_dst: bool
    ) -> None:
        """Record a failed injection in the wait-graph.

        The sender keeps its FIFO position across repeated failures; the
        recorded constraint set is refreshed each attempt (a waiter woken
        for a freed destination slot may find its own outbound slot
        newly exhausted, and vice versa).
        """
        now = self._engine.now
        proc.needs_src = needs_src
        proc.needs_dst = needs_dst
        if proc.stall_started is None:
            proc.stall_started = now
            if self.trace:
                self._stall_feed.append(
                    StallEvent(now, proc.rank, dst, needs_src, needs_dst)
                )
        if proc.queued_on is None:
            proc.queued_on = dst
            self._stall_queue[dst].append(proc.rank)

    def _admissible(self, rank: int, dst: int) -> bool:
        """Is a parked ``rank -> dst`` injection satisfiable right now?"""
        return (
            self._inflight_from[rank] < self.capacity
            and self._inflight_to[dst] < self.capacity
        )

    def _release_src_slot(self, src: int) -> None:
        """An outbound slot of ``src`` freed (one of its messages
        arrived).  The only possible waiter is ``src`` itself — wake it
        if its *entire* constraint set is now satisfiable."""
        proc = self._procs[src]
        if proc.stall_started is None or proc.pending_inject is None:
            return
        dst = proc.pending_inject.dst
        admitted = self._admissible(src, dst)
        if self.trace:
            self._stall_feed.append(
                WakeupEvent(self._engine.now, src, dst, "src", src, admitted)
            )
        if admitted:
            self._schedule_activation(
                src, max(self._engine.now, proc.busy_until)
            )

    def _release_dst_slot(self, dst: int) -> None:
        """An inbound slot of ``dst`` freed (it began a reception).

        Scan the destination's waiter list in FIFO order and admit every
        sender whose full constraint set is satisfiable, debiting the
        freed capacity as we go.  A head-of-queue waiter that is still
        blocked on its own outbound slot is skipped — not returned to —
        so the slot flows to the first sender that can actually use it
        (the lost-wakeup hazard this wait-graph exists to close).
        """
        queue = self._stall_queue[dst]
        if not queue:
            return
        now = self._engine.now
        budget = self.capacity - self._inflight_to[dst]
        for rank in queue:
            if budget <= 0:
                break
            admitted = self._inflight_from[rank] < self.capacity
            if self.trace:
                self._stall_feed.append(
                    WakeupEvent(now, rank, dst, "dst", dst, admitted)
                )
            if admitted:
                budget -= 1
                self._schedule_activation(
                    rank, max(now, self._procs[rank].busy_until)
                )

    def _make_arrival(self, msg: _Msg) -> Callable[[], None]:
        def fire() -> None:
            # The source's slot frees at arrival.
            self._inflight_from[msg.src] -= 1
            self._release_src_slot(msg.src)
            dst = self._procs[msg.dst]
            dst.arrived.append(msg)
            if dst.state in _DRAINABLE and self._engine.now >= dst.busy_until:
                self._try_drain(dst)
            elif dst.state in _DRAINABLE:
                self._schedule_activation(msg.dst, dst.busy_until)

        return fire

    # ------------------------------------------------------------------
    # Receive path (drain)
    # ------------------------------------------------------------------

    def _try_drain(self, proc: _Proc) -> None:
        """Service one arrived message if the processor is in a state that
        allows reception and the receive gap permits it now."""
        if proc.state not in _DRAINABLE or not proc.arrived:
            return
        now = self._engine.now
        if now < proc.busy_until:
            self._schedule_activation(proc.rank, proc.busy_until)
            return
        earliest = max(now, proc.last_recv_start + self.params.g)
        if earliest > now:
            self._schedule_activation(proc.rank, earliest)
            return

        msg = proc.arrived.popleft()
        o = self.params.o
        proc.last_recv_start = now
        proc.busy_until = now + o
        proc.result.receives += 1
        self._record(proc.rank, now, now + o, Activity.RECV, f"<-{msg.src}")
        # The destination's slot frees when reception begins.
        self._inflight_to[proc.rank] -= 1
        self._release_dst_slot(proc.rank)
        self._engine.schedule(now + o, self._make_recv_done(proc.rank, msg, now))

    def _make_recv_done(
        self, rank: int, msg: _Msg, recv_start: float
    ) -> Callable[[], None]:
        def fire() -> None:
            now = self._engine.now
            proc = self._procs[rank]
            received = ReceivedMessage(
                src=msg.src,
                payload=msg.payload,
                tag=msg.tag,
                sent_at=msg.send_start,
                received_at=now,
            )
            proc.mailbox.append(received)
            if self._schedule is not None:
                self._schedule.add_message(
                    MessageRecord(
                        src=msg.src,
                        dst=msg.dst,
                        send_start=msg.send_start,
                        inject=msg.inject,
                        arrive=msg.arrive,
                        recv_start=recv_start,
                        recv_end=now,
                        tag="" if msg.tag is None else str(msg.tag),
                        words=msg.words,
                    )
                )
            if proc.state == _POLLING:
                proc.poll_drained += 1
                # Continue only if another reception can start right now;
                # Poll never waits.
                self._activate(rank)
                return
            if proc.state == _WAIT_RECV:
                taken = self._mailbox_take(proc, proc.pending.tag)
                if taken is not None:
                    proc.resume = taken
                    proc.pending = None
                    proc.state = _RUNNING
                    self._activate(rank)
                    return
            # Keep draining / resume whatever the processor was doing.
            if proc.state in _DRAINABLE:
                self._try_drain(proc)
            if proc.state == _STALL_SEND or proc.state == _WAIT_GAP:
                self._schedule_activation(rank, max(now, proc.busy_until))

        return fire

    def _mailbox_take(
        self, proc: _Proc, tag: Hashable
    ) -> ReceivedMessage | None:
        if tag is None:
            return proc.mailbox.popleft() if proc.mailbox else None
        for i, m in enumerate(proc.mailbox):
            if m.tag == tag:
                del proc.mailbox[i]
                return m
        return None

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------

    def _release_barrier(self) -> None:
        release = self._engine.now + self.hw_barrier_cost
        waiting = self._barrier_waiting
        self._barrier_waiting = []
        self._barrier_generation += 1
        for rank in waiting:
            proc = self._procs[rank]

            def make(r: int = rank, p: _Proc = proc) -> Callable[[], None]:
                def fire() -> None:
                    if p.state == _WAIT_BARRIER:
                        p.state = _RUNNING
                        p.resume = None
                        self._activate(r)

                return fire

            self._engine.schedule(max(release, proc.busy_until), make())

    # ------------------------------------------------------------------

    def _record(
        self, rank: int, start: float, end: float, kind: Activity, detail: str
    ) -> None:
        proc = self._procs[rank]
        if end > proc.last_activity:
            proc.last_activity = end
        if self._schedule is not None:
            self._schedule.add_interval(rank, start, end, kind, detail)

    def _check_completion(self) -> None:
        """End-of-run invariants, raised as real simulation errors.

        Leftover *mailbox* contents are permitted (programs may ignore
        messages), but a processor that never finished, a message still
        awaiting reception, or a sender still parked in the wait-graph
        means the run ended mid-flight.
        """
        blocked = [
            (p.rank, p.state)
            for p in self._procs
            if p.state != _DONE
        ]
        if blocked:
            detail = ", ".join(f"P{r}:{s}" for r, s in blocked[:8])
            raise SimulationError(
                f"deadlock: {len(blocked)} processor(s) never finished "
                f"({detail}{'...' if len(blocked) > 8 else ''}). "
                "Check for unmatched Recv/Send or mismatched barriers."
            )
        for p in self._procs:
            if p.arrived:
                raise SimulationError(
                    f"processor {p.rank} ended with {len(p.arrived)} "
                    "unreceived message(s)"
                )
            if p.pending_inject is not None or p.queued_on is not None:
                raise SimulationError(
                    f"processor {p.rank} ended with a message parked at "
                    "the network interface (stalled sender never woken)"
                )


def run_programs(
    params: LogPParams,
    programs: Iterable[Program] | ProgramFactory,
    **machine_kwargs: Any,
) -> MachineResult:
    """One-call convenience: build a :class:`LogPMachine` and run it."""
    return LogPMachine(params, **machine_kwargs).run(programs)
