"""The simulated LogP machine.

:class:`LogPMachine` executes one program (a generator, see
:mod:`repro.sim.program`) per processor and enforces the model's
semantics from Section 3 of the paper:

* each send and each receive engages the processor for ``o`` cycles;
* consecutive sends at one processor start at least ``max(g, o)`` apart,
  and likewise consecutive receives (the gap ``g`` in both directions);
* at most ``ceil(L/g)`` messages may be *in transit* from any processor
  or to any processor; a transmission that would exceed either limit
  stalls the sender until a slot frees (the capacity constraint);
* message flight time is drawn from a :class:`~repro.sim.latency.LatencyModel`
  (exactly ``L`` by default; random ``<= L`` to exercise asynchrony and
  out-of-order delivery);
* processors are engaged during ``Compute`` and cannot service messages;
  while idle, sleeping, stalled or waiting they *drain* arrived messages
  (paying ``o`` per message, respecting the receive gap) — this is what
  lets a stalled sender's destination keep accepting one message per
  ``g`` cycles, the behaviour the paper's naive-FFT-schedule analysis
  describes ("one will send to processor 0 every g cycles").

Capacity accounting — the reading under which the model is
self-consistent: a message is *in transit from its source* between
injection (``send_start + o``) and arrival, so a sender pacing itself at
``g`` keeps at most ``L/g <= ceil(L/g)`` of its own messages in flight
and never self-stalls; it is *in transit to its destination* between
injection and the start of the destination's reception, so a flooded
destination — which drains at most one message per ``g`` — back-pressures
its senders, exactly the "all but L/g processors will stall on the first
send" dynamics of Section 4.1.2.  The capacity check happens at the
moment of injection ("if a processor attempts to transmit a message that
would exceed this limit, it stalls until the message can be sent"): the
send overhead is paid first, then the message waits at the interface —
with the processor stalled but able to service incoming messages — until
the network accepts it.

Stalled senders are tracked in an explicit *wait-graph*: each parked
sender records the full set of capacity slots its injection needs (its
own outbound slot, the destination's inbound slot, or both), and every
slot release scans the waiters of that slot in FIFO order, admitting
every sender whose complete constraint set is satisfiable at release
time.  Admission is a *re-examination*, not a reservation — the admitted
sender re-checks the constraint when its activation fires and re-parks
(keeping its queue position) if another injection took the slot first.
This closes the lost-wakeup hazard of a head-of-queue waiter that is
also blocked on its own outbound capacity: the freed destination slot
flows past it to the first waiter that can actually use it, and the
skipped waiter is woken later by whichever of its slots frees last.
Every park and every wakeup verdict is emitted on a structured event
feed (:class:`~repro.sim.trace.StallEvent` /
:class:`~repro.sim.trace.WakeupEvent`) so stall causality is observable.

Hot-path design (see the "Performance" section of DESIGN.md): every
event is a *bound method plus payload* scheduled directly on the engine
(``engine.schedule(t, self._on_arrival, msg)``), never a per-event
closure; processor activations are deduplicated through a per-processor
``{time: event-id}`` map and *lazily deleted* via :meth:`Engine.cancel`
when a reception or computation supersedes them, so stale wakeups die in
the event queue instead of being re-examined inside :meth:`_activate`;
and the dominant send→inject→arrival→recv-done chain skips all trace
bookkeeping (interval records, stall feed, per-message detail strings)
when ``trace=False``.  Program actions are matched by exact type — the
action vocabulary of :mod:`repro.sim.program` is closed.

The run produces a :class:`~repro.core.schedule.Schedule` trace that the
semantic validator (:mod:`repro.sim.validate`) and the figure benchmarks
consume.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Hashable, Iterable

from ..core.params import LogPParams
from ..core.schedule import Activity, MessageRecord, Schedule
from .engine import Engine, SimulationError
from .faults import (
    CrashRecover,
    CrashStop,
    FaultPlan,
    FixedRetry,
    HeartbeatConfig,
    RetryPolicy,
    Slowdown,
)
from .latency import FixedLatency, LatencyModel
from .net.fabric import Fabric, FabricReport, LatencyFabric
from .trace import (
    CrashEvent,
    FaultReport,
    NetStallEvent,
    RecoverEvent,
    StallEvent,
    StallReport,
    SuspectEvent,
    WakeupEvent,
    stall_report,
)
from .program import (
    Barrier,
    Checkpoint,
    Compute,
    Now,
    Poll,
    ProgramResult,
    ReceivedMessage,
    Recv,
    Restore,
    RestoreInfo,
    Send,
    Sleep,
    Suspects,
)

__all__ = ["LogPMachine", "MachineResult", "run_programs"]

Program = Generator[Any, Any, Any]
ProgramFactory = Callable[[int, int], Program]

# Processor states
_RUNNING = "running"
_BUSY = "busy"
_WAIT_GAP = "wait_gap"
_STALL_SEND = "stall_send"
_WAIT_RECV = "wait_recv"
_WAIT_BARRIER = "wait_barrier"
_SLEEPING = "sleeping"
_POLLING = "polling"
_DONE = "done"
_CRASHED = "crashed"

_DRAINABLE = frozenset(
    {
        _WAIT_GAP,
        _STALL_SEND,
        _WAIT_RECV,
        _WAIT_BARRIER,
        _SLEEPING,
        _POLLING,
        _DONE,
    }
)


@dataclass(slots=True)
class _Msg:
    seq: int
    src: int
    dst: int
    payload: Any
    tag: Hashable
    send_start: float
    inject: float
    arrive: float
    words: int = 1
    # Queueing excess inside the network fabric (ContentionFabric);
    # 0.0 on uncontended fabrics.
    net_stall: float = 0.0


class _Proc:
    """Per-processor simulator state."""

    __slots__ = (
        "rank",
        "gen",
        "state",
        "pending",
        "resume",
        "busy_until",
        "last_send_start",
        "last_recv_start",
        "last_activity",
        "mailbox",
        "arrived",
        "stall_started",
        "result",
        "pending_activations",
        "poll_drained",
        "pending_inject",
        "needs_src",
        "needs_dst",
        "queued_on",
        "port_free",
        "wait_token",
    )

    def __init__(self, rank: int, gen: Program) -> None:
        self.rank = rank
        self.gen = gen
        self.state = _RUNNING
        self.pending: Any = None
        self.resume: Any = None
        self.busy_until = 0.0
        self.last_send_start = -math.inf
        self.last_recv_start = -math.inf
        # End of the latest recorded activity interval; gives untraced
        # runs the same makespan a full Schedule would report.
        self.last_activity = 0.0
        self.mailbox: deque[ReceivedMessage] = deque()
        self.arrived: deque[_Msg] = deque()
        self.stall_started: float | None = None
        self.result = ProgramResult(rank=rank)
        # time -> engine event id of every not-yet-fired activation, so
        # duplicate same-time activations are suppressed regardless of
        # the order wake conditions fire in, and superseded activations
        # can be lazily cancelled in the event queue.
        self.pending_activations: dict[float, int] = {}
        self.poll_drained = 0
        # A committed message (send overhead already paid) waiting for
        # the network to accept it under the capacity constraint.
        self.pending_inject: "_Msg | None" = None
        # Wait-graph node: which capacity slots the parked injection
        # needs (refreshed on every failed attempt), and the destination
        # whose FIFO waiter list currently holds this processor.
        self.needs_src = False
        self.needs_dst = False
        self.queued_on: int | None = None
        # When this processor's network port finishes streaming the
        # current long message (LogGP extension); 1-word messages leave
        # the port free immediately.
        self.port_free = 0.0
        # Monotonic counter of blocking-Recv waits, so a stale
        # Recv-timeout event can recognize that the wait it armed for is
        # over (never reset, even across crash-recovery restarts).
        self.wait_token = 0


@dataclass(slots=True)
class MachineResult:
    """Everything a run produces."""

    params: LogPParams
    makespan: float
    results: list[ProgramResult]
    schedule: Schedule | None
    total_messages: int
    total_stall_time: float
    events_run: int
    traced: bool = True
    fabric: Fabric | None = None
    stall_events: list[StallEvent | WakeupEvent | NetStallEvent] = field(
        default_factory=list
    )
    extras: dict[str, Any] = field(default_factory=dict)

    def value(self, rank: int) -> Any:
        """Final return value of processor ``rank``'s program."""
        return self.results[rank].value

    def values(self) -> list[Any]:
        return [r.value for r in self.results]

    def stall_report(self) -> StallReport:
        """Condense the stall/wakeup event feed.

        Raises:
            ValueError: if the run was untraced — the machine does not
                collect the stall/wakeup feed with ``trace=False``, so a
                report would be silently (and misleadingly) empty.
        """
        if not self.traced:
            raise ValueError(
                "stall_report() requires a traced run: the stall/wakeup "
                "event feed is not collected with trace=False. Re-run "
                "the machine with trace=True."
            )
        return stall_report(self.stall_events)

    def fabric_report(self) -> FabricReport:
        """Network-side traffic summary of the run (per-link utilization,
        queue-depth high-water marks, total NetStall excess).

        Raises:
            ValueError: if the run was untraced — fabric observability
                is trace-gated so the untraced hot path stays fast.
        """
        if not self.traced:
            raise ValueError(
                "fabric_report() requires a traced run: fabric "
                "statistics are trace-gated. Re-run the machine with "
                "trace=True."
            )
        assert self.fabric is not None
        return self.fabric.report()

    def fault_report(self) -> FaultReport:
        """Condense the run's processor-fault bookkeeping.

        Unlike :meth:`stall_report`, this works on untraced runs too:
        fault events are rare, so the machine collects them whenever a
        :class:`~repro.sim.faults.FaultPlan` or
        :class:`~repro.sim.faults.HeartbeatConfig` is attached.  A run
        with neither returns an empty (all-zero) report.
        """
        data = self.extras.get("faults")
        if data is None:
            return FaultReport()
        counts = data["counts"]
        events = data["events"]
        return FaultReport(
            crashes=[e for e in events if type(e) is CrashEvent],
            recoveries=[e for e in events if type(e) is RecoverEvent],
            suspects=[e for e in events if type(e) is SuspectEvent],
            dropped_in_flight=counts["dropped_in_flight"],
            dropped_at_dead_interface=counts["dropped_at_dead_interface"],
            reaped_parked=counts["reaped_parked"],
            gave_up_sends=counts["gave_up_sends"],
            duplicate_deliveries=counts["duplicate_deliveries"],
            heartbeats_sent=counts["heartbeats_sent"],
            checkpoints=counts["checkpoints"],
            restores=counts["restores"],
            slowed_computes=counts["slowed_computes"],
            wedged_ranks=list(counts["wedged_ranks"]),
            unreceived_messages=counts["unreceived_messages"],
        )


class LogPMachine:
    """A simulated LogP machine.

    Args:
        params: the four LogP parameters.
        latency: network flight-time model; defaults to the deterministic
            ``FixedLatency(params.L)`` the paper's analyses assume.
            Mutually exclusive with ``fabric`` (a plain latency model is
            run as a :class:`~repro.sim.net.LatencyFabric`).
        fabric: network fabric the machine delegates transport to (see
            :mod:`repro.sim.net`).  The fabric's unloaded bound must not
            exceed ``params.L``.  A *lossy* fabric
            (:class:`~repro.sim.net.FaultyFabric`) activates the
            sender-side timeout-and-retry protocol: deliveries are
            acknowledged over a reliable control channel (ack flight =
            the fabric bound), unacked messages are retransmitted every
            ``retry_timeout`` cycles up to ``max_retries`` times, and
            duplicate copies are discarded at the receiving network
            interface — programs observe exactly-once delivery.  Lossy
            runs disable the capacity constraint (retransmissions live
            below the model's capacity accounting).
        retry_timeout: cycles a lossy-fabric sender waits for an ack
            before retransmitting.  The default is
            ``2*bound + ack_latency + 2*o + 1`` — and since the ack
            flies over the control channel in exactly ``ack_latency ==
            bound`` cycles, that computes to ``3*bound + 2*o + 1``, just
            past the worst-case uncontended round trip (data flight
            ``<= bound``, receive ``o``, ack flight ``bound``, send
            ``o``, plus one cycle of slack).  Shorthand for
            ``retry_policy=FixedRetry(retry_timeout)``; mutually
            exclusive with ``retry_policy``.
        retry_policy: pluggable retransmission schedule
            (:class:`~repro.sim.faults.RetryPolicy`): fixed interval,
            exponential backoff with deterministic jitter, or
            budget-capped.  Each attempt ``k`` waits
            ``policy.delay(k, seq)`` cycles; a policy ``budget`` caps
            the total unacked time, after which the sender gives up
            (an error on a fault-free run, a counted ``gave_up_send``
            under a fault plan).  Backoff interacts with ``max_retries``
            multiplicatively: the protocol stops at whichever of
            ``max_retries`` attempts / the policy budget binds first.
        max_retries: retransmissions before a lossy run fails with
            :class:`SimulationError` (or, under a fault plan, gives the
            message up — how a peer's crash resolves at the sender).
        fault_plan: optional :class:`~repro.sim.faults.FaultPlan` of
            processor faults (crash-stop, crash-recover, slowdown).  A
            crashed rank stops executing, its parked wait-graph entry is
            reaped, its in-flight messages are dropped mid-worm, and
            messages addressed to it vanish at the dead interface (on a
            lossy fabric, peers' ARQ retries then time out and give
            up).  Crash-recovery restarts the rank's program — the run
            must be given a program *factory*, and the restarted
            program can read its last ``Checkpoint`` via ``Restore``.
            End-of-run deadlock checks are relaxed: survivors wedged on
            a dead peer are recorded in :meth:`MachineResult.fault_report`
            instead of raising.
        heartbeat: optional :class:`~repro.sim.faults.HeartbeatConfig`
            activating the failure detector.  Every ``period`` cycles
            each alive rank's interface emits heartbeats to its
            watchers; emissions serialize on the sender's message port
            under the usual ``max(g, o)`` spacing and each delivery
            occupies the watcher's receive port, so detector cost is
            real ``o``/``g`` traffic that delays program communication
            and shows up in the makespan.  Watchers that hear nothing
            for more than ``timeout`` cycles suspect the silent rank;
            programs read the local suspicion set with ``Suspects()``.
        enforce_capacity: apply the ``ceil(L/g)`` constraint (disable for
            the capacity ablation).  Slots are held per the module
            docstring: source slots over [inject, arrive), destination
            slots over [inject, recv_start), checked at injection.
        capacity: override the in-flight limit (default ``params.capacity``).
        hw_barrier_cost: cycles a hardware ``Barrier`` costs after the
            last processor arrives (CM-5 control network, Section 5.5).
        compute_jitter: optional ``f(rank, cycles) -> actual_cycles``
            applied to every ``Compute`` — models the processor drift of
            Section 4.1.4 / Figure 8.
        trace: record a full :class:`Schedule` (intervals + message
            records) and the stall/wakeup event feed.  Turn off for
            large runs; summary statistics are kept either way.
        max_events: event budget passed to the engine.
    """

    def __init__(
        self,
        params: LogPParams,
        *,
        latency: LatencyModel | None = None,
        fabric: Fabric | None = None,
        retry_timeout: float | None = None,
        retry_policy: RetryPolicy | None = None,
        max_retries: int = 8,
        fault_plan: FaultPlan | None = None,
        heartbeat: HeartbeatConfig | None = None,
        enforce_capacity: bool = True,
        capacity: int | None = None,
        hw_barrier_cost: float = 0.0,
        compute_jitter: Callable[[int, float], float] | None = None,
        trace: bool = True,
        max_events: int = 50_000_000,
    ) -> None:
        if hw_barrier_cost < 0:
            raise ValueError(f"hw_barrier_cost must be >= 0, got {hw_barrier_cost}")
        self.params = params
        if fabric is None:
            model = latency if latency is not None else FixedLatency(params.L)
            if model.L > params.L + 1e-12:
                raise ValueError(
                    f"latency model bound {model.L} exceeds L={params.L}"
                )
            self.latency = model
            self.fabric: Fabric = LatencyFabric(model)
        else:
            if latency is not None:
                raise ValueError(
                    "give latency or fabric, not both (a plain latency "
                    "model is run as a LatencyFabric)"
                )
            if fabric.bound > params.L + 1e-12:
                raise ValueError(
                    f"fabric unloaded bound {fabric.bound} exceeds "
                    f"L={params.L}"
                )
            self.fabric = fabric
            self.latency = (
                fabric.model if isinstance(fabric, LatencyFabric) else None
            )
        if retry_timeout is not None and retry_timeout <= 0:
            raise ValueError(f"retry_timeout must be > 0, got {retry_timeout}")
        if retry_timeout is not None and retry_policy is not None:
            raise ValueError(
                "give retry_timeout or retry_policy, not both "
                "(retry_timeout is shorthand for FixedRetry(retry_timeout))"
            )
        if retry_policy is not None and not isinstance(retry_policy, RetryPolicy):
            raise TypeError(
                f"retry_policy must be a RetryPolicy, got {retry_policy!r}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.retry_timeout = retry_timeout
        self.retry_policy = retry_policy
        self.max_retries = max_retries
        if fault_plan is not None:
            if not isinstance(fault_plan, FaultPlan):
                raise TypeError(
                    f"fault_plan must be a FaultPlan, got {fault_plan!r}"
                )
            fault_plan.validate_for(params.P)
        self.fault_plan = fault_plan
        if heartbeat is not None and not isinstance(heartbeat, HeartbeatConfig):
            raise TypeError(
                f"heartbeat must be a HeartbeatConfig, got {heartbeat!r}"
            )
        self.heartbeat = heartbeat
        self.enforce_capacity = enforce_capacity
        self._enforce = enforce_capacity
        self.capacity = params.capacity if capacity is None else capacity
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        self.hw_barrier_cost = hw_barrier_cost
        self.compute_jitter = compute_jitter
        self.trace = trace
        self.max_events = max_events
        # Long-message Gap (Section 5.4 extension), present when the
        # machine is built from LogGPParams.
        self._G: float | None = getattr(params, "G", None)
        # Hot-loop copies of the model constants (plain float attribute
        # loads instead of property calls on LogPParams).
        self._o = float(params.o)
        self._g = float(params.g)
        self._send_interval = float(params.send_interval)
        self._P = params.P

    # ------------------------------------------------------------------

    def run(self, programs: Iterable[Program] | ProgramFactory) -> MachineResult:
        """Execute one program per processor and return the result.

        ``programs`` is either a sequence of exactly ``P`` generators or
        a factory called as ``factory(rank, P)``.
        """
        P = self.params.P
        if callable(programs):
            self._factory = programs
            gens = [programs(r, P) for r in range(P)]
        else:
            self._factory = None
            gens = list(programs)
            if len(gens) != P:
                raise ValueError(
                    f"expected {P} programs, got {len(gens)}"
                )
        if (
            self.fault_plan is not None
            and self._factory is None
            and any(
                type(e) is CrashRecover for e in self.fault_plan.events
            )
        ):
            raise ValueError(
                "crash-recovery restarts a rank's program, which "
                "requires run() to be given a program factory "
                "(factory(rank, P)), not a list of generators"
            )

        self._engine = Engine(max_events=self.max_events)
        self._procs = [_Proc(r, g) for r, g in enumerate(gens)]
        self._schedule = Schedule(self.params) if self.trace else None
        self._inflight_from = [0] * P
        self._inflight_to = [0] * P
        # Wait-graph: FIFO waiter list per destination inbound slot.  A
        # parked sender sits in exactly one list (its message's dst) and
        # additionally records, on its _Proc, whether it also needs its
        # own outbound slot; releases of either slot re-examine it.
        self._stall_queue: list[deque[int]] = [deque() for _ in range(P)]
        # Structured stall/wakeup causality feed (traced runs only —
        # unbounded per-wakeup records are too heavy for large untraced
        # sweeps).
        self._stall_feed: list[StallEvent | WakeupEvent | NetStallEvent] = []
        self._barrier_waiting: list[int] = []
        self._barrier_generation = 0
        self._msg_seq = 0
        self._total_messages = 0
        fab = self.fabric
        fab.reset()
        fab.attach(self._engine, P, self.trace)
        self._submit = fab.submit
        self._lossy = fab.lossy
        self._enforce = self.enforce_capacity and not self._lossy
        # Exactly-FixedLatency flight through the transparent wrapper is
        # a constant; inline it instead of paying a call per injection.
        self._fixed_L = (
            fab.model.L
            if type(fab) is LatencyFabric and type(fab.model) is FixedLatency
            else None
        )
        if self._lossy:
            # Sender-side ARQ state: seq -> in-flight message awaiting
            # ack, receiver-side delivered-seq dedup filter, fault
            # bookkeeping surfaced in MachineResult.extras.
            self._awaiting_ack: dict[int, _Msg] = {}
            self._delivered_seqs: set[int] = set()
            self._net_faults = {"retries": 0, "duplicates_suppressed": 0}
            self._ack_latency = fab.bound
            # Default ack-timeout: one worst-case uncontended round trip
            # plus a cycle of slack.  With ack_latency == fab.bound this
            # is 3*bound + 2*o + 1 (see the retry_timeout docstring).
            self._retry_timeout = (
                self.retry_timeout
                if self.retry_timeout is not None
                else 2 * fab.bound + self._ack_latency + 2 * self._o + 1.0
            )
            self._retry_policy = (
                self.retry_policy
                if self.retry_policy is not None
                else FixedRetry(self._retry_timeout)
            )

        # Processor-fault machinery.  All of it is gated: a run with no
        # fault plan and no heartbeat detector takes none of these
        # branches past a single boolean test, keeping the fault-free
        # hot path bit-identical (pinned by the fuzz differentials).
        self._faulty = self.fault_plan is not None
        self._slow = self._faulty and any(
            type(e) is Slowdown for e in self.fault_plan.events
        )
        self._checkpoints: list[Any] | None = None
        self._hb_cfg = self.heartbeat
        if self._faulty or self._hb_cfg is not None:
            self._setup_faults(P)
        else:
            self._fault_counts = None
            self._fault_events: list[Any] = []
            self._suspected: list[set[int]] | None = None
            self._incarnation: list[int] | None = None

        for proc in self._procs:
            self._schedule_activation(proc, 0.0)

        self._engine.run()
        self._check_completion()
        if self.trace and type(fab) is LatencyFabric and self._fixed_L is not None:
            # The inlined FixedLatency fast path bypasses fab.submit();
            # backfill its message count so fabric_report() stays honest.
            fab._messages = self._total_messages

        makespan = max(
            max(p.result.finished_at, p.last_activity) for p in self._procs
        )
        if self._schedule is not None:
            self._schedule.sort_all()
            makespan = max(makespan, self._schedule.makespan)
        total_stall = sum(p.result.stall_time for p in self._procs)
        extras: dict[str, Any] = {}
        if self._lossy:
            extras["net_faults"] = {**self._net_faults, **fab.fault_counts}
        if self._fault_counts is not None:
            extras["faults"] = {
                "counts": self._fault_counts,
                "events": self._fault_events,
                "plan": self.fault_plan,
            }
        return MachineResult(
            params=self.params,
            makespan=makespan,
            results=[p.result for p in self._procs],
            schedule=self._schedule,
            total_messages=self._total_messages,
            total_stall_time=total_stall,
            events_run=self._engine.events_run,
            traced=self.trace,
            stall_events=self._stall_feed,
            fabric=self.fabric,
            extras=extras,
        )

    # ------------------------------------------------------------------
    # Activation: advance a processor as far as it can go right now.
    # ------------------------------------------------------------------

    def _on_activation(self, proc: _Proc, time: float) -> None:
        proc.pending_activations.pop(time, None)
        self._activate(proc)

    def _schedule_activation(self, proc: _Proc, time: float) -> None:
        pending = proc.pending_activations
        # Suppress duplicate same-time activations (common when several
        # wake conditions fire together).  The full map of pending times
        # is kept — a single "last scheduled" slot forgets the earlier
        # suppression as soon as a different time is scheduled, letting
        # duplicates through when wake conditions interleave.
        if time not in pending:
            pending[time] = self._engine.schedule(
                time, self._on_activation, proc, time
            )

    def _supersede_activations(self, proc: _Proc, until: float) -> None:
        """Lazily delete pending activations strictly before ``until``.

        Call only when the processor is engaged through ``until`` *and*
        a wakeup at (or after) ``until`` is independently guaranteed —
        a reception's recv-done event or a computation's end activation.
        Every cancelled activation would have fired, observed
        ``now < busy_until``, rescheduled itself at ``busy_until`` and
        returned; cancelling it in the event queue skips that dispatch
        entirely (lazy deletion at pop time).
        """
        pending = proc.pending_activations
        if pending:
            cancel = self._engine.cancel
            for t in [t for t in pending if t < until]:
                cancel(pending.pop(t))

    def _activate(self, proc: _Proc) -> None:
        engine = self._engine
        now = engine.now
        rank = proc.rank

        while True:
            state = proc.state
            if state == _DONE:
                # A finished program may still have its last message
                # parked at the network interface (the generator is
                # advanced eagerly at send commit, before injection).
                if proc.pending_inject is not None:
                    self._try_inject(proc)
                if proc.arrived:
                    self._try_drain(proc)
                return
            if state == _CRASHED:
                return
            if now < proc.busy_until:
                self._schedule_activation(proc, proc.busy_until)
                return
            if state == _SLEEPING or state == _WAIT_BARRIER:
                # Woken early (e.g. by an arrival) or a spurious wake
                # while parked at a barrier: drain, stay put.
                if proc.arrived:
                    self._try_drain(proc)
                return

            if proc.pending_inject is not None:
                # A committed message is waiting at the network interface;
                # the processor may not proceed (but can service arrivals
                # while stalled).
                if self._try_inject(proc):
                    proc.state = _RUNNING
                    continue
                proc.state = _STALL_SEND
                if proc.arrived:
                    self._try_drain(proc)
                return

            act = proc.pending
            if act is None:
                try:
                    act = proc.pending = proc.gen.send(proc.resume)
                except StopIteration as stop:
                    proc.state = _DONE
                    proc.result.value = stop.value
                    proc.result.finished_at = now
                    if proc.arrived:
                        self._try_drain(proc)
                    return
                proc.resume = None
                if act.__class__ is Poll:
                    proc.poll_drained = 0

            cls = act.__class__

            if cls is Send:
                earliest = proc.last_send_start + self._send_interval
                if earliest < proc.port_free:
                    earliest = proc.port_free
                if earliest > now:
                    proc.state = _WAIT_GAP
                    pending = proc.pending_activations
                    if earliest not in pending:
                        pending[earliest] = engine.schedule(
                            earliest, self._on_activation, proc, earliest
                        )
                    if proc.arrived:
                        self._try_drain(proc)
                    return
                # Commit: validate (once per message — a gap-blocked
                # send is re-dispatched here), pay the overhead, and
                # park the message at the network interface until the
                # injection event at the send's end hands it to the
                # network (usually immediately — see _try_inject).
                dst = act.dst
                if dst == rank or not 0 <= dst < self._P:
                    if dst == rank:
                        raise SimulationError(
                            f"processor {rank} attempted to send to itself"
                        )
                    raise SimulationError(
                        f"processor {rank} sent to invalid destination {dst}"
                    )
                words = act.words
                if words > 1 and self._G is None:
                    raise SimulationError(
                        f"processor {rank} sent a {words}-word message "
                        "but the machine has no long-message Gap; build "
                        "it with LogGPParams (core.loggp) to use the "
                        "Section 5.4 extension"
                    )
                end = now + self._o
                proc.pending_inject = _Msg(
                    self._msg_seq, rank, dst, act.payload, act.tag,
                    now, -1.0, -1.0, words,
                )
                self._msg_seq += 1
                self._total_messages += 1
                proc.last_send_start = now
                proc.result.sends += 1
                proc.busy_until = end
                if proc.last_activity < end:
                    proc.last_activity = end
                if self._schedule is not None:
                    self._schedule.add_interval(
                        rank, now, end, Activity.SEND, f"->{dst}"
                    )
                engine.schedule(end, self._on_inject, proc)
                # Eager generator advance: a send's resume value is
                # None, and the fetched action is *dispatched* (not
                # executed) by the injection event at the send's end,
                # so fetching it now replaces the generic busy-end
                # activation (with its dedup-map bookkeeping and
                # generator resume) with the slim _on_inject event.
                # The processor stays _RUNNING — not drainable — for
                # the busy window, exactly as before.
                proc.state = _RUNNING
                try:
                    proc.pending = act = proc.gen.send(None)
                except StopIteration as stop:
                    proc.pending = None
                    proc.state = _DONE
                    proc.result.value = stop.value
                    proc.result.finished_at = end
                    return
                proc.resume = None
                if act.__class__ is Poll:
                    proc.poll_drained = 0
                return

            if cls is Recv:
                mailbox = proc.mailbox
                if act.tag is None:
                    msg = mailbox.popleft() if mailbox else None
                else:
                    msg = self._mailbox_take(proc, act.tag)
                if msg is not None:
                    proc.resume = msg
                    proc.pending = None
                    proc.state = _RUNNING
                    continue
                proc.state = _WAIT_RECV
                proc.wait_token += 1
                if act.timeout is not None:
                    engine.schedule(
                        now + act.timeout,
                        self._on_recv_timeout,
                        proc,
                        proc.wait_token,
                    )
                if proc.arrived:
                    self._try_drain(proc)
                return

            if cls is Compute:
                cycles = act.cycles
                if self.compute_jitter is not None:
                    cycles = self.compute_jitter(rank, cycles)
                    if cycles < 0:
                        raise SimulationError(
                            f"compute_jitter returned negative cycles {cycles}"
                        )
                if self._slow:
                    slow = self.fault_plan.slow_factor(rank, now)
                    if slow != 1.0:
                        cycles *= slow
                        self._fault_counts["slowed_computes"] += 1
                end = now + cycles
                proc.busy_until = end
                self._record(proc, now, end, Activity.COMPUTE, act.label)
                proc.pending = None
                proc.state = _RUNNING
                if cycles > 0:
                    # The end-of-compute activation below is the
                    # guaranteed wakeup; anything earlier is stale.
                    if proc.pending_activations:
                        self._supersede_activations(proc, end)
                    self._schedule_activation(proc, end)
                    return
                continue

            if cls is Now:
                proc.resume = now
                proc.pending = None
                continue

            if cls is Sleep:
                proc.state = _SLEEPING
                wake = now + act.cycles
                proc.pending = None
                engine.schedule(wake, self._on_wake, proc, wake)
                if proc.arrived:
                    self._try_drain(proc)
                return

            if cls is Poll:
                can = bool(proc.arrived) and (
                    now >= proc.last_recv_start + self._g
                )
                if can:
                    proc.state = _POLLING
                    self._try_drain(proc)
                    return
                proc.resume = proc.poll_drained
                proc.pending = None
                proc.state = _RUNNING
                continue

            if cls is Barrier:
                proc.pending = None
                proc.state = _WAIT_BARRIER
                self._barrier_waiting.append(rank)
                if len(self._barrier_waiting) == self._P:
                    self._release_barrier()
                elif proc.arrived:
                    self._try_drain(proc)
                return

            if cls is Checkpoint:
                if self._checkpoints is None:
                    self._checkpoints = [None] * self._P
                self._checkpoints[rank] = act.payload
                if self._fault_counts is not None:
                    self._fault_counts["checkpoints"] += 1
                cost = act.cost
                proc.pending = None
                proc.resume = None
                proc.state = _RUNNING
                if cost > 0:
                    end = now + cost
                    proc.busy_until = end
                    self._record(proc, now, end, Activity.COMPUTE, "checkpoint")
                    if proc.pending_activations:
                        self._supersede_activations(proc, end)
                    self._schedule_activation(proc, end)
                    return
                continue

            if cls is Restore:
                ck = (
                    None
                    if self._checkpoints is None
                    else self._checkpoints[rank]
                )
                inc = (
                    self._incarnation[rank]
                    if self._incarnation is not None
                    else 0
                )
                proc.resume = RestoreInfo(ck, inc)
                if self._fault_counts is not None:
                    self._fault_counts["restores"] += 1
                proc.pending = None
                continue

            if cls is Suspects:
                proc.resume = (
                    frozenset(self._suspected[rank])
                    if self._suspected is not None
                    else frozenset()
                )
                proc.pending = None
                continue

            raise SimulationError(
                f"processor {rank} yielded unknown action {act!r} "
                "(actions are matched by exact type; see repro.sim.program)"
            )

    def _on_wake(self, proc: _Proc, wake: float) -> None:
        if proc.state == _SLEEPING and self._engine.now >= wake:
            # The sleep may have been extended by a drain reception.
            if self._engine.now < proc.busy_until:
                self._engine.schedule(proc.busy_until, self._on_wake, proc, wake)
                return
            proc.state = _RUNNING
            self._activate(proc)

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------

    def _on_inject(self, proc: _Proc) -> None:
        """Injection event at a committed send's end (``send_start + o``).

        Scheduled at commit time, so at any instant it precedes the
        activations that wake conditions schedule later — the message is
        on the network (or parked) before the processor's next action
        dispatches.
        """
        if proc.pending_inject is None:
            # Already injected through a stall-retry activation.
            return
        if self._try_inject(proc):
            # Dispatch the eagerly fetched next action (or drain, for a
            # finished program) — the same inject -> dispatch -> drain
            # order the busy-end activation used to follow.
            self._activate(proc)
            return
        if proc.state is not _DONE:
            proc.state = _STALL_SEND
        if proc.arrived:
            self._try_drain(proc)

    def _try_inject(self, proc: _Proc) -> bool:
        """Attempt to hand the committed message to the network now.

        Returns True on success.  On failure the sender is parked in the
        wait-graph; it is re-activated whenever a relevant capacity slot
        frees.
        """
        msg = proc.pending_inject
        now = self._engine.now
        rank = msg.src
        dst = msg.dst
        if self._enforce:
            needs_src = self._inflight_from[rank] >= self.capacity
            needs_dst = self._inflight_to[dst] >= self.capacity
            if needs_src or needs_dst:
                self._park(proc, dst, needs_src, needs_dst)
                return False

        if proc.stall_started is not None:
            proc.result.stall_time += now - proc.stall_started
            if now > proc.last_activity:
                proc.last_activity = now
            if self._schedule is not None:
                self._schedule.add_interval(
                    rank, proc.stall_started, now, Activity.STALL, f"->{dst}"
                )
            proc.stall_started = None
        if proc.queued_on is not None:
            self._stall_queue[proc.queued_on].remove(rank)
            proc.queued_on = None
            proc.needs_src = proc.needs_dst = False

        msg.inject = now
        if self._lossy:
            # Unreliable fabric: delivery goes through the ARQ protocol
            # and bypasses the capacity counters (lossy runs disable the
            # capacity constraint; see __init__ docs).
            if msg.words > 1:
                stream = (msg.words - 1) * (self._G or 0.0)
                if stream > 0:
                    proc.port_free = now + stream
            self._inject_lossy(msg, now)
            proc.pending_inject = None
            return True
        fixed = self._fixed_L
        if msg.words > 1:
            stream = (msg.words - 1) * (self._G or 0.0)
            if fixed is not None:
                msg.arrive = now + stream + fixed
            else:
                arrive, net_stall = self._submit(rank, dst, now)
                msg.arrive = arrive + stream
                if net_stall > 0.0:
                    msg.net_stall = net_stall
                    if self.trace:
                        self._stall_feed.append(
                            NetStallEvent(now, rank, dst, net_stall)
                        )
            if stream > 0:
                # The network port streams the tail of the long message;
                # the processor itself is already free (DMA overlap).
                proc.port_free = now + stream
        elif fixed is not None:
            msg.arrive = now + fixed
        else:
            arrive, net_stall = self._submit(rank, dst, now)
            msg.arrive = arrive
            if net_stall > 0.0:
                msg.net_stall = net_stall
                if self.trace:
                    self._stall_feed.append(
                        NetStallEvent(now, rank, dst, net_stall)
                    )
        self._inflight_from[rank] += 1
        self._inflight_to[dst] += 1
        proc.pending_inject = None
        eid = self._engine.schedule(msg.arrive, self._on_arrival, msg)
        if self._faulty:
            # Registry of in-flight worms so a crash can truncate the
            # dying rank's own transmissions (fault runs only).
            self._flight[msg.seq] = (eid, msg)
        return True

    # ------------------------------------------------------------------
    # Lossy-fabric ARQ: timeout-and-retry with receiver-side dedup
    # ------------------------------------------------------------------

    def _inject_lossy(self, msg: _Msg, now: float) -> None:
        """Submit one copy over the lossy fabric and arm the retry timer."""
        outcome = self.fabric.submit_lossy(msg.src, msg.dst, now)
        if outcome.net_stall > 0.0:
            msg.net_stall = outcome.net_stall
            if self.trace:
                self._stall_feed.append(
                    NetStallEvent(now, msg.src, msg.dst, outcome.net_stall)
                )
        stream = (msg.words - 1) * (self._G or 0.0)
        for arrive in outcome.deliveries:
            self._engine.schedule(
                arrive + stream, self._on_lossy_arrival, msg
            )
        self._awaiting_ack[msg.seq] = msg
        delay = self._retry_policy.delay(1, msg.seq)
        self._engine.schedule(now + delay, self._on_retry, msg, 1, delay)

    def _on_lossy_arrival(self, msg: _Msg) -> None:
        if self._faulty and not self._alive[msg.dst]:
            # Dead interface: the copy vanishes, no ack — the sender's
            # retries time out and eventually give up.
            self._fault_counts["dropped_at_dead_interface"] += 1
            return
        seq = msg.seq
        if seq in self._delivered_seqs:
            # Duplicate copy (fabric duplication or a retransmission
            # racing a late original): the interface discards it.
            self._net_faults["duplicates_suppressed"] += 1
            return
        self._delivered_seqs.add(seq)
        now = self._engine.now
        msg.arrive = now
        # Ack flows back over the reliable control channel.
        self._engine.schedule(now + self._ack_latency, self._on_ack, seq)
        dst = self._procs[msg.dst]
        dst.arrived.append(msg)
        if dst.state in _DRAINABLE:
            if now >= dst.busy_until:
                self._try_drain(dst)
            else:
                self._schedule_activation(dst, dst.busy_until)

    def _on_ack(self, seq: int) -> None:
        self._awaiting_ack.pop(seq, None)

    def _on_retry(self, msg: _Msg, attempt: int, spent: float) -> None:
        if msg.seq not in self._awaiting_ack:
            return
        if attempt > self.max_retries:
            self._give_up(
                msg,
                f"unacked after {self.max_retries} retransmissions",
            )
            return
        self._net_faults["retries"] += 1
        now = self._engine.now
        outcome = self.fabric.submit_lossy(msg.src, msg.dst, now)
        stream = (msg.words - 1) * (self._G or 0.0)
        for arrive in outcome.deliveries:
            self._engine.schedule(
                arrive + stream, self._on_lossy_arrival, msg
            )
        policy = self._retry_policy
        delay = policy.delay(attempt + 1, msg.seq)
        if policy.budget is not None and spent + delay > policy.budget:
            # The copies just sent get one delay's grace to be acked;
            # no further retransmissions.
            self._engine.schedule(now + delay, self._on_retry_budget, msg)
            return
        self._engine.schedule(
            now + delay, self._on_retry, msg, attempt + 1, spent + delay
        )

    def _on_retry_budget(self, msg: _Msg) -> None:
        if msg.seq in self._awaiting_ack:
            self._give_up(msg, "unacked with the retry budget exhausted")

    def _give_up(self, msg: _Msg, why: str) -> None:
        """An undeliverable message: an error on a fault-free-processor
        run, an expected (counted) outcome under a fault plan — this is
        how a peer's crash resolves at the sender."""
        self._awaiting_ack.pop(msg.seq, None)
        if self._faulty:
            self._fault_counts["gave_up_sends"] += 1
            return
        raise SimulationError(
            f"message {msg.src}->{msg.dst} (seq {msg.seq}) {why}"
        )

    # ------------------------------------------------------------------
    # Wait-graph: parked senders and slot releases
    # ------------------------------------------------------------------

    def _park(
        self, proc: _Proc, dst: int, needs_src: bool, needs_dst: bool
    ) -> None:
        """Record a failed injection in the wait-graph.

        The sender keeps its FIFO position across repeated failures; the
        recorded constraint set is refreshed each attempt (a waiter woken
        for a freed destination slot may find its own outbound slot
        newly exhausted, and vice versa).
        """
        now = self._engine.now
        proc.needs_src = needs_src
        proc.needs_dst = needs_dst
        if proc.stall_started is None:
            proc.stall_started = now
            if self.trace:
                self._stall_feed.append(
                    StallEvent(now, proc.rank, dst, needs_src, needs_dst)
                )
        if proc.queued_on is None:
            proc.queued_on = dst
            self._stall_queue[dst].append(proc.rank)

    def _admissible(self, rank: int, dst: int) -> bool:
        """Is a parked ``rank -> dst`` injection satisfiable right now?"""
        return (
            self._inflight_from[rank] < self.capacity
            and self._inflight_to[dst] < self.capacity
        )

    def _release_src_slot(self, src: int) -> None:
        """An outbound slot of ``src`` freed (one of its messages
        arrived).  The only possible waiter is ``src`` itself — wake it
        if its *entire* constraint set is now satisfiable."""
        proc = self._procs[src]
        if proc.stall_started is None or proc.pending_inject is None:
            return
        dst = proc.pending_inject.dst
        admitted = self._admissible(src, dst)
        if self.trace:
            self._stall_feed.append(
                WakeupEvent(self._engine.now, src, dst, "src", src, admitted)
            )
        if admitted:
            self._schedule_activation(
                proc, max(self._engine.now, proc.busy_until)
            )

    def _release_dst_slot(self, dst: int) -> None:
        """An inbound slot of ``dst`` freed (it began a reception).

        Scan the destination's waiter list in FIFO order and admit every
        sender whose full constraint set is satisfiable, debiting the
        freed capacity as we go.  A head-of-queue waiter that is still
        blocked on its own outbound slot is skipped — not returned to —
        so the slot flows to the first sender that can actually use it
        (the lost-wakeup hazard this wait-graph exists to close).
        """
        queue = self._stall_queue[dst]
        if not queue:
            return
        now = self._engine.now
        budget = self.capacity - self._inflight_to[dst]
        trace = self.trace
        for rank in queue:
            if budget <= 0:
                break
            admitted = self._inflight_from[rank] < self.capacity
            if trace:
                self._stall_feed.append(
                    WakeupEvent(now, rank, dst, "dst", dst, admitted)
                )
            if admitted:
                budget -= 1
                waiter = self._procs[rank]
                self._schedule_activation(waiter, max(now, waiter.busy_until))

    def _on_arrival(self, msg: _Msg) -> None:
        # The source's slot frees at arrival.
        src = msg.src
        if self._faulty:
            self._flight.pop(msg.seq, None)
            if not self._alive[msg.dst]:
                # Dead interface: the message vanishes.  Both capacity
                # slots free so live senders make progress.
                self._inflight_from[src] -= 1
                self._inflight_to[msg.dst] -= 1
                self._fault_counts["dropped_at_dead_interface"] += 1
                src_proc = self._procs[src]
                if src_proc.stall_started is not None:
                    self._release_src_slot(src)
                if self._stall_queue[msg.dst]:
                    self._release_dst_slot(msg.dst)
                return
        self._inflight_from[src] -= 1
        src_proc = self._procs[src]
        if src_proc.stall_started is not None:
            self._release_src_slot(src)
        dst = self._procs[msg.dst]
        dst.arrived.append(msg)
        if dst.state in _DRAINABLE:
            if self._engine.now >= dst.busy_until:
                self._try_drain(dst)
            else:
                self._schedule_activation(dst, dst.busy_until)

    # ------------------------------------------------------------------
    # Receive path (drain)
    # ------------------------------------------------------------------

    def _try_drain(self, proc: _Proc) -> None:
        """Service one arrived message if the processor is in a state that
        allows reception and the receive gap permits it now."""
        if not proc.arrived or proc.state not in _DRAINABLE:
            return
        now = self._engine.now
        if now < proc.busy_until:
            self._schedule_activation(proc, proc.busy_until)
            return
        if proc.pending_inject is not None and proc.stall_started is None:
            # A committed message's injection event is due this very
            # instant (it fires at busy-end); injection and the action
            # dispatch behind it go first, and they re-attempt the
            # drain themselves.  Draining here would let an arrival
            # that happens to sort earlier in the event queue overtake
            # the send.
            return
        earliest = proc.last_recv_start + self._g
        if earliest > now:
            self._schedule_activation(proc, earliest)
            return

        msg = proc.arrived.popleft()
        end = now + self._o
        rank = proc.rank
        proc.last_recv_start = now
        proc.busy_until = end
        proc.result.receives += 1
        if proc.last_activity < end:
            proc.last_activity = end
        if self._schedule is not None:
            self._schedule.add_interval(
                rank, now, end, Activity.RECV, f"<-{msg.src}"
            )
        # The recv-done event below is the guaranteed wakeup at
        # busy_until; any activation pending before it is stale.
        if proc.pending_activations:
            self._supersede_activations(proc, end)
        # The destination's slot frees when reception begins.
        self._inflight_to[rank] -= 1
        if self._stall_queue[rank]:
            self._release_dst_slot(rank)
        self._engine.schedule(end, self._on_recv_done, proc, msg, now)

    def _on_recv_done(self, proc: _Proc, msg: _Msg, recv_start: float) -> None:
        now = self._engine.now
        if self._faulty:
            if proc.state == _CRASHED:
                # The rank died while this reception was in progress;
                # the message is lost with the interface.
                self._fault_counts["dropped_at_dead_interface"] += 1
                return
            # Exactly-once witness for the chaos harness: each seq may
            # complete reception at a program at most once.
            if msg.seq in self._delivered_once:
                self._fault_counts["duplicate_deliveries"] += 1
            else:
                self._delivered_once.add(msg.seq)
        rm = ReceivedMessage(msg.src, msg.payload, msg.tag, msg.send_start, now)
        if self._schedule is not None:
            self._schedule.add_message(
                MessageRecord(
                    src=msg.src,
                    dst=msg.dst,
                    send_start=msg.send_start,
                    inject=msg.inject,
                    arrive=msg.arrive,
                    recv_start=recv_start,
                    recv_end=now,
                    tag="" if msg.tag is None else str(msg.tag),
                    words=msg.words,
                    net_stall=msg.net_stall,
                )
            )
        state = proc.state
        if state == _WAIT_RECV and not proc.mailbox:
            tag = proc.pending.tag
            if tag is None or tag == rm.tag:
                # Direct delivery: the blocked Recv takes the message
                # just received without a mailbox round-trip.
                proc.resume = rm
                proc.pending = None
                proc.state = _RUNNING
                self._activate(proc)
                return
        proc.mailbox.append(rm)
        if state == _POLLING:
            proc.poll_drained += 1
            # Continue only if another reception can start right now;
            # Poll never waits.
            self._activate(proc)
            return
        if state == _WAIT_RECV:
            taken = self._mailbox_take(proc, proc.pending.tag)
            if taken is not None:
                proc.resume = taken
                proc.pending = None
                proc.state = _RUNNING
                self._activate(proc)
                return
        # Keep draining / resume whatever the processor was doing.
        if proc.arrived and proc.state in _DRAINABLE:
            self._try_drain(proc)
        if proc.state == _STALL_SEND or proc.state == _WAIT_GAP:
            self._schedule_activation(proc, max(now, proc.busy_until))

    def _mailbox_take(
        self, proc: _Proc, tag: Hashable
    ) -> ReceivedMessage | None:
        if tag is None:
            return proc.mailbox.popleft() if proc.mailbox else None
        for i, m in enumerate(proc.mailbox):
            if m.tag == tag:
                del proc.mailbox[i]
                return m
        return None

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------

    def _release_barrier(self) -> None:
        release = self._engine.now + self.hw_barrier_cost
        waiting = self._barrier_waiting
        self._barrier_waiting = []
        self._barrier_generation += 1
        for rank in waiting:
            proc = self._procs[rank]
            self._engine.schedule(
                max(release, proc.busy_until), self._on_barrier_release, rank
            )

    def _on_barrier_release(self, rank: int) -> None:
        proc = self._procs[rank]
        if proc.state == _WAIT_BARRIER:
            proc.state = _RUNNING
            proc.resume = None
            self._activate(proc)

    # ------------------------------------------------------------------
    # Processor faults: crash / recovery / heartbeat failure detection
    # ------------------------------------------------------------------

    def _setup_faults(self, P: int) -> None:
        """Per-run fault state; crash events are scheduled *before* the
        initial activations so a crash at t=0 precedes the rank's first
        dispatch (the rank never runs)."""
        self._fault_counts: dict[str, Any] = {
            "dropped_in_flight": 0,
            "dropped_at_dead_interface": 0,
            "reaped_parked": 0,
            "gave_up_sends": 0,
            "duplicate_deliveries": 0,
            "heartbeats_sent": 0,
            "checkpoints": 0,
            "restores": 0,
            "slowed_computes": 0,
            "wedged_ranks": [],
            "unreceived_messages": 0,
        }
        self._fault_events = []
        self._alive = [True] * P
        self._incarnation = [0] * P
        self._was_done_at_crash = [False] * P
        self._pending_recoveries = 0
        # seq -> (arrival event id, msg) for every reliable-path message
        # in flight; lets a crash truncate the dying rank's worms.
        self._flight: dict[int, tuple[int, _Msg]] = {}
        # Exactly-once witness: seqs whose reception completed at a
        # program (chaos harness invariant).
        self._delivered_once: set[int] = set()
        if self._faulty:
            for ev in self.fault_plan.events:
                if type(ev) is CrashStop:
                    self._engine.schedule(ev.at, self._on_crash, ev)
                elif type(ev) is CrashRecover:
                    self._engine.schedule(ev.at, self._on_crash, ev)
                    self._pending_recoveries += 1
        cfg = self._hb_cfg
        if cfg is not None:
            self._suspected = [set() for _ in range(P)]
            # _hb_watchers[r]: who receives r's heartbeats;
            # _watched_by[w]: whose heartbeats w expects.
            self._hb_watchers = cfg.watch_map(P)
            self._watched_by: list[list[int]] = [[] for _ in range(P)]
            for r, ws in enumerate(self._hb_watchers):
                for w in ws:
                    self._watched_by[w].append(r)
            self._last_hb = [[0.0] * P for _ in range(P)]
            # Heartbeats fly over the control channel at the fabric's
            # unloaded bound (like ARQ acks).
            self._hb_flight = self.fabric.bound
            self._engine.schedule(cfg.period, self._on_hb_tick)
        else:
            self._suspected = None

    def _on_crash(self, ev: "CrashStop | CrashRecover") -> None:
        rank = ev.rank
        proc = self._procs[rank]
        if proc.state == _CRASHED:
            return
        engine = self._engine
        now = engine.now
        was_done = proc.state == _DONE
        self._was_done_at_crash[rank] = was_done
        self._alive[rank] = False
        # Reap a parked wait-graph entry without waking the dead sender.
        reaped = 0
        if proc.queued_on is not None:
            self._stall_queue[proc.queued_on].remove(rank)
            proc.queued_on = None
            proc.needs_src = proc.needs_dst = False
            reaped = 1
            self._fault_counts["reaped_parked"] += 1
        proc.pending_inject = None
        proc.stall_started = None
        # A dead rank never dispatches again.
        if proc.pending_activations:
            cancel = engine.cancel
            for eid in proc.pending_activations.values():
                cancel(eid)
            proc.pending_activations.clear()
        # Truncate the rank's own in-flight worms (reliable path).  On a
        # lossy fabric, copies already handed to the fabric are beyond
        # recall (fire-and-forget datagrams); only the dead rank's
        # retransmissions stop.
        dropped = 0
        if self._flight:
            for seq in [
                s for s, (_, m) in self._flight.items() if m.src == rank
            ]:
                eid, msg = self._flight.pop(seq)
                engine.cancel(eid)
                self._inflight_from[rank] -= 1
                self._inflight_to[msg.dst] -= 1
                dropped += 1
                if self._stall_queue[msg.dst]:
                    self._release_dst_slot(msg.dst)
        if self._lossy:
            for seq in [
                s for s, m in self._awaiting_ack.items() if m.src == rank
            ]:
                del self._awaiting_ack[seq]
                dropped += 1
        self._fault_counts["dropped_in_flight"] += dropped
        # Receives die with the interface.
        self._fault_counts["dropped_at_dead_interface"] += len(proc.arrived)
        proc.arrived.clear()
        proc.mailbox.clear()
        # A dead rank that had entered the hardware barrier no longer
        # counts toward it; a barrier it never entered wedges survivors
        # (recorded by the relaxed completion check).
        if rank in self._barrier_waiting:
            self._barrier_waiting.remove(rank)
        try:
            proc.gen.close()
        except Exception:
            pass
        proc.pending = None
        proc.resume = None
        proc.state = _CRASHED
        kind = "transient" if type(ev) is CrashRecover else "stop"
        crash = CrashEvent(now, rank, kind, dropped, reaped)
        self._fault_events.append(crash)
        if self.trace:
            self._stall_feed.append(crash)
        if type(ev) is CrashRecover:
            engine.schedule(ev.back_at, self._on_recover, ev)

    def _on_recover(self, ev: CrashRecover) -> None:
        rank = ev.rank
        proc = self._procs[rank]
        now = self._engine.now
        self._alive[rank] = True
        self._pending_recoveries -= 1
        self._incarnation[rank] += 1
        had_ck = (
            self._checkpoints is not None
            and self._checkpoints[rank] is not None
        )
        rec = RecoverEvent(now, rank, self._incarnation[rank], had_ck)
        self._fault_events.append(rec)
        if self.trace:
            self._stall_feed.append(rec)
        if self._suspected is not None:
            # The fresh incarnation's detector starts with a clean slate
            # and a grace period (it was deaf while down); watchers
            # un-suspect it when its first new heartbeat lands.
            self._suspected[rank].clear()
            row = self._last_hb[rank]
            for s in range(self._P):
                row[s] = now
        if self._was_done_at_crash[rank]:
            # The program had already finished — nothing to redo; the
            # rank just rejoins heartbeating with its result intact.
            proc.state = _DONE
            return
        proc.gen = self._factory(rank, self._P)
        proc.state = _RUNNING
        proc.pending = None
        proc.resume = None
        proc.busy_until = now
        proc.last_send_start = -math.inf
        proc.last_recv_start = -math.inf
        proc.poll_drained = 0
        proc.pending_inject = None
        proc.port_free = 0.0
        self._schedule_activation(proc, now)

    def _on_hb_tick(self) -> None:
        """One detector period: every alive rank's interface emits
        heartbeats to its watchers (serialized on the sender's message
        port at ``max(g, o)`` spacing — real traffic), then every alive
        watcher checks its watch list for silence past the timeout."""
        engine = self._engine
        now = engine.now
        cfg = self._hb_cfg
        alive = self._alive
        counts = self._fault_counts
        interval = self._send_interval
        o = self._o
        for src, watchers in enumerate(self._hb_watchers):
            if not watchers or not alive[src]:
                continue
            proc = self._procs[src]
            done = proc.state == _DONE
            for w in watchers:
                start = proc.last_send_start + interval
                if start < now:
                    start = now
                proc.last_send_start = start
                end = start + o
                if not done and proc.last_activity < end:
                    proc.last_activity = end
                counts["heartbeats_sent"] += 1
                engine.schedule(end + self._hb_flight, self._on_hb, w, src)
        timeout = cfg.timeout
        for w in range(self._P):
            if not alive[w]:
                continue
            suspected = self._suspected[w]
            last = self._last_hb[w]
            for s in self._watched_by[w]:
                if s in suspected:
                    continue
                silent = now - last[s]
                if silent > timeout:
                    suspected.add(s)
                    sev = SuspectEvent(
                        now, w, s, last[s], int(silent // cfg.period)
                    )
                    self._fault_events.append(sev)
                    if self.trace:
                        self._stall_feed.append(sev)
        nxt = now + cfg.period
        if cfg.horizon is not None and nxt > cfg.horizon:
            return
        if self._pending_recoveries > 0 or any(
            p.state != _DONE and p.state != _CRASHED for p in self._procs
        ):
            engine.schedule(nxt, self._on_hb_tick)

    def _on_hb(self, watcher: int, src: int) -> None:
        """A heartbeat landing: occupies the watcher's receive port and
        refreshes its liveness record for ``src``."""
        if not self._alive[watcher]:
            return
        now = self._engine.now
        proc = self._procs[watcher]
        start = proc.last_recv_start + self._g
        if start < now:
            start = now
        proc.last_recv_start = start
        end = start + self._o
        if proc.state != _DONE and proc.last_activity < end:
            proc.last_activity = end
        self._last_hb[watcher][src] = now
        self._suspected[watcher].discard(src)

    def _on_recv_timeout(self, proc: _Proc, token: int) -> None:
        """A ``Recv(timeout=...)`` expiring: if the wait it armed for is
        still in progress, resume the program with ``None``.  A
        reception already under way completes into the mailbox — the
        timeout wins the race."""
        if proc.state == _WAIT_RECV and proc.wait_token == token:
            proc.pending = None
            proc.resume = None
            proc.state = _RUNNING
            self._activate(proc)

    # ------------------------------------------------------------------

    def _record(
        self, proc: _Proc, start: float, end: float, kind: Activity, detail: str
    ) -> None:
        if end > proc.last_activity:
            proc.last_activity = end
        if self._schedule is not None:
            self._schedule.add_interval(proc.rank, start, end, kind, detail)

    def _check_completion(self) -> None:
        """End-of-run invariants, raised as real simulation errors.

        Leftover *mailbox* contents are permitted (programs may ignore
        messages), but a processor that never finished, a message still
        awaiting reception, or a sender still parked in the wait-graph
        means the run ended mid-flight.

        Under a fault plan these are *expected* outcomes — a survivor
        can wedge forever on a dead peer — so they are recorded in the
        fault report instead of raised.
        """
        if self._faulty:
            counts = self._fault_counts
            counts["wedged_ranks"] = sorted(
                p.rank
                for p in self._procs
                if p.state != _DONE and p.state != _CRASHED
            )
            counts["unreceived_messages"] += sum(
                len(p.arrived) for p in self._procs
            )
            return
        blocked = [
            (p.rank, p.state)
            for p in self._procs
            if p.state != _DONE
        ]
        if blocked:
            detail = ", ".join(f"P{r}:{s}" for r, s in blocked[:8])
            raise SimulationError(
                f"deadlock: {len(blocked)} processor(s) never finished "
                f"({detail}{'...' if len(blocked) > 8 else ''}). "
                "Check for unmatched Recv/Send or mismatched barriers."
            )
        for p in self._procs:
            if p.arrived:
                raise SimulationError(
                    f"processor {p.rank} ended with {len(p.arrived)} "
                    "unreceived message(s)"
                )
            if p.pending_inject is not None or p.queued_on is not None:
                raise SimulationError(
                    f"processor {p.rank} ended with a message parked at "
                    "the network interface (stalled sender never woken)"
                )


def run_programs(
    params: LogPParams,
    programs: Iterable[Program] | ProgramFactory,
    **machine_kwargs: Any,
) -> MachineResult:
    """One-call convenience: build a :class:`LogPMachine` and run it."""
    return LogPMachine(params, **machine_kwargs).run(programs)
