"""The simulated LogP machine.

:class:`LogPMachine` executes one program (a generator, see
:mod:`repro.sim.program`) per processor and enforces the model's
semantics from Section 3 of the paper:

* each send and each receive engages the processor for ``o`` cycles;
* consecutive sends at one processor start at least ``max(g, o)`` apart,
  and likewise consecutive receives (the gap ``g`` in both directions);
* at most ``ceil(L/g)`` messages may be *in transit* from any processor
  or to any processor; a transmission that would exceed either limit
  stalls the sender until a slot frees (the capacity constraint);
* message flight time is drawn from a :class:`~repro.sim.latency.LatencyModel`
  (exactly ``L`` by default; random ``<= L`` to exercise asynchrony and
  out-of-order delivery);
* processors are engaged during ``Compute`` and cannot service messages;
  while idle, sleeping, stalled or waiting they *drain* arrived messages
  (paying ``o`` per message, respecting the receive gap) — this is what
  lets a stalled sender's destination keep accepting one message per
  ``g`` cycles, the behaviour the paper's naive-FFT-schedule analysis
  describes ("one will send to processor 0 every g cycles").

Capacity accounting — the reading under which the model is
self-consistent: a message is *in transit from its source* between
injection (``send_start + o``) and arrival, so a sender pacing itself at
``g`` keeps at most ``L/g <= ceil(L/g)`` of its own messages in flight
and never self-stalls; it is *in transit to its destination* between
injection and the start of the destination's reception, so a flooded
destination — which drains at most one message per ``g`` — back-pressures
its senders, exactly the "all but L/g processors will stall on the first
send" dynamics of Section 4.1.2.  The capacity check happens at the
moment of injection ("if a processor attempts to transmit a message that
would exceed this limit, it stalls until the message can be sent"): the
send overhead is paid first, then the message waits at the interface —
with the processor stalled but able to service incoming messages — until
the network accepts it.

The run produces a :class:`~repro.core.schedule.Schedule` trace that the
semantic validator (:mod:`repro.sim.validate`) and the figure benchmarks
consume.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Hashable, Iterable

from ..core.params import LogPParams
from ..core.schedule import Activity, MessageRecord, Schedule
from .engine import Engine, SimulationError
from .latency import FixedLatency, LatencyModel
from .program import (
    Barrier,
    Compute,
    Now,
    Poll,
    ProgramResult,
    ReceivedMessage,
    Recv,
    Send,
    Sleep,
)

__all__ = ["LogPMachine", "MachineResult", "run_programs"]

Program = Generator[Any, Any, Any]
ProgramFactory = Callable[[int, int], Program]

# Processor states
_RUNNING = "running"
_BUSY = "busy"
_WAIT_GAP = "wait_gap"
_STALL_SEND = "stall_send"
_WAIT_RECV = "wait_recv"
_WAIT_BARRIER = "wait_barrier"
_SLEEPING = "sleeping"
_POLLING = "polling"
_DONE = "done"

_DRAINABLE = frozenset(
    {
        _WAIT_GAP,
        _STALL_SEND,
        _WAIT_RECV,
        _WAIT_BARRIER,
        _SLEEPING,
        _POLLING,
        _DONE,
    }
)


@dataclass(slots=True)
class _Msg:
    seq: int
    src: int
    dst: int
    payload: Any
    tag: Hashable
    send_start: float
    inject: float
    arrive: float
    words: int = 1


class _Proc:
    """Per-processor simulator state."""

    __slots__ = (
        "rank",
        "gen",
        "state",
        "pending",
        "resume",
        "busy_until",
        "last_send_start",
        "last_recv_start",
        "mailbox",
        "arrived",
        "stall_started",
        "result",
        "activation_scheduled_at",
        "poll_drained",
        "pending_inject",
        "port_free",
    )

    def __init__(self, rank: int, gen: Program) -> None:
        self.rank = rank
        self.gen = gen
        self.state = _RUNNING
        self.pending: Any = None
        self.resume: Any = None
        self.busy_until = 0.0
        self.last_send_start = -math.inf
        self.last_recv_start = -math.inf
        self.mailbox: deque[ReceivedMessage] = deque()
        self.arrived: deque[_Msg] = deque()
        self.stall_started: float | None = None
        self.result = ProgramResult(rank=rank)
        self.activation_scheduled_at: float = -1.0
        self.poll_drained = 0
        # A committed message (send overhead already paid) waiting for
        # the network to accept it under the capacity constraint.
        self.pending_inject: "_Msg | None" = None
        # When this processor's network port finishes streaming the
        # current long message (LogGP extension); 1-word messages leave
        # the port free immediately.
        self.port_free = 0.0


@dataclass(slots=True)
class MachineResult:
    """Everything a run produces."""

    params: LogPParams
    makespan: float
    results: list[ProgramResult]
    schedule: Schedule | None
    total_messages: int
    total_stall_time: float
    events_run: int
    extras: dict[str, Any] = field(default_factory=dict)

    def value(self, rank: int) -> Any:
        """Final return value of processor ``rank``'s program."""
        return self.results[rank].value

    def values(self) -> list[Any]:
        return [r.value for r in self.results]


class LogPMachine:
    """A simulated LogP machine.

    Args:
        params: the four LogP parameters.
        latency: network flight-time model; defaults to the deterministic
            ``FixedLatency(params.L)`` the paper's analyses assume.
        enforce_capacity: apply the ``ceil(L/g)`` constraint (disable for
            the capacity ablation).  Slots are held per the module
            docstring: source slots over [inject, arrive), destination
            slots over [inject, recv_start), checked at injection.
        capacity: override the in-flight limit (default ``params.capacity``).
        hw_barrier_cost: cycles a hardware ``Barrier`` costs after the
            last processor arrives (CM-5 control network, Section 5.5).
        compute_jitter: optional ``f(rank, cycles) -> actual_cycles``
            applied to every ``Compute`` — models the processor drift of
            Section 4.1.4 / Figure 8.
        trace: record a full :class:`Schedule` (intervals + message
            records).  Turn off for large runs; summary statistics are
            kept either way.
        max_events: event budget passed to the engine.
    """

    def __init__(
        self,
        params: LogPParams,
        *,
        latency: LatencyModel | None = None,
        enforce_capacity: bool = True,
        capacity: int | None = None,
        hw_barrier_cost: float = 0.0,
        compute_jitter: Callable[[int, float], float] | None = None,
        trace: bool = True,
        max_events: int = 50_000_000,
    ) -> None:
        if hw_barrier_cost < 0:
            raise ValueError(f"hw_barrier_cost must be >= 0, got {hw_barrier_cost}")
        self.params = params
        self.latency = latency if latency is not None else FixedLatency(params.L)
        if self.latency.L > params.L + 1e-12:
            raise ValueError(
                f"latency model bound {self.latency.L} exceeds L={params.L}"
            )
        self.enforce_capacity = enforce_capacity
        self.capacity = params.capacity if capacity is None else capacity
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        self.hw_barrier_cost = hw_barrier_cost
        self.compute_jitter = compute_jitter
        self.trace = trace
        self.max_events = max_events
        # Long-message Gap (Section 5.4 extension), present when the
        # machine is built from LogGPParams.
        self._G: float | None = getattr(params, "G", None)

    # ------------------------------------------------------------------

    def run(self, programs: Iterable[Program] | ProgramFactory) -> MachineResult:
        """Execute one program per processor and return the result.

        ``programs`` is either a sequence of exactly ``P`` generators or
        a factory called as ``factory(rank, P)``.
        """
        P = self.params.P
        if callable(programs):
            gens = [programs(r, P) for r in range(P)]
        else:
            gens = list(programs)
            if len(gens) != P:
                raise ValueError(
                    f"expected {P} programs, got {len(gens)}"
                )

        self._engine = Engine(max_events=self.max_events)
        self._procs = [_Proc(r, g) for r, g in enumerate(gens)]
        self._schedule = Schedule(self.params) if self.trace else None
        self._inflight_from = [0] * P
        self._inflight_to = [0] * P
        # Senders stalled on a destination's capacity, FIFO per destination.
        self._stalled_on_dst: list[deque[int]] = [deque() for _ in range(P)]
        # Senders stalled on their own outbound capacity.
        self._stalled_on_src: set[int] = set()
        self._barrier_waiting: list[int] = []
        self._barrier_generation = 0
        self._msg_seq = 0
        self._total_messages = 0
        self.latency.reset()

        for r in range(P):
            self._engine.schedule(0.0, self._make_activation(r))

        self._engine.run()
        self._check_completion()

        makespan = max(
            (p.result.finished_at for p in self._procs), default=0.0
        )
        if self._schedule is not None:
            self._schedule.sort_all()
            makespan = max(makespan, self._schedule.makespan)
        total_stall = sum(p.result.stall_time for p in self._procs)
        return MachineResult(
            params=self.params,
            makespan=makespan,
            results=[p.result for p in self._procs],
            schedule=self._schedule,
            total_messages=self._total_messages,
            total_stall_time=total_stall,
            events_run=self._engine.events_run,
        )

    # ------------------------------------------------------------------
    # Activation: advance a processor as far as it can go right now.
    # ------------------------------------------------------------------

    def _make_activation(self, rank: int) -> Callable[[], None]:
        return lambda: self._activate(rank)

    def _schedule_activation(self, rank: int, time: float) -> None:
        proc = self._procs[rank]
        # Suppress duplicate same-time activations (common when several
        # wake conditions fire together).
        if proc.activation_scheduled_at == time:
            return
        proc.activation_scheduled_at = time
        self._engine.schedule(time, self._make_activation(rank))

    def _activate(self, rank: int) -> None:
        proc = self._procs[rank]
        now = self._engine.now
        proc.activation_scheduled_at = -1.0

        while True:
            if proc.state == _DONE:
                self._try_drain(proc)
                return
            if now < proc.busy_until:
                self._schedule_activation(rank, proc.busy_until)
                return
            if proc.state == _SLEEPING:
                # Woken early (e.g. by an arrival): drain, stay asleep.
                self._try_drain(proc)
                return
            if proc.state == _WAIT_BARRIER:
                # Spurious wake while parked at a barrier: only drain.
                self._try_drain(proc)
                return

            if proc.pending_inject is not None:
                # A committed message is waiting at the network interface;
                # the processor may not proceed (but can service arrivals
                # while stalled).
                if self._try_inject(proc):
                    proc.state = _RUNNING
                    continue
                proc.state = _STALL_SEND
                self._try_drain(proc)
                return

            if proc.pending is None:
                try:
                    proc.pending = proc.gen.send(proc.resume)
                except StopIteration as stop:
                    proc.state = _DONE
                    proc.result.value = stop.value
                    proc.result.finished_at = now
                    self._try_drain(proc)
                    return
                proc.resume = None
                if isinstance(proc.pending, Poll):
                    proc.poll_drained = 0

            act = proc.pending

            if isinstance(act, Now):
                proc.resume = now
                proc.pending = None
                continue

            if isinstance(act, Compute):
                cycles = act.cycles
                if self.compute_jitter is not None:
                    cycles = self.compute_jitter(rank, cycles)
                    if cycles < 0:
                        raise SimulationError(
                            f"compute_jitter returned negative cycles {cycles}"
                        )
                proc.state = _BUSY
                proc.busy_until = now + cycles
                self._record(rank, now, proc.busy_until, Activity.COMPUTE, act.label)
                proc.pending = None
                if cycles > 0:
                    proc.state = _RUNNING
                    self._schedule_activation(rank, proc.busy_until)
                    return
                proc.state = _RUNNING
                continue

            if isinstance(act, Sleep):
                proc.state = _SLEEPING
                wake = now + act.cycles
                proc.pending = None
                self._engine.schedule(wake, self._make_wake(rank, wake))
                self._try_drain(proc)
                return

            if isinstance(act, Poll):
                can = bool(proc.arrived) and (
                    now >= proc.last_recv_start + self.params.g
                )
                if can:
                    proc.state = _POLLING
                    self._try_drain(proc)
                    return
                proc.resume = proc.poll_drained
                proc.pending = None
                proc.state = _RUNNING
                continue

            if isinstance(act, Send):
                if not self._try_send(proc, act):
                    return
                continue

            if isinstance(act, Recv):
                msg = self._mailbox_take(proc, act.tag)
                if msg is not None:
                    proc.resume = msg
                    proc.pending = None
                    proc.state = _RUNNING
                    continue
                proc.state = _WAIT_RECV
                self._try_drain(proc)
                return

            if isinstance(act, Barrier):
                proc.pending = None
                proc.state = _WAIT_BARRIER
                self._barrier_waiting.append(rank)
                if len(self._barrier_waiting) == self.params.P:
                    self._release_barrier()
                else:
                    self._try_drain(proc)
                return

            raise SimulationError(
                f"processor {rank} yielded unknown action {act!r}"
            )

    def _make_wake(self, rank: int, wake: float) -> Callable[[], None]:
        def fire() -> None:
            proc = self._procs[rank]
            if proc.state == _SLEEPING and self._engine.now >= wake:
                # The sleep may have been extended by a drain reception.
                if self._engine.now < proc.busy_until:
                    self._engine.schedule(proc.busy_until, fire)
                    return
                proc.state = _RUNNING
                self._activate(rank)

        return fire

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------

    def _try_send(self, proc: _Proc, act: Send) -> bool:
        """Attempt the pending send now.  Returns True if the processor
        should keep running (send committed), False if it blocked."""
        rank = proc.rank
        now = self._engine.now
        dst = act.dst
        if not 0 <= dst < self.params.P:
            raise SimulationError(
                f"processor {rank} sent to invalid destination {dst}"
            )
        if dst == rank:
            raise SimulationError(
                f"processor {rank} attempted to send to itself"
            )
        if act.words > 1 and self._G is None:
            raise SimulationError(
                f"processor {rank} sent a {act.words}-word message but the "
                "machine has no long-message Gap; build it with "
                "LogGPParams (core.loggp) to use the Section 5.4 extension"
            )

        earliest = max(
            now,
            proc.last_send_start + self.params.send_interval,
            proc.port_free,
        )
        if earliest > now:
            proc.state = _WAIT_GAP
            self._schedule_activation(rank, earliest)
            self._try_drain(proc)
            return False

        # Commit: pay the overhead now; the message then waits at the
        # network interface until the capacity constraint admits it
        # (usually immediately — see _try_inject).
        o = self.params.o
        msg = _Msg(
            seq=self._msg_seq,
            src=rank,
            dst=dst,
            payload=act.payload,
            tag=act.tag,
            send_start=now,
            inject=-1.0,
            arrive=-1.0,
            words=act.words,
        )
        self._msg_seq += 1
        self._total_messages += 1
        proc.last_send_start = now
        proc.result.sends += 1
        proc.pending_inject = msg
        proc.busy_until = max(proc.busy_until, now + o)
        self._record(rank, now, now + o, Activity.SEND, f"->{dst}")
        proc.pending = None
        proc.state = _RUNNING
        return True

    def _try_inject(self, proc: _Proc) -> bool:
        """Attempt to hand the committed message to the network now.

        Returns True on success.  On failure the caller stalls the
        processor; it is re-activated whenever a relevant capacity slot
        frees.
        """
        msg = proc.pending_inject
        assert msg is not None
        now = self._engine.now
        rank, dst = msg.src, msg.dst
        if self.enforce_capacity:
            blocked = False
            if self._inflight_from[rank] >= self.capacity:
                self._stalled_on_src.add(rank)
                blocked = True
            if self._inflight_to[dst] >= self.capacity:
                if rank not in self._stalled_on_dst[dst]:
                    self._stalled_on_dst[dst].append(rank)
                blocked = True
            if blocked:
                if proc.stall_started is None:
                    proc.stall_started = now
                return False

        if proc.stall_started is not None:
            proc.result.stall_time += now - proc.stall_started
            self._record(
                rank, proc.stall_started, now, Activity.STALL, f"->{dst}"
            )
            proc.stall_started = None
        self._stalled_on_src.discard(rank)
        try:
            self._stalled_on_dst[dst].remove(rank)
        except ValueError:
            pass

        msg.inject = now
        stream = (msg.words - 1) * (self._G or 0.0)
        msg.arrive = now + stream + self.latency.draw(rank, dst)
        if stream > 0:
            # The network port streams the tail of the long message;
            # the processor itself is already free (DMA overlap).
            proc.port_free = now + stream
        self._inflight_from[rank] += 1
        self._inflight_to[dst] += 1
        proc.pending_inject = None
        self._engine.schedule(msg.arrive, self._make_arrival(msg))
        return True

    def _make_arrival(self, msg: _Msg) -> Callable[[], None]:
        def fire() -> None:
            # The source's slot frees at arrival.
            self._inflight_from[msg.src] -= 1
            if msg.src in self._stalled_on_src:
                src = self._procs[msg.src]
                self._schedule_activation(
                    msg.src, max(self._engine.now, src.busy_until)
                )
            dst = self._procs[msg.dst]
            dst.arrived.append(msg)
            if dst.state in _DRAINABLE and self._engine.now >= dst.busy_until:
                self._try_drain(dst)
            elif dst.state in _DRAINABLE:
                self._schedule_activation(msg.dst, dst.busy_until)

        return fire

    # ------------------------------------------------------------------
    # Receive path (drain)
    # ------------------------------------------------------------------

    def _try_drain(self, proc: _Proc) -> None:
        """Service one arrived message if the processor is in a state that
        allows reception and the receive gap permits it now."""
        if proc.state not in _DRAINABLE or not proc.arrived:
            return
        now = self._engine.now
        if now < proc.busy_until:
            self._schedule_activation(proc.rank, proc.busy_until)
            return
        earliest = max(now, proc.last_recv_start + self.params.g)
        if earliest > now:
            self._schedule_activation(proc.rank, earliest)
            return

        msg = proc.arrived.popleft()
        o = self.params.o
        proc.last_recv_start = now
        proc.busy_until = now + o
        proc.result.receives += 1
        self._record(proc.rank, now, now + o, Activity.RECV, f"<-{msg.src}")
        # The destination's slot frees when reception begins.
        self._inflight_to[proc.rank] -= 1
        queue = self._stalled_on_dst[proc.rank]
        if queue:
            waiter = queue[0]
            wp = self._procs[waiter]
            self._schedule_activation(waiter, max(now, wp.busy_until))
        self._engine.schedule(now + o, self._make_recv_done(proc.rank, msg, now))

    def _make_recv_done(
        self, rank: int, msg: _Msg, recv_start: float
    ) -> Callable[[], None]:
        def fire() -> None:
            now = self._engine.now
            proc = self._procs[rank]
            received = ReceivedMessage(
                src=msg.src,
                payload=msg.payload,
                tag=msg.tag,
                sent_at=msg.send_start,
                received_at=now,
            )
            proc.mailbox.append(received)
            if self._schedule is not None:
                self._schedule.add_message(
                    MessageRecord(
                        src=msg.src,
                        dst=msg.dst,
                        send_start=msg.send_start,
                        inject=msg.inject,
                        arrive=msg.arrive,
                        recv_start=recv_start,
                        recv_end=now,
                        tag="" if msg.tag is None else str(msg.tag),
                        words=msg.words,
                    )
                )
            if proc.state == _POLLING:
                proc.poll_drained += 1
                # Continue only if another reception can start right now;
                # Poll never waits.
                self._activate(rank)
                return
            if proc.state == _WAIT_RECV:
                taken = self._mailbox_take(proc, proc.pending.tag)
                if taken is not None:
                    proc.resume = taken
                    proc.pending = None
                    proc.state = _RUNNING
                    self._activate(rank)
                    return
            # Keep draining / resume whatever the processor was doing.
            if proc.state in _DRAINABLE:
                self._try_drain(proc)
            if proc.state == _STALL_SEND or proc.state == _WAIT_GAP:
                self._schedule_activation(rank, max(now, proc.busy_until))

        return fire

    def _mailbox_take(
        self, proc: _Proc, tag: Hashable
    ) -> ReceivedMessage | None:
        if tag is None:
            return proc.mailbox.popleft() if proc.mailbox else None
        for i, m in enumerate(proc.mailbox):
            if m.tag == tag:
                del proc.mailbox[i]
                return m
        return None

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------

    def _release_barrier(self) -> None:
        release = self._engine.now + self.hw_barrier_cost
        waiting = self._barrier_waiting
        self._barrier_waiting = []
        self._barrier_generation += 1
        for rank in waiting:
            proc = self._procs[rank]

            def make(r: int = rank, p: _Proc = proc) -> Callable[[], None]:
                def fire() -> None:
                    if p.state == _WAIT_BARRIER:
                        p.state = _RUNNING
                        p.resume = None
                        self._activate(r)

                return fire

            self._engine.schedule(max(release, proc.busy_until), make())

    # ------------------------------------------------------------------

    def _record(
        self, rank: int, start: float, end: float, kind: Activity, detail: str
    ) -> None:
        if self._schedule is not None:
            self._schedule.add_interval(rank, start, end, kind, detail)

    def _check_completion(self) -> None:
        blocked = [
            (p.rank, p.state)
            for p in self._procs
            if p.state != _DONE
        ]
        if blocked:
            detail = ", ".join(f"P{r}:{s}" for r, s in blocked[:8])
            raise SimulationError(
                f"deadlock: {len(blocked)} processor(s) never finished "
                f"({detail}{'...' if len(blocked) > 8 else ''}). "
                "Check for unmatched Recv/Send or mismatched barriers."
            )
        undelivered = [
            p.rank for p in self._procs if p.arrived or p.mailbox
        ]
        # Leftover mailbox contents are permitted (programs may ignore
        # messages), but messages that never completed reception mean the
        # run ended mid-flight — impossible once all programs are DONE,
        # since DONE processors drain.  Guard anyway.
        for p in self._procs:
            if p.arrived:
                raise SimulationError(
                    f"processor {p.rank} ended with {len(p.arrived)} "
                    "unreceived message(s)"
                )
        del undelivered


def run_programs(
    params: LogPParams,
    programs: Iterable[Program] | ProgramFactory,
    **machine_kwargs: Any,
) -> MachineResult:
    """One-call convenience: build a :class:`LogPMachine` and run it."""
    return LogPMachine(params, **machine_kwargs).run(programs)
