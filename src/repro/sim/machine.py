"""The simulated LogP machine.

:class:`LogPMachine` executes one program (a generator, see
:mod:`repro.sim.program`) per processor and enforces the model's
semantics from Section 3 of the paper:

* each send and each receive engages the processor for ``o`` cycles;
* consecutive sends at one processor start at least ``max(g, o)`` apart,
  and likewise consecutive receives (the gap ``g`` in both directions);
* at most ``ceil(L/g)`` messages may be *in transit* from any processor
  or to any processor; a transmission that would exceed either limit
  stalls the sender until a slot frees (the capacity constraint);
* message flight time is drawn from a :class:`~repro.sim.latency.LatencyModel`
  (exactly ``L`` by default; random ``<= L`` to exercise asynchrony and
  out-of-order delivery);
* processors are engaged during ``Compute`` and cannot service messages;
  while idle, sleeping, stalled or waiting they *drain* arrived messages
  (paying ``o`` per message, respecting the receive gap) — this is what
  lets a stalled sender's destination keep accepting one message per
  ``g`` cycles, the behaviour the paper's naive-FFT-schedule analysis
  describes ("one will send to processor 0 every g cycles").

Capacity accounting — the reading under which the model is
self-consistent: a message is *in transit from its source* between
injection (``send_start + o``) and arrival, so a sender pacing itself at
``g`` keeps at most ``L/g <= ceil(L/g)`` of its own messages in flight
and never self-stalls; it is *in transit to its destination* between
injection and the start of the destination's reception, so a flooded
destination — which drains at most one message per ``g`` — back-pressures
its senders, exactly the "all but L/g processors will stall on the first
send" dynamics of Section 4.1.2.  The capacity check happens at the
moment of injection ("if a processor attempts to transmit a message that
would exceed this limit, it stalls until the message can be sent"): the
send overhead is paid first, then the message waits at the interface —
with the processor stalled but able to service incoming messages — until
the network accepts it.

Stalled senders are tracked in an explicit *wait-graph*: each parked
sender records the full set of capacity slots its injection needs (its
own outbound slot, the destination's inbound slot, or both), and every
slot release scans the waiters of that slot in FIFO order, admitting
every sender whose complete constraint set is satisfiable at release
time.  Admission is a *re-examination*, not a reservation — the admitted
sender re-checks the constraint when its activation fires and re-parks
(keeping its queue position) if another injection took the slot first.
This closes the lost-wakeup hazard of a head-of-queue waiter that is
also blocked on its own outbound capacity: the freed destination slot
flows past it to the first waiter that can actually use it, and the
skipped waiter is woken later by whichever of its slots frees last.
Every park and every wakeup verdict is emitted on a structured event
feed (:class:`~repro.sim.trace.StallEvent` /
:class:`~repro.sim.trace.WakeupEvent`) so stall causality is observable.

Hot-path design (see the "Performance" section of DESIGN.md): every
event is a *bound method plus payload* scheduled directly on the engine
(``engine.schedule(t, self._on_arrival, msg)``), never a per-event
closure; processor activations are deduplicated through a per-processor
``{time: event-id}`` map and *lazily deleted* via :meth:`Engine.cancel`
when a reception or computation supersedes them, so stale wakeups die in
the event queue instead of being re-examined inside :meth:`_activate`;
and the dominant send→inject→arrival→recv-done chain skips all trace
bookkeeping (interval records, stall feed, per-message detail strings)
when ``trace=False``.  Program actions are matched by exact type — the
action vocabulary of :mod:`repro.sim.program` is closed.

The run produces a :class:`~repro.core.schedule.Schedule` trace that the
semantic validator (:mod:`repro.sim.validate`) and the figure benchmarks
consume.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Hashable, Iterable

from ..core.params import LogPParams
from ..core.schedule import Activity, MessageRecord, Schedule
from .engine import Engine, SimulationError
from .latency import FixedLatency, LatencyModel
from .net.fabric import Fabric, FabricReport, LatencyFabric
from .trace import (
    NetStallEvent,
    StallEvent,
    StallReport,
    WakeupEvent,
    stall_report,
)
from .program import (
    Barrier,
    Compute,
    Now,
    Poll,
    ProgramResult,
    ReceivedMessage,
    Recv,
    Send,
    Sleep,
)

__all__ = ["LogPMachine", "MachineResult", "run_programs"]

Program = Generator[Any, Any, Any]
ProgramFactory = Callable[[int, int], Program]

# Processor states
_RUNNING = "running"
_BUSY = "busy"
_WAIT_GAP = "wait_gap"
_STALL_SEND = "stall_send"
_WAIT_RECV = "wait_recv"
_WAIT_BARRIER = "wait_barrier"
_SLEEPING = "sleeping"
_POLLING = "polling"
_DONE = "done"

_DRAINABLE = frozenset(
    {
        _WAIT_GAP,
        _STALL_SEND,
        _WAIT_RECV,
        _WAIT_BARRIER,
        _SLEEPING,
        _POLLING,
        _DONE,
    }
)


@dataclass(slots=True)
class _Msg:
    seq: int
    src: int
    dst: int
    payload: Any
    tag: Hashable
    send_start: float
    inject: float
    arrive: float
    words: int = 1
    # Queueing excess inside the network fabric (ContentionFabric);
    # 0.0 on uncontended fabrics.
    net_stall: float = 0.0


class _Proc:
    """Per-processor simulator state."""

    __slots__ = (
        "rank",
        "gen",
        "state",
        "pending",
        "resume",
        "busy_until",
        "last_send_start",
        "last_recv_start",
        "last_activity",
        "mailbox",
        "arrived",
        "stall_started",
        "result",
        "pending_activations",
        "poll_drained",
        "pending_inject",
        "needs_src",
        "needs_dst",
        "queued_on",
        "port_free",
    )

    def __init__(self, rank: int, gen: Program) -> None:
        self.rank = rank
        self.gen = gen
        self.state = _RUNNING
        self.pending: Any = None
        self.resume: Any = None
        self.busy_until = 0.0
        self.last_send_start = -math.inf
        self.last_recv_start = -math.inf
        # End of the latest recorded activity interval; gives untraced
        # runs the same makespan a full Schedule would report.
        self.last_activity = 0.0
        self.mailbox: deque[ReceivedMessage] = deque()
        self.arrived: deque[_Msg] = deque()
        self.stall_started: float | None = None
        self.result = ProgramResult(rank=rank)
        # time -> engine event id of every not-yet-fired activation, so
        # duplicate same-time activations are suppressed regardless of
        # the order wake conditions fire in, and superseded activations
        # can be lazily cancelled in the event queue.
        self.pending_activations: dict[float, int] = {}
        self.poll_drained = 0
        # A committed message (send overhead already paid) waiting for
        # the network to accept it under the capacity constraint.
        self.pending_inject: "_Msg | None" = None
        # Wait-graph node: which capacity slots the parked injection
        # needs (refreshed on every failed attempt), and the destination
        # whose FIFO waiter list currently holds this processor.
        self.needs_src = False
        self.needs_dst = False
        self.queued_on: int | None = None
        # When this processor's network port finishes streaming the
        # current long message (LogGP extension); 1-word messages leave
        # the port free immediately.
        self.port_free = 0.0


@dataclass(slots=True)
class MachineResult:
    """Everything a run produces."""

    params: LogPParams
    makespan: float
    results: list[ProgramResult]
    schedule: Schedule | None
    total_messages: int
    total_stall_time: float
    events_run: int
    traced: bool = True
    fabric: Fabric | None = None
    stall_events: list[StallEvent | WakeupEvent | NetStallEvent] = field(
        default_factory=list
    )
    extras: dict[str, Any] = field(default_factory=dict)

    def value(self, rank: int) -> Any:
        """Final return value of processor ``rank``'s program."""
        return self.results[rank].value

    def values(self) -> list[Any]:
        return [r.value for r in self.results]

    def stall_report(self) -> StallReport:
        """Condense the stall/wakeup event feed.

        Raises:
            ValueError: if the run was untraced — the machine does not
                collect the stall/wakeup feed with ``trace=False``, so a
                report would be silently (and misleadingly) empty.
        """
        if not self.traced:
            raise ValueError(
                "stall_report() requires a traced run: the stall/wakeup "
                "event feed is not collected with trace=False. Re-run "
                "the machine with trace=True."
            )
        return stall_report(self.stall_events)

    def fabric_report(self) -> FabricReport:
        """Network-side traffic summary of the run (per-link utilization,
        queue-depth high-water marks, total NetStall excess).

        Raises:
            ValueError: if the run was untraced — fabric observability
                is trace-gated so the untraced hot path stays fast.
        """
        if not self.traced:
            raise ValueError(
                "fabric_report() requires a traced run: fabric "
                "statistics are trace-gated. Re-run the machine with "
                "trace=True."
            )
        assert self.fabric is not None
        return self.fabric.report()


class LogPMachine:
    """A simulated LogP machine.

    Args:
        params: the four LogP parameters.
        latency: network flight-time model; defaults to the deterministic
            ``FixedLatency(params.L)`` the paper's analyses assume.
            Mutually exclusive with ``fabric`` (a plain latency model is
            run as a :class:`~repro.sim.net.LatencyFabric`).
        fabric: network fabric the machine delegates transport to (see
            :mod:`repro.sim.net`).  The fabric's unloaded bound must not
            exceed ``params.L``.  A *lossy* fabric
            (:class:`~repro.sim.net.FaultyFabric`) activates the
            sender-side timeout-and-retry protocol: deliveries are
            acknowledged over a reliable control channel (ack flight =
            the fabric bound), unacked messages are retransmitted every
            ``retry_timeout`` cycles up to ``max_retries`` times, and
            duplicate copies are discarded at the receiving network
            interface — programs observe exactly-once delivery.  Lossy
            runs disable the capacity constraint (retransmissions live
            below the model's capacity accounting).
        retry_timeout: cycles a lossy-fabric sender waits for an ack
            before retransmitting (default ``2*bound + ack + 2o + 1``,
            just past the worst-case uncontended round trip).
        max_retries: retransmissions before a lossy run fails with
            :class:`SimulationError`.
        enforce_capacity: apply the ``ceil(L/g)`` constraint (disable for
            the capacity ablation).  Slots are held per the module
            docstring: source slots over [inject, arrive), destination
            slots over [inject, recv_start), checked at injection.
        capacity: override the in-flight limit (default ``params.capacity``).
        hw_barrier_cost: cycles a hardware ``Barrier`` costs after the
            last processor arrives (CM-5 control network, Section 5.5).
        compute_jitter: optional ``f(rank, cycles) -> actual_cycles``
            applied to every ``Compute`` — models the processor drift of
            Section 4.1.4 / Figure 8.
        trace: record a full :class:`Schedule` (intervals + message
            records) and the stall/wakeup event feed.  Turn off for
            large runs; summary statistics are kept either way.
        max_events: event budget passed to the engine.
    """

    def __init__(
        self,
        params: LogPParams,
        *,
        latency: LatencyModel | None = None,
        fabric: Fabric | None = None,
        retry_timeout: float | None = None,
        max_retries: int = 8,
        enforce_capacity: bool = True,
        capacity: int | None = None,
        hw_barrier_cost: float = 0.0,
        compute_jitter: Callable[[int, float], float] | None = None,
        trace: bool = True,
        max_events: int = 50_000_000,
    ) -> None:
        if hw_barrier_cost < 0:
            raise ValueError(f"hw_barrier_cost must be >= 0, got {hw_barrier_cost}")
        self.params = params
        if fabric is None:
            model = latency if latency is not None else FixedLatency(params.L)
            if model.L > params.L + 1e-12:
                raise ValueError(
                    f"latency model bound {model.L} exceeds L={params.L}"
                )
            self.latency = model
            self.fabric: Fabric = LatencyFabric(model)
        else:
            if latency is not None:
                raise ValueError(
                    "give latency or fabric, not both (a plain latency "
                    "model is run as a LatencyFabric)"
                )
            if fabric.bound > params.L + 1e-12:
                raise ValueError(
                    f"fabric unloaded bound {fabric.bound} exceeds "
                    f"L={params.L}"
                )
            self.fabric = fabric
            self.latency = (
                fabric.model if isinstance(fabric, LatencyFabric) else None
            )
        if retry_timeout is not None and retry_timeout <= 0:
            raise ValueError(f"retry_timeout must be > 0, got {retry_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.retry_timeout = retry_timeout
        self.max_retries = max_retries
        self.enforce_capacity = enforce_capacity
        self._enforce = enforce_capacity
        self.capacity = params.capacity if capacity is None else capacity
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        self.hw_barrier_cost = hw_barrier_cost
        self.compute_jitter = compute_jitter
        self.trace = trace
        self.max_events = max_events
        # Long-message Gap (Section 5.4 extension), present when the
        # machine is built from LogGPParams.
        self._G: float | None = getattr(params, "G", None)
        # Hot-loop copies of the model constants (plain float attribute
        # loads instead of property calls on LogPParams).
        self._o = float(params.o)
        self._g = float(params.g)
        self._send_interval = float(params.send_interval)
        self._P = params.P

    # ------------------------------------------------------------------

    def run(self, programs: Iterable[Program] | ProgramFactory) -> MachineResult:
        """Execute one program per processor and return the result.

        ``programs`` is either a sequence of exactly ``P`` generators or
        a factory called as ``factory(rank, P)``.
        """
        P = self.params.P
        if callable(programs):
            gens = [programs(r, P) for r in range(P)]
        else:
            gens = list(programs)
            if len(gens) != P:
                raise ValueError(
                    f"expected {P} programs, got {len(gens)}"
                )

        self._engine = Engine(max_events=self.max_events)
        self._procs = [_Proc(r, g) for r, g in enumerate(gens)]
        self._schedule = Schedule(self.params) if self.trace else None
        self._inflight_from = [0] * P
        self._inflight_to = [0] * P
        # Wait-graph: FIFO waiter list per destination inbound slot.  A
        # parked sender sits in exactly one list (its message's dst) and
        # additionally records, on its _Proc, whether it also needs its
        # own outbound slot; releases of either slot re-examine it.
        self._stall_queue: list[deque[int]] = [deque() for _ in range(P)]
        # Structured stall/wakeup causality feed (traced runs only —
        # unbounded per-wakeup records are too heavy for large untraced
        # sweeps).
        self._stall_feed: list[StallEvent | WakeupEvent | NetStallEvent] = []
        self._barrier_waiting: list[int] = []
        self._barrier_generation = 0
        self._msg_seq = 0
        self._total_messages = 0
        fab = self.fabric
        fab.reset()
        fab.attach(self._engine, P, self.trace)
        self._submit = fab.submit
        self._lossy = fab.lossy
        self._enforce = self.enforce_capacity and not self._lossy
        # Exactly-FixedLatency flight through the transparent wrapper is
        # a constant; inline it instead of paying a call per injection.
        self._fixed_L = (
            fab.model.L
            if type(fab) is LatencyFabric and type(fab.model) is FixedLatency
            else None
        )
        if self._lossy:
            # Sender-side ARQ state: seq -> in-flight message awaiting
            # ack, receiver-side delivered-seq dedup filter, fault
            # bookkeeping surfaced in MachineResult.extras.
            self._awaiting_ack: dict[int, _Msg] = {}
            self._delivered_seqs: set[int] = set()
            self._net_faults = {"retries": 0, "duplicates_suppressed": 0}
            self._ack_latency = fab.bound
            self._retry_timeout = (
                self.retry_timeout
                if self.retry_timeout is not None
                else 2 * fab.bound + self._ack_latency + 2 * self._o + 1.0
            )

        for proc in self._procs:
            self._schedule_activation(proc, 0.0)

        self._engine.run()
        self._check_completion()
        if self.trace and type(fab) is LatencyFabric and self._fixed_L is not None:
            # The inlined FixedLatency fast path bypasses fab.submit();
            # backfill its message count so fabric_report() stays honest.
            fab._messages = self._total_messages

        makespan = max(
            max(p.result.finished_at, p.last_activity) for p in self._procs
        )
        if self._schedule is not None:
            self._schedule.sort_all()
            makespan = max(makespan, self._schedule.makespan)
        total_stall = sum(p.result.stall_time for p in self._procs)
        return MachineResult(
            params=self.params,
            makespan=makespan,
            results=[p.result for p in self._procs],
            schedule=self._schedule,
            total_messages=self._total_messages,
            total_stall_time=total_stall,
            events_run=self._engine.events_run,
            traced=self.trace,
            stall_events=self._stall_feed,
            fabric=self.fabric,
            extras=(
                {"net_faults": {**self._net_faults, **fab.fault_counts}}
                if self._lossy
                else {}
            ),
        )

    # ------------------------------------------------------------------
    # Activation: advance a processor as far as it can go right now.
    # ------------------------------------------------------------------

    def _on_activation(self, proc: _Proc, time: float) -> None:
        proc.pending_activations.pop(time, None)
        self._activate(proc)

    def _schedule_activation(self, proc: _Proc, time: float) -> None:
        pending = proc.pending_activations
        # Suppress duplicate same-time activations (common when several
        # wake conditions fire together).  The full map of pending times
        # is kept — a single "last scheduled" slot forgets the earlier
        # suppression as soon as a different time is scheduled, letting
        # duplicates through when wake conditions interleave.
        if time not in pending:
            pending[time] = self._engine.schedule(
                time, self._on_activation, proc, time
            )

    def _supersede_activations(self, proc: _Proc, until: float) -> None:
        """Lazily delete pending activations strictly before ``until``.

        Call only when the processor is engaged through ``until`` *and*
        a wakeup at (or after) ``until`` is independently guaranteed —
        a reception's recv-done event or a computation's end activation.
        Every cancelled activation would have fired, observed
        ``now < busy_until``, rescheduled itself at ``busy_until`` and
        returned; cancelling it in the event queue skips that dispatch
        entirely (lazy deletion at pop time).
        """
        pending = proc.pending_activations
        if pending:
            cancel = self._engine.cancel
            for t in [t for t in pending if t < until]:
                cancel(pending.pop(t))

    def _activate(self, proc: _Proc) -> None:
        engine = self._engine
        now = engine.now
        rank = proc.rank

        while True:
            state = proc.state
            if state == _DONE:
                # A finished program may still have its last message
                # parked at the network interface (the generator is
                # advanced eagerly at send commit, before injection).
                if proc.pending_inject is not None:
                    self._try_inject(proc)
                if proc.arrived:
                    self._try_drain(proc)
                return
            if now < proc.busy_until:
                self._schedule_activation(proc, proc.busy_until)
                return
            if state == _SLEEPING or state == _WAIT_BARRIER:
                # Woken early (e.g. by an arrival) or a spurious wake
                # while parked at a barrier: drain, stay put.
                if proc.arrived:
                    self._try_drain(proc)
                return

            if proc.pending_inject is not None:
                # A committed message is waiting at the network interface;
                # the processor may not proceed (but can service arrivals
                # while stalled).
                if self._try_inject(proc):
                    proc.state = _RUNNING
                    continue
                proc.state = _STALL_SEND
                if proc.arrived:
                    self._try_drain(proc)
                return

            act = proc.pending
            if act is None:
                try:
                    act = proc.pending = proc.gen.send(proc.resume)
                except StopIteration as stop:
                    proc.state = _DONE
                    proc.result.value = stop.value
                    proc.result.finished_at = now
                    if proc.arrived:
                        self._try_drain(proc)
                    return
                proc.resume = None
                if act.__class__ is Poll:
                    proc.poll_drained = 0

            cls = act.__class__

            if cls is Send:
                earliest = proc.last_send_start + self._send_interval
                if earliest < proc.port_free:
                    earliest = proc.port_free
                if earliest > now:
                    proc.state = _WAIT_GAP
                    pending = proc.pending_activations
                    if earliest not in pending:
                        pending[earliest] = engine.schedule(
                            earliest, self._on_activation, proc, earliest
                        )
                    if proc.arrived:
                        self._try_drain(proc)
                    return
                # Commit: validate (once per message — a gap-blocked
                # send is re-dispatched here), pay the overhead, and
                # park the message at the network interface until the
                # injection event at the send's end hands it to the
                # network (usually immediately — see _try_inject).
                dst = act.dst
                if dst == rank or not 0 <= dst < self._P:
                    if dst == rank:
                        raise SimulationError(
                            f"processor {rank} attempted to send to itself"
                        )
                    raise SimulationError(
                        f"processor {rank} sent to invalid destination {dst}"
                    )
                words = act.words
                if words > 1 and self._G is None:
                    raise SimulationError(
                        f"processor {rank} sent a {words}-word message "
                        "but the machine has no long-message Gap; build "
                        "it with LogGPParams (core.loggp) to use the "
                        "Section 5.4 extension"
                    )
                end = now + self._o
                proc.pending_inject = _Msg(
                    self._msg_seq, rank, dst, act.payload, act.tag,
                    now, -1.0, -1.0, words,
                )
                self._msg_seq += 1
                self._total_messages += 1
                proc.last_send_start = now
                proc.result.sends += 1
                proc.busy_until = end
                if proc.last_activity < end:
                    proc.last_activity = end
                if self._schedule is not None:
                    self._schedule.add_interval(
                        rank, now, end, Activity.SEND, f"->{dst}"
                    )
                engine.schedule(end, self._on_inject, proc)
                # Eager generator advance: a send's resume value is
                # None, and the fetched action is *dispatched* (not
                # executed) by the injection event at the send's end,
                # so fetching it now replaces the generic busy-end
                # activation (with its dedup-map bookkeeping and
                # generator resume) with the slim _on_inject event.
                # The processor stays _RUNNING — not drainable — for
                # the busy window, exactly as before.
                proc.state = _RUNNING
                try:
                    proc.pending = act = proc.gen.send(None)
                except StopIteration as stop:
                    proc.pending = None
                    proc.state = _DONE
                    proc.result.value = stop.value
                    proc.result.finished_at = end
                    return
                proc.resume = None
                if act.__class__ is Poll:
                    proc.poll_drained = 0
                return

            if cls is Recv:
                mailbox = proc.mailbox
                if act.tag is None:
                    msg = mailbox.popleft() if mailbox else None
                else:
                    msg = self._mailbox_take(proc, act.tag)
                if msg is not None:
                    proc.resume = msg
                    proc.pending = None
                    proc.state = _RUNNING
                    continue
                proc.state = _WAIT_RECV
                if proc.arrived:
                    self._try_drain(proc)
                return

            if cls is Compute:
                cycles = act.cycles
                if self.compute_jitter is not None:
                    cycles = self.compute_jitter(rank, cycles)
                    if cycles < 0:
                        raise SimulationError(
                            f"compute_jitter returned negative cycles {cycles}"
                        )
                end = now + cycles
                proc.busy_until = end
                self._record(proc, now, end, Activity.COMPUTE, act.label)
                proc.pending = None
                proc.state = _RUNNING
                if cycles > 0:
                    # The end-of-compute activation below is the
                    # guaranteed wakeup; anything earlier is stale.
                    if proc.pending_activations:
                        self._supersede_activations(proc, end)
                    self._schedule_activation(proc, end)
                    return
                continue

            if cls is Now:
                proc.resume = now
                proc.pending = None
                continue

            if cls is Sleep:
                proc.state = _SLEEPING
                wake = now + act.cycles
                proc.pending = None
                engine.schedule(wake, self._on_wake, proc, wake)
                if proc.arrived:
                    self._try_drain(proc)
                return

            if cls is Poll:
                can = bool(proc.arrived) and (
                    now >= proc.last_recv_start + self._g
                )
                if can:
                    proc.state = _POLLING
                    self._try_drain(proc)
                    return
                proc.resume = proc.poll_drained
                proc.pending = None
                proc.state = _RUNNING
                continue

            if cls is Barrier:
                proc.pending = None
                proc.state = _WAIT_BARRIER
                self._barrier_waiting.append(rank)
                if len(self._barrier_waiting) == self._P:
                    self._release_barrier()
                elif proc.arrived:
                    self._try_drain(proc)
                return

            raise SimulationError(
                f"processor {rank} yielded unknown action {act!r} "
                "(actions are matched by exact type; see repro.sim.program)"
            )

    def _on_wake(self, proc: _Proc, wake: float) -> None:
        if proc.state == _SLEEPING and self._engine.now >= wake:
            # The sleep may have been extended by a drain reception.
            if self._engine.now < proc.busy_until:
                self._engine.schedule(proc.busy_until, self._on_wake, proc, wake)
                return
            proc.state = _RUNNING
            self._activate(proc)

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------

    def _on_inject(self, proc: _Proc) -> None:
        """Injection event at a committed send's end (``send_start + o``).

        Scheduled at commit time, so at any instant it precedes the
        activations that wake conditions schedule later — the message is
        on the network (or parked) before the processor's next action
        dispatches.
        """
        if proc.pending_inject is None:
            # Already injected through a stall-retry activation.
            return
        if self._try_inject(proc):
            # Dispatch the eagerly fetched next action (or drain, for a
            # finished program) — the same inject -> dispatch -> drain
            # order the busy-end activation used to follow.
            self._activate(proc)
            return
        if proc.state is not _DONE:
            proc.state = _STALL_SEND
        if proc.arrived:
            self._try_drain(proc)

    def _try_inject(self, proc: _Proc) -> bool:
        """Attempt to hand the committed message to the network now.

        Returns True on success.  On failure the sender is parked in the
        wait-graph; it is re-activated whenever a relevant capacity slot
        frees.
        """
        msg = proc.pending_inject
        now = self._engine.now
        rank = msg.src
        dst = msg.dst
        if self._enforce:
            needs_src = self._inflight_from[rank] >= self.capacity
            needs_dst = self._inflight_to[dst] >= self.capacity
            if needs_src or needs_dst:
                self._park(proc, dst, needs_src, needs_dst)
                return False

        if proc.stall_started is not None:
            proc.result.stall_time += now - proc.stall_started
            if now > proc.last_activity:
                proc.last_activity = now
            if self._schedule is not None:
                self._schedule.add_interval(
                    rank, proc.stall_started, now, Activity.STALL, f"->{dst}"
                )
            proc.stall_started = None
        if proc.queued_on is not None:
            self._stall_queue[proc.queued_on].remove(rank)
            proc.queued_on = None
            proc.needs_src = proc.needs_dst = False

        msg.inject = now
        if self._lossy:
            # Unreliable fabric: delivery goes through the ARQ protocol
            # and bypasses the capacity counters (lossy runs disable the
            # capacity constraint; see __init__ docs).
            if msg.words > 1:
                stream = (msg.words - 1) * (self._G or 0.0)
                if stream > 0:
                    proc.port_free = now + stream
            self._inject_lossy(msg, now)
            proc.pending_inject = None
            return True
        fixed = self._fixed_L
        if msg.words > 1:
            stream = (msg.words - 1) * (self._G or 0.0)
            if fixed is not None:
                msg.arrive = now + stream + fixed
            else:
                arrive, net_stall = self._submit(rank, dst, now)
                msg.arrive = arrive + stream
                if net_stall > 0.0:
                    msg.net_stall = net_stall
                    if self.trace:
                        self._stall_feed.append(
                            NetStallEvent(now, rank, dst, net_stall)
                        )
            if stream > 0:
                # The network port streams the tail of the long message;
                # the processor itself is already free (DMA overlap).
                proc.port_free = now + stream
        elif fixed is not None:
            msg.arrive = now + fixed
        else:
            arrive, net_stall = self._submit(rank, dst, now)
            msg.arrive = arrive
            if net_stall > 0.0:
                msg.net_stall = net_stall
                if self.trace:
                    self._stall_feed.append(
                        NetStallEvent(now, rank, dst, net_stall)
                    )
        self._inflight_from[rank] += 1
        self._inflight_to[dst] += 1
        proc.pending_inject = None
        self._engine.schedule(msg.arrive, self._on_arrival, msg)
        return True

    # ------------------------------------------------------------------
    # Lossy-fabric ARQ: timeout-and-retry with receiver-side dedup
    # ------------------------------------------------------------------

    def _inject_lossy(self, msg: _Msg, now: float) -> None:
        """Submit one copy over the lossy fabric and arm the retry timer."""
        outcome = self.fabric.submit_lossy(msg.src, msg.dst, now)
        if outcome.net_stall > 0.0:
            msg.net_stall = outcome.net_stall
            if self.trace:
                self._stall_feed.append(
                    NetStallEvent(now, msg.src, msg.dst, outcome.net_stall)
                )
        stream = (msg.words - 1) * (self._G or 0.0)
        for arrive in outcome.deliveries:
            self._engine.schedule(
                arrive + stream, self._on_lossy_arrival, msg
            )
        self._awaiting_ack[msg.seq] = msg
        self._engine.schedule(
            now + self._retry_timeout, self._on_retry, msg, 1
        )

    def _on_lossy_arrival(self, msg: _Msg) -> None:
        seq = msg.seq
        if seq in self._delivered_seqs:
            # Duplicate copy (fabric duplication or a retransmission
            # racing a late original): the interface discards it.
            self._net_faults["duplicates_suppressed"] += 1
            return
        self._delivered_seqs.add(seq)
        now = self._engine.now
        msg.arrive = now
        # Ack flows back over the reliable control channel.
        self._engine.schedule(now + self._ack_latency, self._on_ack, seq)
        dst = self._procs[msg.dst]
        dst.arrived.append(msg)
        if dst.state in _DRAINABLE:
            if now >= dst.busy_until:
                self._try_drain(dst)
            else:
                self._schedule_activation(dst, dst.busy_until)

    def _on_ack(self, seq: int) -> None:
        self._awaiting_ack.pop(seq, None)

    def _on_retry(self, msg: _Msg, attempt: int) -> None:
        if msg.seq not in self._awaiting_ack:
            return
        if attempt > self.max_retries:
            raise SimulationError(
                f"message {msg.src}->{msg.dst} (seq {msg.seq}) unacked "
                f"after {self.max_retries} retransmissions"
            )
        self._net_faults["retries"] += 1
        now = self._engine.now
        outcome = self.fabric.submit_lossy(msg.src, msg.dst, now)
        stream = (msg.words - 1) * (self._G or 0.0)
        for arrive in outcome.deliveries:
            self._engine.schedule(
                arrive + stream, self._on_lossy_arrival, msg
            )
        self._engine.schedule(
            now + self._retry_timeout, self._on_retry, msg, attempt + 1
        )

    # ------------------------------------------------------------------
    # Wait-graph: parked senders and slot releases
    # ------------------------------------------------------------------

    def _park(
        self, proc: _Proc, dst: int, needs_src: bool, needs_dst: bool
    ) -> None:
        """Record a failed injection in the wait-graph.

        The sender keeps its FIFO position across repeated failures; the
        recorded constraint set is refreshed each attempt (a waiter woken
        for a freed destination slot may find its own outbound slot
        newly exhausted, and vice versa).
        """
        now = self._engine.now
        proc.needs_src = needs_src
        proc.needs_dst = needs_dst
        if proc.stall_started is None:
            proc.stall_started = now
            if self.trace:
                self._stall_feed.append(
                    StallEvent(now, proc.rank, dst, needs_src, needs_dst)
                )
        if proc.queued_on is None:
            proc.queued_on = dst
            self._stall_queue[dst].append(proc.rank)

    def _admissible(self, rank: int, dst: int) -> bool:
        """Is a parked ``rank -> dst`` injection satisfiable right now?"""
        return (
            self._inflight_from[rank] < self.capacity
            and self._inflight_to[dst] < self.capacity
        )

    def _release_src_slot(self, src: int) -> None:
        """An outbound slot of ``src`` freed (one of its messages
        arrived).  The only possible waiter is ``src`` itself — wake it
        if its *entire* constraint set is now satisfiable."""
        proc = self._procs[src]
        if proc.stall_started is None or proc.pending_inject is None:
            return
        dst = proc.pending_inject.dst
        admitted = self._admissible(src, dst)
        if self.trace:
            self._stall_feed.append(
                WakeupEvent(self._engine.now, src, dst, "src", src, admitted)
            )
        if admitted:
            self._schedule_activation(
                proc, max(self._engine.now, proc.busy_until)
            )

    def _release_dst_slot(self, dst: int) -> None:
        """An inbound slot of ``dst`` freed (it began a reception).

        Scan the destination's waiter list in FIFO order and admit every
        sender whose full constraint set is satisfiable, debiting the
        freed capacity as we go.  A head-of-queue waiter that is still
        blocked on its own outbound slot is skipped — not returned to —
        so the slot flows to the first sender that can actually use it
        (the lost-wakeup hazard this wait-graph exists to close).
        """
        queue = self._stall_queue[dst]
        if not queue:
            return
        now = self._engine.now
        budget = self.capacity - self._inflight_to[dst]
        trace = self.trace
        for rank in queue:
            if budget <= 0:
                break
            admitted = self._inflight_from[rank] < self.capacity
            if trace:
                self._stall_feed.append(
                    WakeupEvent(now, rank, dst, "dst", dst, admitted)
                )
            if admitted:
                budget -= 1
                waiter = self._procs[rank]
                self._schedule_activation(waiter, max(now, waiter.busy_until))

    def _on_arrival(self, msg: _Msg) -> None:
        # The source's slot frees at arrival.
        src = msg.src
        self._inflight_from[src] -= 1
        src_proc = self._procs[src]
        if src_proc.stall_started is not None:
            self._release_src_slot(src)
        dst = self._procs[msg.dst]
        dst.arrived.append(msg)
        if dst.state in _DRAINABLE:
            if self._engine.now >= dst.busy_until:
                self._try_drain(dst)
            else:
                self._schedule_activation(dst, dst.busy_until)

    # ------------------------------------------------------------------
    # Receive path (drain)
    # ------------------------------------------------------------------

    def _try_drain(self, proc: _Proc) -> None:
        """Service one arrived message if the processor is in a state that
        allows reception and the receive gap permits it now."""
        if not proc.arrived or proc.state not in _DRAINABLE:
            return
        now = self._engine.now
        if now < proc.busy_until:
            self._schedule_activation(proc, proc.busy_until)
            return
        if proc.pending_inject is not None and proc.stall_started is None:
            # A committed message's injection event is due this very
            # instant (it fires at busy-end); injection and the action
            # dispatch behind it go first, and they re-attempt the
            # drain themselves.  Draining here would let an arrival
            # that happens to sort earlier in the event queue overtake
            # the send.
            return
        earliest = proc.last_recv_start + self._g
        if earliest > now:
            self._schedule_activation(proc, earliest)
            return

        msg = proc.arrived.popleft()
        end = now + self._o
        rank = proc.rank
        proc.last_recv_start = now
        proc.busy_until = end
        proc.result.receives += 1
        if proc.last_activity < end:
            proc.last_activity = end
        if self._schedule is not None:
            self._schedule.add_interval(
                rank, now, end, Activity.RECV, f"<-{msg.src}"
            )
        # The recv-done event below is the guaranteed wakeup at
        # busy_until; any activation pending before it is stale.
        if proc.pending_activations:
            self._supersede_activations(proc, end)
        # The destination's slot frees when reception begins.
        self._inflight_to[rank] -= 1
        if self._stall_queue[rank]:
            self._release_dst_slot(rank)
        self._engine.schedule(end, self._on_recv_done, proc, msg, now)

    def _on_recv_done(self, proc: _Proc, msg: _Msg, recv_start: float) -> None:
        now = self._engine.now
        rm = ReceivedMessage(msg.src, msg.payload, msg.tag, msg.send_start, now)
        if self._schedule is not None:
            self._schedule.add_message(
                MessageRecord(
                    src=msg.src,
                    dst=msg.dst,
                    send_start=msg.send_start,
                    inject=msg.inject,
                    arrive=msg.arrive,
                    recv_start=recv_start,
                    recv_end=now,
                    tag="" if msg.tag is None else str(msg.tag),
                    words=msg.words,
                    net_stall=msg.net_stall,
                )
            )
        state = proc.state
        if state == _WAIT_RECV and not proc.mailbox:
            tag = proc.pending.tag
            if tag is None or tag == rm.tag:
                # Direct delivery: the blocked Recv takes the message
                # just received without a mailbox round-trip.
                proc.resume = rm
                proc.pending = None
                proc.state = _RUNNING
                self._activate(proc)
                return
        proc.mailbox.append(rm)
        if state == _POLLING:
            proc.poll_drained += 1
            # Continue only if another reception can start right now;
            # Poll never waits.
            self._activate(proc)
            return
        if state == _WAIT_RECV:
            taken = self._mailbox_take(proc, proc.pending.tag)
            if taken is not None:
                proc.resume = taken
                proc.pending = None
                proc.state = _RUNNING
                self._activate(proc)
                return
        # Keep draining / resume whatever the processor was doing.
        if proc.arrived and proc.state in _DRAINABLE:
            self._try_drain(proc)
        if proc.state == _STALL_SEND or proc.state == _WAIT_GAP:
            self._schedule_activation(proc, max(now, proc.busy_until))

    def _mailbox_take(
        self, proc: _Proc, tag: Hashable
    ) -> ReceivedMessage | None:
        if tag is None:
            return proc.mailbox.popleft() if proc.mailbox else None
        for i, m in enumerate(proc.mailbox):
            if m.tag == tag:
                del proc.mailbox[i]
                return m
        return None

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------

    def _release_barrier(self) -> None:
        release = self._engine.now + self.hw_barrier_cost
        waiting = self._barrier_waiting
        self._barrier_waiting = []
        self._barrier_generation += 1
        for rank in waiting:
            proc = self._procs[rank]
            self._engine.schedule(
                max(release, proc.busy_until), self._on_barrier_release, rank
            )

    def _on_barrier_release(self, rank: int) -> None:
        proc = self._procs[rank]
        if proc.state == _WAIT_BARRIER:
            proc.state = _RUNNING
            proc.resume = None
            self._activate(proc)

    # ------------------------------------------------------------------

    def _record(
        self, proc: _Proc, start: float, end: float, kind: Activity, detail: str
    ) -> None:
        if end > proc.last_activity:
            proc.last_activity = end
        if self._schedule is not None:
            self._schedule.add_interval(proc.rank, start, end, kind, detail)

    def _check_completion(self) -> None:
        """End-of-run invariants, raised as real simulation errors.

        Leftover *mailbox* contents are permitted (programs may ignore
        messages), but a processor that never finished, a message still
        awaiting reception, or a sender still parked in the wait-graph
        means the run ended mid-flight.
        """
        blocked = [
            (p.rank, p.state)
            for p in self._procs
            if p.state != _DONE
        ]
        if blocked:
            detail = ", ".join(f"P{r}:{s}" for r, s in blocked[:8])
            raise SimulationError(
                f"deadlock: {len(blocked)} processor(s) never finished "
                f"({detail}{'...' if len(blocked) > 8 else ''}). "
                "Check for unmatched Recv/Send or mismatched barriers."
            )
        for p in self._procs:
            if p.arrived:
                raise SimulationError(
                    f"processor {p.rank} ended with {len(p.arrived)} "
                    "unreceived message(s)"
                )
            if p.pending_inject is not None or p.queued_on is not None:
                raise SimulationError(
                    f"processor {p.rank} ended with a message parked at "
                    "the network interface (stalled sender never woken)"
                )


def run_programs(
    params: LogPParams,
    programs: Iterable[Program] | ProgramFactory,
    **machine_kwargs: Any,
) -> MachineResult:
    """One-call convenience: build a :class:`LogPMachine` and run it."""
    return LogPMachine(params, **machine_kwargs).run(programs)
