"""Network latency models.

LogP treats ``L`` as an *upper bound*: "the latency experienced by any
message is unpredictable, but is bounded above by L in the absence of
stalls" (Section 3).  The simulator therefore lets the network draw each
message's flight time from a model:

* :class:`FixedLatency` — every message takes exactly ``L``.  This is the
  convention the paper's running-time analyses use ("in estimating the
  running time of an algorithm, we assume that each message incurs a
  latency of L") and what the analytical/simulated cross-checks rely on.
* :class:`UniformLatency` — flight times uniform in ``[lo_frac*L, L]``;
  messages to the same destination may be reordered, exercising the
  model's out-of-order delivery clause.
* :class:`JitteredLatency` — ``L`` minus truncated-exponential slack;
  most messages near the bound, a tail arriving early.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = ["LatencyModel", "FixedLatency", "UniformLatency", "JitteredLatency"]

_RNG_TYPES = (np.random.Generator, np.random.RandomState, random.Random)


class LatencyModel:
    """Draws per-message network flight times, all ``<= L``."""

    #: Whether :meth:`draw` reads its ``(src, dst)`` arguments.  When
    #: False the draw sequence is a pure function of stream position,
    #: so the compiled seed-grid replay can materialize one draw matrix
    #: up front instead of re-walking each tape's pair sequence.
    pair_dependent = True

    def __init__(self, L: float) -> None:
        if L < 0:
            raise ValueError(f"L must be >= 0, got {L}")
        self.L = L

    def draw(self, src: int, dst: int) -> float:
        """Flight time for one message from ``src`` to ``dst``."""
        raise NotImplementedError

    def draw_batch(self, pairs) -> list[float]:
        """Flight times for a sequence of ``(src, dst)`` pairs.

        Bit-identical to calling :meth:`draw` once per pair, in order —
        the compiled seed-grid replay uses this to fill one column of
        its draw matrix per call.  Subclasses with a vectorizable
        stream override it (one RNG call instead of ``len(pairs)``).
        """
        return [self.draw(src, dst) for src, dst in pairs]

    def reset(self) -> None:
        """Restore the initial random state (for reproducible reruns).

        The machine calls this at the start of every run, so a rerun on
        the same machine instance replays the same flight times.  A
        stateless model need not override it; a model that *does* hold
        an RNG stream must, or reruns silently stop being reproducible —
        this base implementation raises if it detects such state.
        """
        stateful = [
            name
            for name, value in vars(self).items()
            if isinstance(value, _RNG_TYPES)
        ]
        if stateful:
            raise NotImplementedError(
                f"{type(self).__name__} holds random state "
                f"({', '.join(stateful)}) but does not override reset(); "
                "reruns on the same machine would not be reproducible"
            )


class FixedLatency(LatencyModel):
    """Every message takes exactly ``L`` cycles (deterministic runs)."""

    pair_dependent = False

    def draw(self, src: int, dst: int) -> float:
        return self.L


class UniformLatency(LatencyModel):
    """Flight times uniform in ``[lo_frac * L, L]``.

    Args:
        L: the latency bound.
        lo_frac: lower edge as a fraction of ``L`` (``0 <= lo_frac <= 1``).
        seed: seed for the dedicated random stream.
    """

    pair_dependent = False

    def __init__(self, L: float, lo_frac: float = 0.5, seed: int = 0) -> None:
        super().__init__(L)
        if not 0.0 <= lo_frac <= 1.0:
            raise ValueError(f"lo_frac must be in [0, 1], got {lo_frac}")
        self.lo_frac = lo_frac
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._state0 = self._rng.bit_generator.state

    def draw(self, src: int, dst: int) -> float:
        return float(self._rng.uniform(self.lo_frac * self.L, self.L))

    def draw_batch(self, pairs) -> list[float]:
        # One vectorized call consumes the stream identically to
        # len(pairs) scalar uniform() calls.
        n = len(pairs)
        if n == 0:
            return []
        return self._rng.uniform(
            self.lo_frac * self.L, self.L, size=n
        ).tolist()

    def reset(self) -> None:
        # Restoring the recorded state is ~10x cheaper than
        # reconstructing the Generator and replays the same stream.
        self._rng.bit_generator.state = self._state0


class JitteredLatency(LatencyModel):
    """``L`` minus an exponential slack truncated at ``L`` — most messages
    arrive close to the bound, a thin tail arrives early.

    Args:
        L: the latency bound.
        scale_frac: mean slack as a fraction of ``L``.
        seed: seed for the dedicated random stream.
    """

    pair_dependent = False

    def __init__(self, L: float, scale_frac: float = 0.1, seed: int = 0) -> None:
        super().__init__(L)
        if scale_frac < 0:
            raise ValueError(f"scale_frac must be >= 0, got {scale_frac}")
        self.scale_frac = scale_frac
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._state0 = self._rng.bit_generator.state

    def draw(self, src: int, dst: int) -> float:
        slack = float(self._rng.exponential(self.scale_frac * self.L))
        return max(0.0, self.L - min(slack, self.L))

    def draw_batch(self, pairs) -> list[float]:
        # Vectorized exponential consumes the stream identically to
        # len(pairs) scalar calls (same per-sample ziggurat walk).
        n = len(pairs)
        if n == 0:
            return []
        slack = self._rng.exponential(self.scale_frac * self.L, size=n)
        return np.maximum(0.0, self.L - np.minimum(slack, self.L)).tolist()

    def reset(self) -> None:
        self._rng.bit_generator.state = self._state0
