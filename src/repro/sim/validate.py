"""Semantic validation of execution traces against the LogP rules.

Given a :class:`~repro.core.schedule.Schedule` produced by the simulator
(or built analytically), :func:`validate_schedule` checks every clause of
the model:

1. no processor does two things at once (busy intervals never overlap);
2. consecutive SEND intervals at one processor start ``>= max(g, o)``
   apart; consecutive RECV intervals start ``>= g`` apart;
3. every send/receive overhead interval lasts exactly ``o``;
4. every message's network flight time — net of any fabric queueing
   excess recorded as ``net_stall`` — is ``<= L`` (and exactly ``L``
   when the run was deterministic);
5. the capacity constraint: reconstructing in-flight counts from the
   message records, no more than ``ceil(L/g)`` messages are ever
   outstanding from one source or to one destination;
6. with a deterministic fabric supplied, hop consistency: each flight
   decomposes exactly as ``fabric.unloaded(src, dst) + net_stall``
   (plus the ``(words-1)*G`` streaming term), i.e. the machine charged
   precisely the fabric's routed distance plus reported queueing.

The property-based tests run arbitrary random programs through the
simulator and assert the trace validates — this is the core correctness
net for the whole simulation layer.

**Fault-aware mode.**  A run executed under a
:class:`~repro.sim.faults.FaultPlan` deliberately breaks the clauses
around a crash: a recovered incarnation's first send may follow the dead
incarnation's last send closer than ``max(g, o)``, a message in flight
when its endpoint died has no orderly reception, and so on.  Passing the
plan via ``fault_plan`` exempts exactly those windows — a check is
skipped only when a rank it involves was down at some point inside the
checked interval; everything outside the downtime windows is still held
to the full model.  Passing ``fault_report`` and ``heartbeat``
additionally validates the failure detector's output: every
:class:`~repro.sim.trace.SuspectEvent` must be backed by at least one
whole missed heartbeat period and by silence exceeding the configured
timeout — a suspicion without a missed beat is a detector bug, not a
detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.params import LogPParams
from ..core.schedule import Activity, Schedule

__all__ = ["ToleranceBand", "Violation", "ValidationReport", "validate_schedule"]

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class ToleranceBand:
    """Slack for validating *physical* traces against the model.

    Simulated schedules satisfy the clauses to floating-point epsilon;
    a wall-clock trace of real processes cannot (scheduler preemption,
    syscall jitter), so the live backend validates its timing clauses
    within ``slack(scale) = abs + rel * scale`` of the model value,
    where ``scale`` is the clause's own magnitude (``o`` for overheads,
    ``L`` for flights, ``max(g, o)`` for spacings).  Ordering and
    delivery clauses are never banded — those stay exact everywhere.

    ``band=None`` (the default everywhere) keeps the historical exact
    behavior: tolerance is floating-point epsilon.
    """

    rel: float = 0.0
    abs: float = 0.0

    def __post_init__(self) -> None:
        if self.rel < 0 or self.abs < 0:
            raise ValueError(f"tolerances must be >= 0, got {self}")

    def slack(self, scale: float) -> float:
        return self.abs + self.rel * max(scale, 0.0)


def _tol(band: ToleranceBand | None, scale: float) -> float:
    return _EPS if band is None else max(band.slack(scale), _EPS)


@dataclass(frozen=True, slots=True)
class Violation:
    """One detected breach of the model semantics."""

    rule: str
    proc: int
    time: float
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.rule}] P{self.proc} @ {self.time}: {self.detail}"


@dataclass(slots=True)
class ValidationReport:
    """All violations found in one schedule."""

    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, rule: str, proc: int, time: float, detail: str) -> None:
        self.violations.append(Violation(rule, proc, time, detail))

    def raise_if_invalid(self) -> None:
        if not self.ok:
            lines = "\n".join(str(v) for v in self.violations[:20])
            more = (
                f"\n... and {len(self.violations) - 20} more"
                if len(self.violations) > 20
                else ""
            )
            raise AssertionError(
                f"{len(self.violations)} LogP semantic violation(s):\n"
                f"{lines}{more}"
            )


def validate_schedule(
    schedule: Schedule,
    *,
    exact_latency: bool = False,
    check_capacity: bool = True,
    fabric=None,
    fault_plan=None,
    fault_report=None,
    heartbeat=None,
    band: ToleranceBand | None = None,
) -> ValidationReport:
    """Check a schedule against the LogP semantics of its parameters.

    Args:
        schedule: the trace to validate.
        exact_latency: require every flight time to equal ``L`` (true for
            deterministic runs over the abstract network), not merely
            ``<= L``.  Incompatible with topology fabrics, whose exact
            flight is the distance-dependent ``fabric.unloaded``.
        check_capacity: verify the ``ceil(L/g)`` constraint (disable when
            validating an ablation run that turned the constraint off).
        fabric: the :class:`~repro.sim.net.Fabric` the run used, if any.
            When it is deterministic, every message's flight is checked
            hop-consistent: ``arrive - inject == unloaded(src, dst) +
            net_stall`` (plus streaming).
        fault_plan: the :class:`~repro.sim.faults.FaultPlan` the run
            executed under, if any — activates fault-aware mode (see the
            module docstring): gap/overhead/latency/capacity checks are
            skipped for exactly the intervals that touch a rank's
            downtime, and enforced everywhere else.
        fault_report: the run's
            :meth:`~repro.sim.machine.MachineResult.fault_report`; with
            ``heartbeat`` also given, every recorded suspicion is checked
            to be backed by ``missed >= 1`` heartbeat periods and silence
            exceeding the detector timeout.
        heartbeat: the :class:`~repro.sim.faults.HeartbeatConfig` the
            run used (required for the suspicion checks).
        band: a :class:`ToleranceBand` loosening the *timing* clauses
            (gaps, overheads, latency) to physical-trace tolerances.
            Ordering clauses (busy-overlap, capacity, hop-consistency)
            stay exact regardless — a band never excuses a reordering.
    """
    p = schedule.params
    report = ValidationReport()
    _check_busy_overlap(schedule, report)
    _check_gaps(schedule, p, report, plan=fault_plan, band=band)
    _check_overheads(schedule, p, report, plan=fault_plan, band=band)
    _check_latency(
        schedule, p, report, exact=exact_latency, plan=fault_plan, band=band
    )
    if check_capacity:
        _check_capacity(schedule, p, report, plan=fault_plan)
    if fabric is not None and fabric.deterministic:
        _check_hop_consistency(schedule, p, fabric, report)
    if fault_report is not None and heartbeat is not None:
        _check_suspicions(fault_report, heartbeat, report)
    return report


def _down_overlaps(plan, rank: int, t0: float, t1: float) -> bool:
    """Whether ``rank`` has any planned downtime intersecting
    ``[t0, t1]`` — the exemption window of fault-aware validation."""
    if plan is None:
        return False
    return any(
        a <= t1 + _EPS and t0 <= b + _EPS
        for a, b in plan.down_intervals(rank)
    )


def _check_busy_overlap(schedule: Schedule, report: ValidationReport) -> None:
    for rank, tl in schedule.timelines.items():
        for a, b in tl.overlaps():
            report.add(
                "busy-overlap",
                rank,
                b.start,
                f"{a.kind}[{a.start},{a.end}) overlaps {b.kind}[{b.start},{b.end})",
            )


def _check_gaps(
    schedule: Schedule,
    p: LogPParams,
    report: ValidationReport,
    plan=None,
    band: ToleranceBand | None = None,
) -> None:
    send_spacing = p.send_interval
    for rank, tl in schedule.timelines.items():
        sends = sorted(
            iv.start for iv in tl.intervals if iv.kind is Activity.SEND
        )
        for t0, t1 in zip(sends, sends[1:]):
            if t1 - t0 < send_spacing - _tol(band, send_spacing):
                # A crash between the two sends resets the port: the
                # recovered incarnation owes the dead one no spacing.
                if _down_overlaps(plan, rank, t0, t1):
                    continue
                report.add(
                    "send-gap",
                    rank,
                    t1,
                    f"sends at {t0} and {t1} are {t1 - t0} apart "
                    f"(< max(g,o) = {send_spacing})",
                )
        recvs = sorted(
            iv.start for iv in tl.intervals if iv.kind is Activity.RECV
        )
        for t0, t1 in zip(recvs, recvs[1:]):
            if t1 - t0 < p.g - _tol(band, p.g):
                if _down_overlaps(plan, rank, t0, t1):
                    continue
                report.add(
                    "recv-gap",
                    rank,
                    t1,
                    f"receives at {t0} and {t1} are {t1 - t0} apart (< g = {p.g})",
                )


def _check_overheads(
    schedule: Schedule,
    p: LogPParams,
    report: ValidationReport,
    plan=None,
    band: ToleranceBand | None = None,
) -> None:
    for rank, tl in schedule.timelines.items():
        for iv in tl.intervals:
            if iv.kind in (Activity.SEND, Activity.RECV):
                if abs(iv.duration - p.o) > _tol(band, p.o):
                    # An overhead truncated by the rank's own crash.
                    if _down_overlaps(plan, rank, iv.start, iv.end):
                        continue
                    report.add(
                        "overhead",
                        rank,
                        iv.start,
                        f"{iv.kind} lasted {iv.duration}, expected o = {p.o}",
                    )


def _check_latency(
    schedule: Schedule,
    p: LogPParams,
    report: ValidationReport,
    *,
    exact: bool,
    plan=None,
    band: ToleranceBand | None = None,
) -> None:
    G = getattr(p, "G", 0.0) or 0.0
    for m in schedule.messages:
        # A message whose endpoint was down anywhere between send start
        # and arrival has no orderly LogP flight to validate.
        if _down_overlaps(plan, m.src, m.send_start, m.arrive) or (
            _down_overlaps(plan, m.dst, m.inject, m.arrive)
        ):
            continue
        flight = m.arrive - m.inject
        stream = (m.words - 1) * G
        if m.net_stall < -_EPS:
            report.add(
                "net-stall-negative",
                m.src,
                m.inject,
                f"message {m.src}->{m.dst} recorded net_stall "
                f"{m.net_stall} < 0",
            )
        # The LogP bound governs the *unloaded* flight; fabric queueing
        # excess is accounted separately (and reported, not hidden).
        if flight - m.net_stall > p.L + stream + _tol(band, p.L + stream):
            report.add(
                "latency-bound",
                m.src,
                m.inject,
                f"{m.words}-word message {m.src}->{m.dst} flew {flight} "
                f"(net stall {m.net_stall}) "
                f"> L + (words-1)G = {p.L + stream}",
            )
        if exact and abs(flight - (p.L + stream)) > _tol(band, p.L + stream):
            report.add(
                "latency-exact",
                m.src,
                m.inject,
                f"message {m.src}->{m.dst} flew {flight}, expected exactly "
                f"{p.L + stream}",
            )
        if m.inject - m.send_start < p.o - _tol(band, p.o):
            report.add(
                "inject-before-overhead",
                m.src,
                m.send_start,
                f"injection {m.inject} only {m.inject - m.send_start} after "
                f"send start (o = {p.o})",
            )


def _check_hop_consistency(
    schedule: Schedule, p: LogPParams, fabric, report: ValidationReport
) -> None:
    """Flight must equal the fabric's routed distance plus its reported
    queueing excess — the delivery-time clause of the fabric contract."""
    G = getattr(p, "G", 0.0) or 0.0
    for m in schedule.messages:
        flight = m.arrive - m.inject
        stream = (m.words - 1) * G
        expected = fabric.unloaded(m.src, m.dst) + m.net_stall + stream
        if abs(flight - expected) > _EPS:
            report.add(
                "hop-consistency",
                m.src,
                m.inject,
                f"message {m.src}->{m.dst} flew {flight}, expected "
                f"unloaded {fabric.unloaded(m.src, m.dst)} + net_stall "
                f"{m.net_stall} + stream {stream} = {expected}",
            )


def _check_capacity(
    schedule: Schedule, p: LogPParams, report: ValidationReport, plan=None
) -> None:
    """Sweep message lifetime events and track in-flight counts.

    A message occupies a *source* capacity slot while in the network —
    over ``[inject, arrive)`` — and a *destination* slot from injection
    until the destination begins its reception, ``[inject, recv_start)``.
    This is the accounting under which the paper's own schedules (a
    sender pacing at ``g`` keeps ``L/g <= ceil(L/g)`` of its messages in
    flight) are exactly feasible while flooded destinations still
    back-pressure their senders.
    """
    cap = p.capacity
    from_events: list[tuple[float, int, int]] = []  # (time, delta, proc)
    to_events: list[tuple[float, int, int]] = []
    for m in schedule.messages:
        # A crash truncates the orderly slot lifecycle (in-flight sends
        # are dropped, receptions never start); exempt those messages.
        if _down_overlaps(plan, m.src, m.inject, m.arrive) or (
            _down_overlaps(plan, m.dst, m.inject, m.recv_start)
        ):
            continue
        from_events.append((m.inject, +1, m.src))
        from_events.append((m.arrive, -1, m.src))
        to_events.append((m.inject, +1, m.dst))
        to_events.append((m.recv_start, -1, m.dst))
    # Releases before acquisitions at the same instant.
    for events, rule, word in (
        (from_events, "capacity-from", "from"),
        (to_events, "capacity-to", "to"),
    ):
        events.sort(key=lambda e: (e[0], e[1]))
        count: dict[int, int] = {}
        for time, delta, proc in events:
            count[proc] = count.get(proc, 0) + delta
            if count[proc] > cap:
                report.add(
                    rule,
                    proc,
                    time,
                    f"{count[proc]} messages in flight {word} P{proc} "
                    f"(limit ceil(L/g) = {cap})",
                )


def _check_suspicions(fault_report, heartbeat, report: ValidationReport) -> None:
    """A suspicion is only valid on evidence: at least one whole missed
    heartbeat period, and silence strictly exceeding the timeout."""
    for e in fault_report.suspects:
        if e.missed < 1:
            report.add(
                "suspect-no-missed-beat",
                e.watcher,
                e.time,
                f"P{e.watcher} suspected P{e.suspect} having missed "
                f"{e.missed} heartbeat periods (need >= 1)",
            )
        if e.time - e.last_heard <= heartbeat.timeout - _EPS:
            report.add(
                "suspect-premature",
                e.watcher,
                e.time,
                f"P{e.watcher} suspected P{e.suspect} after only "
                f"{e.time - e.last_heard} cycles of silence "
                f"(timeout {heartbeat.timeout})",
            )
