"""Discrete-event simulator of a LogP machine.

Build a :class:`LogPMachine` from :class:`~repro.core.params.LogPParams`,
hand it one generator program per processor (see :mod:`repro.sim.program`)
and run.  The simulator enforces every clause of the model — overhead,
send/receive gaps, the latency bound, and the ``ceil(L/g)`` capacity
constraint with sender stalling — and returns both the programs' return
values (real data flows through messages) and a full activity trace.
"""

from .collectives import (
    all_reduce,
    all_to_all,
    exchange,
    binomial_broadcast,
    binomial_children,
    binomial_parent,
    binomial_reduce,
    group_broadcast,
    hardware_barrier,
    prefix_scan,
    software_barrier,
    tree_broadcast,
    tree_reduce,
)
from .dsm import (
    AwaitPrefetch,
    DSMResult,
    Fence,
    Prefetch,
    Read,
    Write,
    block_owner,
    run_dsm,
)
from .engine import Engine, SimulationError
from .faults import (
    BudgetedRetry,
    CrashRecover,
    CrashStop,
    ExponentialBackoffRetry,
    FaultPlan,
    FixedRetry,
    HeartbeatConfig,
    RetryPolicy,
    Slowdown,
    random_fault_plan,
)
from .latency import FixedLatency, JitteredLatency, LatencyModel, UniformLatency
from .machine import LogPMachine, MachineResult, run_programs
from .net import (
    ContentionFabric,
    Fabric,
    FabricReport,
    FaultyFabric,
    LatencyFabric,
    LossyOutcome,
    TopologyFabric,
)
from .program import (
    Barrier,
    Checkpoint,
    Compute,
    Now,
    Poll,
    ProgramResult,
    ReceivedMessage,
    Recv,
    Restore,
    RestoreInfo,
    Send,
    Sleep,
    Suspects,
)
from .supervise import (
    PoisonItemError,
    SupervisedPool,
    SweepDeadlineError,
    WorkerRestartStorm,
)
from .sweep import SweepShortfallError, resolve_workers, sweep_map
from .trace import (
    CrashEvent,
    FaultReport,
    MessageStats,
    NetStallEvent,
    RecoverEvent,
    StallEvent,
    StallReport,
    SuspectEvent,
    UtilizationBreakdown,
    WakeupEvent,
    communication_rate,
    message_stats,
    receive_histogram,
    stall_report,
    utilization,
)
from .validate import ValidationReport, Violation, validate_schedule

# The fuzz and chaos harnesses are exported lazily: both are also
# ``python -m`` entry points, and an eager import here would shadow
# that runpy execution with a spurious sys.modules warning.
_FUZZ_EXPORTS = (
    "CaseOutcome",
    "FuzzCase",
    "FuzzSummary",
    "fuzz_sweep",
    "make_case",
    "run_case",
)

_CHAOS_EXPORTS = (
    "ChaosOutcome",
    "ChaosSummary",
    "chaos_sweep",
    "check_case_under_faults",
    "run_chaos_case",
)


def __getattr__(name: str):
    if name in _FUZZ_EXPORTS:
        from . import fuzz

        return getattr(fuzz, name)
    if name in _CHAOS_EXPORTS:
        from . import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Engine",
    "SimulationError",
    "LogPMachine",
    "MachineResult",
    "run_programs",
    "Send",
    "Recv",
    "Compute",
    "Sleep",
    "Now",
    "Poll",
    "Barrier",
    "ReceivedMessage",
    "ProgramResult",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "JitteredLatency",
    "binomial_parent",
    "binomial_children",
    "binomial_broadcast",
    "binomial_reduce",
    "tree_broadcast",
    "tree_reduce",
    "software_barrier",
    "hardware_barrier",
    "all_to_all",
    "all_reduce",
    "exchange",
    "Read",
    "Write",
    "Prefetch",
    "AwaitPrefetch",
    "Fence",
    "DSMResult",
    "run_dsm",
    "block_owner",
    "group_broadcast",
    "prefix_scan",
    "utilization",
    "UtilizationBreakdown",
    "message_stats",
    "MessageStats",
    "communication_rate",
    "receive_histogram",
    "StallEvent",
    "WakeupEvent",
    "NetStallEvent",
    "StallReport",
    "stall_report",
    "Fabric",
    "FabricReport",
    "LatencyFabric",
    "TopologyFabric",
    "ContentionFabric",
    "FaultyFabric",
    "LossyOutcome",
    "sweep_map",
    "resolve_workers",
    "SweepShortfallError",
    "SupervisedPool",
    "PoisonItemError",
    "SweepDeadlineError",
    "WorkerRestartStorm",
    "validate_schedule",
    "ValidationReport",
    "Violation",
    "FuzzCase",
    "CaseOutcome",
    "FuzzSummary",
    "make_case",
    "run_case",
    "fuzz_sweep",
    "CrashStop",
    "CrashRecover",
    "Slowdown",
    "FaultPlan",
    "random_fault_plan",
    "HeartbeatConfig",
    "RetryPolicy",
    "FixedRetry",
    "ExponentialBackoffRetry",
    "BudgetedRetry",
    "Checkpoint",
    "Restore",
    "RestoreInfo",
    "Suspects",
    "CrashEvent",
    "RecoverEvent",
    "SuspectEvent",
    "FaultReport",
    "ChaosOutcome",
    "ChaosSummary",
    "chaos_sweep",
    "check_case_under_faults",
    "run_chaos_case",
]
