"""Trace post-processing: summary statistics over execution schedules.

The simulator emits a raw :class:`~repro.core.schedule.Schedule`; this
module condenses it into the quantities the paper's figures report —
per-processor utilization breakdowns, communication rates, message
latency distributions — and into rows for the ASCII Gantt renderer.

It also defines the structured *stall/wakeup event feed* the machine
emits alongside the schedule: every capacity stall records which slots
the sender was waiting for (its own outbound slot, the destination's
inbound slot, or both), and every wakeup records which slot release
caused it and whether the sender was actually admitted.  The feed makes
stall causality observable — :func:`stall_report` condenses it into the
per-destination queueing picture Section 4.1.2 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.schedule import Activity, Schedule

__all__ = [
    "UtilizationBreakdown",
    "utilization",
    "message_stats",
    "MessageStats",
    "communication_rate",
    "receive_histogram",
    "StallEvent",
    "WakeupEvent",
    "NetStallEvent",
    "StallReport",
    "stall_report",
    "CrashEvent",
    "RecoverEvent",
    "SuspectEvent",
    "FaultReport",
]


@dataclass(frozen=True, slots=True)
class UtilizationBreakdown:
    """Where one processor's time went, as fractions of the makespan."""

    proc: int
    compute: float
    send_overhead: float
    recv_overhead: float
    stall: float
    idle: float

    @property
    def busy(self) -> float:
        return self.compute + self.send_overhead + self.recv_overhead


def utilization(schedule: Schedule) -> list[UtilizationBreakdown]:
    """Per-processor utilization breakdown over the whole run."""
    span = schedule.makespan
    out: list[UtilizationBreakdown] = []
    for rank in range(schedule.params.P):
        tl = schedule.timelines.get(rank)
        if tl is None or span == 0:
            out.append(UtilizationBreakdown(rank, 0.0, 0.0, 0.0, 0.0, 1.0))
            continue
        compute = tl.time_in(Activity.COMPUTE) / span
        send = tl.time_in(Activity.SEND) / span
        recv = tl.time_in(Activity.RECV) / span
        stall = tl.time_in(Activity.STALL) / span
        idle = max(0.0, 1.0 - compute - send - recv - stall)
        out.append(UtilizationBreakdown(rank, compute, send, recv, stall, idle))
    return out


@dataclass(frozen=True, slots=True)
class MessageStats:
    """Aggregate message statistics for one run."""

    count: int
    mean_flight: float
    max_flight: float
    mean_end_to_end: float
    max_end_to_end: float
    reordered: int  # messages overtaken by a later send to the same dst


def message_stats(schedule: Schedule) -> MessageStats:
    """Latency and ordering statistics over all messages in a schedule."""
    msgs = schedule.messages
    if not msgs:
        return MessageStats(0, 0.0, 0.0, 0.0, 0.0, 0)
    flights = np.array([m.arrive - m.inject for m in msgs])
    e2e = np.array([m.recv_end - m.send_start for m in msgs])
    reordered = 0
    by_dst: dict[int, list] = {}
    for m in msgs:
        by_dst.setdefault(m.dst, []).append(m)
    for dst_msgs in by_dst.values():
        dst_msgs.sort(key=lambda m: m.inject)
        for a, b in zip(dst_msgs, dst_msgs[1:]):
            if b.arrive < a.arrive:  # later injection arrived earlier
                reordered += 1
    return MessageStats(
        count=len(msgs),
        mean_flight=float(flights.mean()),
        max_flight=float(flights.max()),
        mean_end_to_end=float(e2e.mean()),
        max_end_to_end=float(e2e.max()),
        reordered=reordered,
    )


def communication_rate(
    schedule: Schedule, bytes_per_message: float
) -> float:
    """Mean per-processor communication rate in bytes/cycle.

    Figure 8 reports MB/s per processor during the remap; this is the
    cycle-domain equivalent: total bytes moved divided by (makespan x P).
    """
    if bytes_per_message <= 0:
        raise ValueError(
            f"bytes_per_message must be > 0, got {bytes_per_message}"
        )
    span = schedule.makespan
    if span == 0:
        return 0.0
    total = len(schedule.messages) * bytes_per_message
    return total / (span * schedule.params.P)


def receive_histogram(schedule: Schedule) -> np.ndarray:
    """Messages received per processor, as an array of length P —
    the hot-spot statistic of the connected-components study."""
    hist = np.zeros(schedule.params.P, dtype=np.int64)
    for m in schedule.messages:
        hist[m.dst] += 1
    return hist


# ----------------------------------------------------------------------
# Stall/wakeup event feed
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class StallEvent:
    """One sender entering a capacity stall.

    ``needs_src``/``needs_dst`` name the slots the sender was blocked on
    at the moment of the failed injection: its own outbound slot
    (``inflight_from[src] == capacity``), the destination's inbound slot
    (``inflight_to[dst] == capacity``), or both.
    """

    time: float
    src: int
    dst: int
    needs_src: bool
    needs_dst: bool

    @property
    def cause(self) -> str:
        if self.needs_src and self.needs_dst:
            return "both"
        return "src" if self.needs_src else "dst"


@dataclass(frozen=True, slots=True)
class WakeupEvent:
    """One stalled sender being re-examined after a slot release.

    ``slot`` is ``"src"`` (one of the sender's own messages arrived,
    freeing an outbound slot) or ``"dst"`` (the destination began a
    reception, freeing an inbound slot); ``slot_owner`` is the processor
    whose slot freed.  ``admitted`` records the wait-graph's satisfiability
    verdict at release time: True means every slot the sender needs was
    free (counting earlier admissions in the same scan) and it was
    scheduled to inject; False means it stayed parked — observable
    evidence of the head-of-line cases the wait-graph exists to get right.
    """

    time: float
    src: int
    dst: int
    slot: str
    slot_owner: int
    admitted: bool


@dataclass(frozen=True, slots=True)
class NetStallEvent:
    """One message queued *inside* the network fabric.

    Distinct from :class:`StallEvent`: a capacity stall blocks the
    *sender* before injection (the LogP contract at work), while a net
    stall is queueing excess the fabric charged *after* injection — time
    a :class:`~repro.sim.net.ContentionFabric` message spent waiting for
    busy links, beyond its unloaded flight.  ``stall`` is that excess in
    cycles; the message's total flight is ``unloaded(src, dst) + stall``.
    """

    time: float
    src: int
    dst: int
    stall: float


# ----------------------------------------------------------------------
# Processor-fault event feed (see repro.sim.faults)
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """One rank halting.  ``kind`` is ``"stop"`` (permanent) or
    ``"transient"`` (a :class:`~repro.sim.faults.CrashRecover` downtime).
    ``dropped_in_flight`` counts this rank's own injected-but-undelivered
    messages cancelled at crash time; ``reaped_parked`` is 1 when the
    rank's parked wait-graph entry was removed without waking it."""

    time: float
    rank: int
    kind: str
    dropped_in_flight: int = 0
    reaped_parked: int = 0


@dataclass(frozen=True, slots=True)
class RecoverEvent:
    """One rank restarting after a transient crash.  ``incarnation`` is
    1 for the first restart; ``had_checkpoint`` records whether a
    :class:`~repro.sim.program.Checkpoint` payload survived for
    :class:`~repro.sim.program.Restore` to return."""

    time: float
    rank: int
    incarnation: int
    had_checkpoint: bool


@dataclass(frozen=True, slots=True)
class SuspectEvent:
    """A watcher's failure detector suspecting a silent rank.

    ``last_heard`` is the latest heartbeat reception time (0.0 if none
    was ever heard); ``missed`` counts whole heartbeat periods of
    silence at suspicion time — fault-aware validation requires
    ``missed >= 1`` and ``time - last_heard > timeout``."""

    time: float
    watcher: int
    suspect: int
    last_heard: float
    missed: int


@dataclass(slots=True)
class FaultReport:
    """Condensed picture of one run's processor faults.

    Built by :meth:`~repro.sim.machine.MachineResult.fault_report` from
    counters the machine keeps whenever a fault plan is attached (they
    are collected untraced too — fault events are rare, unlike the
    stall feed).  The chaos harness cross-checks every count against
    the traced event feed."""

    crashes: list[CrashEvent] = field(default_factory=list)
    recoveries: list[RecoverEvent] = field(default_factory=list)
    suspects: list[SuspectEvent] = field(default_factory=list)
    dropped_in_flight: int = 0
    dropped_at_dead_interface: int = 0
    reaped_parked: int = 0
    gave_up_sends: int = 0
    duplicate_deliveries: int = 0
    heartbeats_sent: int = 0
    checkpoints: int = 0
    restores: int = 0
    slowed_computes: int = 0
    wedged_ranks: list[int] = field(default_factory=list)
    unreceived_messages: int = 0

    @property
    def crashed_ranks(self) -> list[int]:
        return sorted({e.rank for e in self.crashes})

    @property
    def down_forever(self) -> list[int]:
        """Ranks that crashed and never recovered during the run."""
        back = {e.rank for e in self.recoveries}
        return sorted(
            {e.rank for e in self.crashes if e.rank not in back}
        )

    @property
    def ok(self) -> bool:
        """No surviving rank wedged and exactly-once delivery held."""
        return not self.wedged_ranks and self.duplicate_deliveries == 0


@dataclass(slots=True)
class StallReport:
    """Condensed causality picture of one run's capacity stalls.

    ``stalls`` counts stall *episodes* (one per parked injection);
    ``admitted``/``skipped`` count raw wakeup *events* — an episode may
    see several admitting wakeups when a freed slot is stolen by a fresh
    injection before the admitted sender's activation fires.
    ``unresolved`` lists senders whose last episode never saw an
    admitting wakeup; a completed run must leave it empty.
    """

    stalls: int
    wakeups: int
    admitted: int
    skipped: int
    net_stalls: int = 0
    net_stall_time: float = 0.0
    stalls_by_cause: dict[str, int] = field(default_factory=dict)
    stalls_by_dst: dict[int, int] = field(default_factory=dict)
    max_queue_by_dst: dict[int, int] = field(default_factory=dict)
    unresolved: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every stall episode was eventually resolved by an admitting
        wakeup — the livelock-freedom witness."""
        return not self.unresolved


def stall_report(
    events: "list[StallEvent | WakeupEvent | NetStallEvent]",
) -> StallReport:
    """Summarize a machine run's stall/wakeup feed.

    The feed is chronological; stall depth per destination is
    reconstructed by replaying it (a stall episode enqueues, its first
    admitting wakeup dequeues), yielding the max queue length each hot
    spot reached — the "all but L/g processors will stall" statistic of
    Section 4.1.2.
    """
    stalls = wakeups = admitted = skipped = 0
    net_stalls = 0
    net_stall_time = 0.0
    by_cause: dict[str, int] = {}
    by_dst: dict[int, int] = {}
    depth: dict[int, int] = {}
    max_depth: dict[int, int] = {}
    # src -> dst of its currently-unresolved stall episode.
    parked: dict[int, int] = {}
    for ev in events:
        if isinstance(ev, NetStallEvent):
            net_stalls += 1
            net_stall_time += ev.stall
        elif isinstance(ev, StallEvent):
            stalls += 1
            by_cause[ev.cause] = by_cause.get(ev.cause, 0) + 1
            by_dst[ev.dst] = by_dst.get(ev.dst, 0) + 1
            parked[ev.src] = ev.dst
            depth[ev.dst] = depth.get(ev.dst, 0) + 1
            max_depth[ev.dst] = max(max_depth.get(ev.dst, 0), depth[ev.dst])
        elif isinstance(ev, WakeupEvent):
            # Fault events (Crash/Recover/Suspect) share the feed but
            # are summarized by FaultReport, not here.
            wakeups += 1
            if ev.admitted:
                admitted += 1
                dst = parked.pop(ev.src, None)
                if dst is not None:
                    depth[dst] = depth.get(dst, 1) - 1
            else:
                skipped += 1
    return StallReport(
        stalls=stalls,
        wakeups=wakeups,
        admitted=admitted,
        skipped=skipped,
        net_stalls=net_stalls,
        net_stall_time=net_stall_time,
        stalls_by_cause=by_cause,
        stalls_by_dst=by_dst,
        max_queue_by_dst=max_depth,
        unresolved=sorted(parked),
    )
