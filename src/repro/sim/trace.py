"""Trace post-processing: summary statistics over execution schedules.

The simulator emits a raw :class:`~repro.core.schedule.Schedule`; this
module condenses it into the quantities the paper's figures report —
per-processor utilization breakdowns, communication rates, message
latency distributions — and into rows for the ASCII Gantt renderer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.schedule import Activity, Schedule

__all__ = [
    "UtilizationBreakdown",
    "utilization",
    "message_stats",
    "MessageStats",
    "communication_rate",
    "receive_histogram",
]


@dataclass(frozen=True, slots=True)
class UtilizationBreakdown:
    """Where one processor's time went, as fractions of the makespan."""

    proc: int
    compute: float
    send_overhead: float
    recv_overhead: float
    stall: float
    idle: float

    @property
    def busy(self) -> float:
        return self.compute + self.send_overhead + self.recv_overhead


def utilization(schedule: Schedule) -> list[UtilizationBreakdown]:
    """Per-processor utilization breakdown over the whole run."""
    span = schedule.makespan
    out: list[UtilizationBreakdown] = []
    for rank in range(schedule.params.P):
        tl = schedule.timelines.get(rank)
        if tl is None or span == 0:
            out.append(UtilizationBreakdown(rank, 0.0, 0.0, 0.0, 0.0, 1.0))
            continue
        compute = tl.time_in(Activity.COMPUTE) / span
        send = tl.time_in(Activity.SEND) / span
        recv = tl.time_in(Activity.RECV) / span
        stall = tl.time_in(Activity.STALL) / span
        idle = max(0.0, 1.0 - compute - send - recv - stall)
        out.append(UtilizationBreakdown(rank, compute, send, recv, stall, idle))
    return out


@dataclass(frozen=True, slots=True)
class MessageStats:
    """Aggregate message statistics for one run."""

    count: int
    mean_flight: float
    max_flight: float
    mean_end_to_end: float
    max_end_to_end: float
    reordered: int  # messages overtaken by a later send to the same dst


def message_stats(schedule: Schedule) -> MessageStats:
    """Latency and ordering statistics over all messages in a schedule."""
    msgs = schedule.messages
    if not msgs:
        return MessageStats(0, 0.0, 0.0, 0.0, 0.0, 0)
    flights = np.array([m.arrive - m.inject for m in msgs])
    e2e = np.array([m.recv_end - m.send_start for m in msgs])
    reordered = 0
    by_dst: dict[int, list] = {}
    for m in msgs:
        by_dst.setdefault(m.dst, []).append(m)
    for dst_msgs in by_dst.values():
        dst_msgs.sort(key=lambda m: m.inject)
        for a, b in zip(dst_msgs, dst_msgs[1:]):
            if b.arrive < a.arrive:  # later injection arrived earlier
                reordered += 1
    return MessageStats(
        count=len(msgs),
        mean_flight=float(flights.mean()),
        max_flight=float(flights.max()),
        mean_end_to_end=float(e2e.mean()),
        max_end_to_end=float(e2e.max()),
        reordered=reordered,
    )


def communication_rate(
    schedule: Schedule, bytes_per_message: float
) -> float:
    """Mean per-processor communication rate in bytes/cycle.

    Figure 8 reports MB/s per processor during the remap; this is the
    cycle-domain equivalent: total bytes moved divided by (makespan x P).
    """
    if bytes_per_message <= 0:
        raise ValueError(
            f"bytes_per_message must be > 0, got {bytes_per_message}"
        )
    span = schedule.makespan
    if span == 0:
        return 0.0
    total = len(schedule.messages) * bytes_per_message
    return total / (span * schedule.params.P)


def receive_histogram(schedule: Schedule) -> np.ndarray:
    """Messages received per processor, as an array of length P —
    the hot-spot statistic of the connected-components study."""
    hist = np.zeros(schedule.params.P, dtype=np.int64)
    for m in schedule.messages:
        hist[m.dst] += 1
    return hist
