"""A cache simulator for the Figure 7 locality study.

The CM-5 node has a "64 KByte direct-mapped write-through cache"; the
paper's Figure 7 shows the local-FFT computation rate dropping from
2.8 to 2.2 Mflops/processor "when the size of the local FFTs exceeds
cache capacity", with the cyclic phase (one large FFT) suffering more
interference than the blocked phase (many small FFTs).

:class:`Cache` is a set-associative simulator with LRU replacement
(associativity 1 = the CM-5's direct-mapped case; higher associativity
supports the conflict-miss ablation).  Reads and writes are modeled
identically for occupancy (write-through with allocate-on-read caches
still fill lines on the store's preceding load in the FFT loop; the
distinction does not affect the miss counts that matter here, and the
write-no-allocate variant is available for the ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Cache", "CacheStats"]


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Access counters for one simulation."""

    accesses: int
    misses: int

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """Set-associative cache with LRU replacement.

    Args:
        size_bytes: total capacity (power of two).
        line_bytes: line size (power of two).
        associativity: ways per set (1 = direct-mapped).
        write_allocate: whether a write miss fills the line (True matches
            the load-then-store FFT access pattern; False models pure
            write-no-allocate streaming stores).
    """

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int = 32,
        associativity: int = 1,
        write_allocate: bool = True,
    ) -> None:
        for v, name in ((size_bytes, "size_bytes"), (line_bytes, "line_bytes")):
            if v < 1 or v & (v - 1):
                raise ValueError(f"{name} must be a power of two, got {v}")
        if associativity < 1:
            raise ValueError(f"associativity must be >= 1, got {associativity}")
        n_lines = size_bytes // line_bytes
        if n_lines % associativity:
            raise ValueError(
                f"{n_lines} lines not divisible by associativity {associativity}"
            )
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.write_allocate = write_allocate
        self.n_sets = n_lines // associativity
        self.reset()

    def reset(self) -> None:
        """Empty the cache and zero the counters."""
        # tags[set, way] = line tag (-1 empty); lru[set, way] = last use.
        self._tags = np.full((self.n_sets, self.associativity), -1, dtype=np.int64)
        self._lru = np.zeros((self.n_sets, self.associativity), dtype=np.int64)
        self._clock = 0
        self._accesses = 0
        self._misses = 0

    @property
    def stats(self) -> CacheStats:
        return CacheStats(accesses=self._accesses, misses=self._misses)

    def access(self, addr: int, write: bool = False) -> bool:
        """Touch one byte address; returns True on hit."""
        line = addr // self.line_bytes
        s = line % self.n_sets
        tag = line // self.n_sets
        self._accesses += 1
        self._clock += 1
        ways = self._tags[s]
        hit = np.nonzero(ways == tag)[0]
        if hit.size:
            self._lru[s, hit[0]] = self._clock
            return True
        self._misses += 1
        if write and not self.write_allocate:
            return False
        victim = int(np.argmin(self._lru[s]))
        self._tags[s, victim] = tag
        self._lru[s, victim] = self._clock
        return False

    def access_block(self, addrs: np.ndarray, write: bool = False) -> int:
        """Touch a sequence of byte addresses in order; returns the number
        of misses added by this block.

        Direct-mapped caches take a fast vectorized path (per-set state
        is a single tag, so a grouped scan suffices); associative caches
        fall back to the per-access loop.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        if addrs.size == 0:
            return 0
        if self.associativity != 1:
            before = self._misses
            for a in addrs.tolist():
                self.access(int(a), write)
            return self._misses - before

        lines = addrs // self.line_bytes
        sets = lines % self.n_sets
        tags = lines // self.n_sets
        before = self._misses
        self._accesses += len(addrs)
        self._clock += len(addrs)
        if write and not self.write_allocate:
            # Misses don't change state; hits need current tags only —
            # but a preceding write can't have allocated, so state is
            # static within the block.
            self._misses += int((self._tags[sets, 0] != tags).sum())
            return self._misses - before
        # Sequential dependence within a set: process by set groups.
        order = np.argsort(sets, kind="stable")
        s_sorted = sets[order]
        t_sorted = tags[order]
        boundaries = np.nonzero(np.diff(s_sorted))[0] + 1
        for lo, hi in zip(
            np.concatenate([[0], boundaries]),
            np.concatenate([boundaries, [len(s_sorted)]]),
        ):
            s = int(s_sorted[lo])
            seq = t_sorted[lo:hi]
            cur = self._tags[s, 0]
            # Miss whenever the tag differs from the previous access
            # mapping to this set.
            prev = np.concatenate([[cur], seq[:-1]])
            self._misses += int((seq != prev).sum())
            self._tags[s, 0] = seq[-1]
        return self._misses - before
