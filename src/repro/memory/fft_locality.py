"""Address traces for the local FFT phases, and the Mflops model
(Figure 7).

The hybrid algorithm's two computation phases have very different
locality:

* **Phase I** (cyclic layout): each processor performs *one large FFT*
  over its ``n/P`` local points — early stages stride half the array,
  so once ``16 * n/P`` bytes exceed the 64 KB cache every stage streams
  the whole array through it (capacity misses), and the large power-of-
  two strides collide in a direct-mapped cache (conflict misses);
* **Phase III** (blocked layout): the remaining ``log P`` columns
  decompose into ``n/P**2`` *independent small FFTs of P points* per
  processor ("the blocked phase which solves many small FFTs") — each
  only ``16 * P`` bytes, far below cache capacity, so the phase stays
  fast at every problem size.

This module generates the exact per-stage address streams of those
phases, counts misses with :class:`repro.memory.cache.Cache`, and maps
miss rates to Mflops with the paper's two calibration points (2.8
Mflops in-cache, 2.2 out-of-cache).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .cache import Cache

__all__ = [
    "fft_stage_addresses",
    "phase1_misses_per_node",
    "phase3_misses_per_node",
    "MflopsModel",
    "phase_mflops",
]


def _check_pow2(n: int, name: str = "n") -> int:
    if n < 2 or n & (n - 1):
        raise ValueError(f"{name} must be a power of two >= 2, got {n}")
    return int(math.log2(n))


def fft_stage_addresses(
    m: int, stage: int, element_bytes: int = 16, base: int = 0
) -> np.ndarray:
    """Byte addresses touched by DIF stage ``stage`` of an ``m``-point
    FFT stored contiguously at ``base``.

    Per butterfly the loop reads both elements and writes both back; the
    returned stream is the butterfly-ordered ``lo, hi, lo, hi`` element
    sequence (each element access stands for its read-modify-write,
    which touches one line).
    """
    bits = _check_pow2(m)
    if not 0 <= stage < bits:
        raise ValueError(f"stage {stage} out of range for m={m}")
    span = m >> stage
    half = span >> 1
    idx = np.arange(m).reshape(-1, span)
    lo = idx[:, :half].ravel()
    hi = idx[:, half:].ravel()
    inter = np.empty(2 * lo.size, dtype=np.int64)
    inter[0::2] = lo
    inter[1::2] = hi
    return base + inter * element_bytes


def phase1_misses_per_node(
    n: int, P: int, cache: Cache, element_bytes: int = 16
) -> float:
    """Misses per butterfly node for phase I: one (n/P)-point local FFT.

    Runs all ``log2(n/P)`` stages of the big local FFT through the cache
    and divides by the node count ``(n/P) * log2(n/P)``.
    """
    m = n // P
    bits = _check_pow2(m, "n/P")
    cache.reset()
    misses = 0
    for s in range(bits):
        misses += cache.access_block(fft_stage_addresses(m, s, element_bytes))
    return misses / (m * bits)


def phase3_misses_per_node(
    n: int, P: int, cache: Cache, element_bytes: int = 16
) -> float:
    """Misses per butterfly node for phase III: ``n/P**2`` independent
    P-point FFTs per processor, run back to back over the blocked chunk.
    """
    m = n // P
    sub = P  # each small FFT spans P points
    count = m // sub
    bits_sub = _check_pow2(sub, "P")
    cache.reset()
    misses = 0
    for k in range(count):
        base = k * sub * element_bytes
        for s in range(bits_sub):
            misses += cache.access_block(
                fft_stage_addresses(sub, s, element_bytes, base=base)
            )
    return misses / (m * bits_sub)


@dataclass(frozen=True, slots=True)
class MflopsModel:
    """Miss-rate -> Mflops mapping calibrated on the paper's endpoints.

    Per butterfly node: ``time_us = base_us + miss_penalty_us * misses``.
    The two constants are solved from the paper's two operating points:
    the in-cache regime (compulsory misses only, ~0.07 misses/node on
    the 64 KB/32 B configuration) runs at ``mflops_cached`` (2.8), and
    the streaming regime of a cache-overflowing phase-I FFT (~0.65
    misses/node measured on the same configuration) runs at
    ``mflops_streaming`` (2.2).  The paper counts 10 flops per butterfly
    (two node updates), i.e. 5 flops per node.
    """

    flops_per_node: float = 5.0
    mflops_cached: float = 2.8
    mflops_streaming: float = 2.2
    cached_misses_per_node: float = 0.07
    streaming_misses_per_node: float = 0.65

    @property
    def miss_penalty_us(self) -> float:
        fast = self.flops_per_node / self.mflops_cached
        slow = self.flops_per_node / self.mflops_streaming
        return (slow - fast) / (
            self.streaming_misses_per_node - self.cached_misses_per_node
        )

    @property
    def base_us(self) -> float:
        fast = self.flops_per_node / self.mflops_cached
        return fast - self.miss_penalty_us * self.cached_misses_per_node

    def mflops(self, misses_per_node: float) -> float:
        t = self.base_us + self.miss_penalty_us * misses_per_node
        return self.flops_per_node / t


def phase_mflops(
    n: int,
    P: int,
    phase: str,
    cache: Cache | None = None,
    model: MflopsModel | None = None,
) -> float:
    """Mflops/processor for ``phase`` (``"I"`` or ``"III"``) at FFT size
    ``n`` on ``P`` processors — one point of a Figure 7 curve."""
    if cache is None:
        cache = Cache(64 * 1024, 32, associativity=1)
    if model is None:
        model = MflopsModel()
    if phase == "I":
        mpn = phase1_misses_per_node(n, P, cache)
    elif phase == "III":
        mpn = phase3_misses_per_node(n, P, cache)
    else:
        raise ValueError(f"phase must be 'I' or 'III', got {phase!r}")
    return model.mflops(mpn)
