"""Memory-hierarchy substrate: the cache simulator and the FFT locality
study behind Figure 7."""

from .cache import Cache, CacheStats
from .fft_locality import (
    MflopsModel,
    fft_stage_addresses,
    phase1_misses_per_node,
    phase3_misses_per_node,
    phase_mflops,
)

__all__ = [
    "Cache",
    "CacheStats",
    "MflopsModel",
    "fft_stage_addresses",
    "phase1_misses_per_node",
    "phase3_misses_per_node",
    "phase_mflops",
]
