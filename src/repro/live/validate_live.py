"""Validating live runs: exact ordering/delivery clauses, banded timing,
and the differential check against the simulator.

The split that makes live validation trustworthy *and* CI-stable:

**Exact clauses** (:data:`EXACT_CLAUSES`) are ordering and delivery
invariants that hold on real hardware regardless of scheduler noise —
they rest on the Lamport clocks and per-pair sequence numbers carried in
every data frame, not on wall-clock:

* ``fifo``             — per ``(src, dst)``, deliveries occur in strictly
  increasing sequence order (TCP's promise, surfaced and checked);
* ``exactly-once``     — no ``(src, dst, seq)`` is delivered twice;
* ``phantom-delivery`` — every delivery has a matching ``send_commit``
  in the sender's log (killed senders exempt: their logs died with
  them, and their in-flight messages are *expected* orphans);
* ``message-loss``     — between two surviving ranks, every message
  that entered the wire is delivered;
* ``recv-after-send``  — a delivery's Lamport clock strictly exceeds
  its send commit's (causality, clock-skew-proof);
* ``barrier-coherence``— all surviving ranks cross the same barrier
  sequence, and no rank exits barrier ``n`` before every participant
  entered it;
* ``busy-overlap``     — one processor never does two things at once
  (single-threaded programs: this is a log-consistency check);
* ``value-parity``     — the differential clause: every surviving
  rank's return value equals the simulator replay's, bit for bit;
* ``message-count``    — per-pair message counts match the replay.

**Timing clauses** (:data:`TIMING_CLAUSES`) compare wall-clock spans to
the fitted model and hold only within a tolerance band — one knob,
``REPRO_LIVE_SLACK`` (:func:`live_slack`), deliberately generous by
default because a preempted process can stretch any single interval by
orders of magnitude.  A timing violation is a *warning*; CI exit codes
and ``LiveValidation.exact_ok`` look only at the exact clauses.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..core.params import LogPParams
from ..machines.fit import MeasuredLogP
from ..sim.machine import run_programs
from ..sim.validate import ToleranceBand, ValidationReport, validate_schedule
from .logs import LiveEvent, LiveResult

__all__ = [
    "EXACT_CLAUSES",
    "TIMING_CLAUSES",
    "LiveValidation",
    "live_slack",
    "validate_live",
]

#: Ordering/delivery invariants: exact on real hardware, always.
EXACT_CLAUSES = frozenset(
    {
        "fifo",
        "exactly-once",
        "phantom-delivery",
        "message-loss",
        "recv-after-send",
        "barrier-coherence",
        "busy-overlap",
        "value-parity",
        "message-count",
    }
)

#: Wall-clock comparisons against the fitted model: tolerance-banded.
TIMING_CLAUSES = frozenset(
    {
        "send-gap",
        "recv-gap",
        "overhead",
        "latency-bound",
        "latency-exact",
        "inject-before-overhead",
        "net-stall-negative",
        "recv-after-send-wall",
        "makespan-band",
    }
)

#: Default for ``REPRO_LIVE_SLACK`` — deliberately generous: a single
#: scheduler preemption stretches one interval ~50x the fitted ``o``.
_DEFAULT_SLACK = 10.0


def live_slack() -> float:
    """The single wall-clock tolerance knob (env ``REPRO_LIVE_SLACK``).

    All live *timing* assertions scale with this one number; the exact
    ordering/delivery clauses ignore it entirely.  Raise it on a noisy
    CI host; it can never mask a reordering, a duplicate, or a loss.
    """
    raw = os.environ.get("REPRO_LIVE_SLACK")
    if raw is None:
        return _DEFAULT_SLACK
    value = float(raw)
    if value <= 0:
        raise ValueError(f"REPRO_LIVE_SLACK must be > 0, got {raw!r}")
    return value


@dataclass(slots=True)
class LiveValidation:
    """Outcome of validating one live run.

    ``exact_ok`` gates CI (ordering/delivery/differential clauses only);
    ``ok`` additionally requires every banded timing clause.
    """

    report: ValidationReport
    fitted: MeasuredLogP
    params: LogPParams
    measured_makespan: float
    predicted_makespan: float | None = None
    slack: float = _DEFAULT_SLACK
    notes: list[str] = field(default_factory=list)

    @property
    def exact_violations(self) -> list:
        return [
            v for v in self.report.violations if v.rule not in TIMING_CLAUSES
        ]

    @property
    def timing_violations(self) -> list:
        return [v for v in self.report.violations if v.rule in TIMING_CLAUSES]

    @property
    def exact_ok(self) -> bool:
        return not self.exact_violations

    @property
    def ok(self) -> bool:
        return self.report.ok

    def summary(self) -> str:
        lines = [
            f"fitted: L={self.params.L:.3f} o={self.params.o:.3f} "
            f"g={self.params.g:.3f} (cycles; rtt={self.fitted.round_trip:.3f})",
            f"measured makespan: {self.measured_makespan:.1f} cycles",
        ]
        if self.predicted_makespan is not None:
            ratio = (
                self.measured_makespan / self.predicted_makespan
                if self.predicted_makespan
                else float("inf")
            )
            lines.append(
                f"predicted makespan: {self.predicted_makespan:.1f} cycles "
                f"(measured/predicted = {ratio:.2f})"
            )
        lines.append(
            f"exact clauses: {len(self.exact_violations)} violation(s); "
            f"timing clauses: {len(self.timing_violations)} "
            f"(slack={self.slack:g})"
        )
        lines.extend(str(v) for v in self.report.violations[:10])
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "fitted": {
                "L": self.params.L,
                "o": self.params.o,
                "g": self.params.g,
                "round_trip": self.fitted.round_trip,
                "pipeline_depth": self.fitted.pipeline_depth,
            },
            "measured_makespan": self.measured_makespan,
            "predicted_makespan": self.predicted_makespan,
            "slack": self.slack,
            "exact_ok": self.exact_ok,
            "ok": self.ok,
            "exact_violations": [str(v) for v in self.exact_violations],
            "timing_violations": [str(v) for v in self.timing_violations],
            "notes": list(self.notes),
        }


def _events_of(log: list[LiveEvent], kind: str) -> list[LiveEvent]:
    return [e for e in log if e.kind == kind]


def _check_delivery_invariants(
    result: LiveResult, report: ValidationReport
) -> None:
    """The raw-log exact clauses: fifo, exactly-once, phantoms, loss,
    causality.  These read the per-rank event logs directly — the
    schedule view's monotonicity clamps never touch them."""
    killed = set(result.killed)
    sends: dict[tuple[int, int, int], LiveEvent] = {}
    wires: dict[tuple[int, int, int], LiveEvent] = {}
    for log in result.rank_events:
        for e in log:
            if e.kind == "send_commit":
                sends[(e.rank, e.peer, e.seq)] = e
            elif e.kind == "wire_out":
                wires[(e.rank, e.peer, e.seq)] = e

    delivered: dict[tuple[int, int, int], LiveEvent] = {}
    for dst, log in enumerate(result.rank_events):
        last_seq: dict[int, int] = {}
        for e in log:
            if e.kind != "delivery":
                continue
            src, seq = e.peer, e.seq
            key = (src, dst, seq)
            if key in delivered:
                report.add(
                    "exactly-once",
                    dst,
                    e.t,
                    f"message {src}->{dst} seq {seq} delivered twice",
                )
            delivered[key] = e
            prev = last_seq.get(src)
            if prev is not None and seq <= prev:
                report.add(
                    "fifo",
                    dst,
                    e.t,
                    f"delivery {src}->{dst} seq {seq} after seq {prev} "
                    "(per-pair FIFO broken)",
                )
            last_seq[src] = max(seq, prev if prev is not None else seq)
            commit = sends.get(key)
            if commit is None:
                if src not in killed:
                    report.add(
                        "phantom-delivery",
                        dst,
                        e.t,
                        f"delivery {src}->{dst} seq {seq} has no send_commit "
                        "in the sender's log",
                    )
                continue
            if e.clock <= commit.clock:
                report.add(
                    "recv-after-send",
                    dst,
                    e.t,
                    f"delivery {src}->{dst} seq {seq} at Lamport {e.clock} "
                    f"<= send commit's {commit.clock} (causality broken)",
                )
            if e.t < commit.t - 1e-9:
                report.add(
                    "recv-after-send-wall",
                    dst,
                    e.t,
                    f"delivery {src}->{dst} seq {seq} at t={e.t:.3f} before "
                    f"its send commit at t={commit.t:.3f} (clock skew)",
                )

    for key, wire in wires.items():
        src, dst, _seq = key
        if src in killed or dst in killed:
            continue
        if key not in delivered:
            report.add(
                "message-loss",
                dst,
                wire.t,
                f"message {src}->{dst} seq {key[2]} entered the wire but "
                "was never delivered",
            )


def _check_barrier_coherence(
    result: LiveResult, report: ValidationReport
) -> None:
    killed = set(result.killed)
    survivors = [r for r in range(result.P) if r not in killed]
    seqs = {
        r: [e.seq for e in _events_of(result.rank_events[r], "barrier_enter")]
        for r in survivors
    }
    if not survivors:
        return
    reference = seqs[survivors[0]]
    for r in survivors[1:]:
        if seqs[r] != reference:
            report.add(
                "barrier-coherence",
                r,
                0.0,
                f"rank {r} crossed barriers {seqs[r]}, rank "
                f"{survivors[0]} crossed {reference}",
            )
            return
    for n in reference:
        enters = [
            e.t
            for r in survivors
            for e in _events_of(result.rank_events[r], "barrier_enter")
            if e.seq == n
        ]
        exits = [
            (r, e.t)
            for r in survivors
            for e in _events_of(result.rank_events[r], "barrier_exit")
            if e.seq == n
        ]
        if not enters or not exits:
            continue
        latest_enter = max(enters)
        for r, t in exits:
            if t < latest_enter - 1e-9:
                report.add(
                    "barrier-coherence",
                    r,
                    t,
                    f"rank {r} exited barrier {n} at t={t:.3f} before the "
                    f"last participant entered at t={latest_enter:.3f}",
                )


def _check_differential(
    result: LiveResult,
    programs,
    params: LogPParams,
    slack: float,
    rtt: float,
    report: ValidationReport,
) -> float | None:
    """Replay the same program on the simulator at the fitted parameters;
    values and message counts must match exactly, makespan in band."""
    factory = _rebuild(programs)
    sim = run_programs(params, factory, trace=True)
    killed = set(result.killed)
    for rank in range(result.P):
        if rank in killed:
            continue
        live_v, sim_v = result.value(rank), sim.value(rank)
        if live_v != sim_v:
            report.add(
                "value-parity",
                rank,
                0.0,
                f"rank {rank} returned {live_v!r} live but {sim_v!r} on the "
                "simulator replay",
            )
    live_counts: dict[tuple[int, int], int] = {}
    for log in result.rank_events:
        for e in log:
            if e.kind == "send_commit" and e.rank not in killed:
                pair = (e.rank, e.peer)
                live_counts[pair] = live_counts.get(pair, 0) + 1
    sim_counts: dict[tuple[int, int], int] = {}
    for m in sim.schedule.messages:
        pair = (m.src, m.dst)
        sim_counts[pair] = sim_counts.get(pair, 0) + 1
    if live_counts != sim_counts:
        diff = {
            pair: (live_counts.get(pair, 0), sim_counts.get(pair, 0))
            for pair in set(live_counts) | set(sim_counts)
            if live_counts.get(pair, 0) != sim_counts.get(pair, 0)
        }
        report.add(
            "message-count",
            -1,
            0.0,
            f"per-pair (live, sim) message counts differ: {diff}",
        )
    predicted = sim.makespan
    tolerance = slack * max(predicted, 0.0) + slack * rtt
    if abs(result.makespan - predicted) > tolerance:
        report.add(
            "makespan-band",
            -1,
            result.makespan,
            f"live makespan {result.makespan:.1f} vs predicted "
            f"{predicted:.1f} exceeds band +/-{tolerance:.1f}",
        )
    return predicted


def _rebuild(programs):
    """Resolve a registry marker to a factory for the simulator replay."""
    if (
        isinstance(programs, tuple)
        and len(programs) == 4
        and programs[0] == "registry"
    ):
        from ..serve.registry import build

        _tag, name, args, seed = programs
        return build(name, dict(args or {}), seed)
    return programs


def validate_live(
    result: LiveResult,
    fitted: MeasuredLogP,
    *,
    programs=None,
    slack: float | None = None,
) -> LiveValidation:
    """Run every live-run check; see the module docstring for the clause
    catalogue and the exact/banded split.

    Args:
        result: the live run to validate.
        fitted: host parameters from :func:`~repro.live.calibrate.fit_live`
            (scales every tolerance band and parameterizes the replay).
        programs: the same factory (or registry marker) the run executed
            — enables the differential clauses (``value-parity``,
            ``message-count``, ``makespan-band``).  ``None`` skips them.
        slack: override :func:`live_slack`.
    """
    S = live_slack() if slack is None else slack
    params = fitted.as_params(result.P, name="live-fit")
    report = ValidationReport()

    _check_delivery_invariants(result, report)
    _check_barrier_coherence(result, report)

    # The timing clauses: schedule view against the fitted model, every
    # wall-clock comparison in a band scaled by the one knob.  Capacity
    # is off (the host kernel's in-flight allowance is not ceil(L/g));
    # busy-overlap inside this pass stays exact.
    band = ToleranceBand(rel=S, abs=S * max(fitted.round_trip, 0.0))
    sched_report = validate_schedule(
        result.schedule(params),
        band=band,
        check_capacity=False,
    )
    report.violations.extend(sched_report.violations)

    predicted = None
    notes: list[str] = []
    if programs is not None:
        if result.killed:
            notes.append(
                "differential replay skipped: run had chaos-killed ranks"
            )
        else:
            predicted = _check_differential(
                result, programs, params, S, fitted.round_trip, report
            )
    return LiveValidation(
        report=report,
        fitted=fitted,
        params=params,
        measured_makespan=result.makespan,
        predicted_makespan=predicted,
        slack=S,
        notes=notes,
    )
