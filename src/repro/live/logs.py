"""Structured event logs of live runs and the :class:`LiveResult`.

Each rank records a timestamped, logically-clocked event stream while
it runs — send commits, wire entries, deliveries, recv returns, compute
spans, barrier crossings, suspicions — and ships it to the coordinator
with its final value.  :class:`LiveResult` is the live mirror of
:class:`~repro.sim.machine.MachineResult`: per-rank
:class:`~repro.sim.program.ProgramResult`\\ s, a merged event feed, the
makespan, and a :meth:`LiveResult.schedule` view that reconstructs a
:class:`~repro.core.schedule.Schedule` (SEND/COMPUTE intervals plus
:class:`~repro.core.schedule.MessageRecord` lifecycles) so the same
validator machinery that checks simulated traces can check physical
ones.

Event kinds:

``start``/``finish``      rank program lifecycle;
``send_commit``           program issued ``Send`` (pre-syscall);
``wire_out``              the send syscall returned (message committed
                          to the kernel — the live "injection");
``send_failed``           the peer's interface was dead;
``delivery``              receiver thread pulled the frame off the wire;
``recv_return``           ``Recv`` handed the message to the program;
``recv_timeout``          a bounded ``Recv`` elapsed;
``compute_begin``/``_end`` a ``Compute`` span;
``barrier_enter``/``_exit`` hardware-barrier crossings (``seq`` is the
                          barrier index);
``poll``                  a ``Poll`` snapshot (``seq`` = count);
``suspect``               the heartbeat detector suspected ``peer``.

Every message-related event carries ``(peer, seq)`` where ``seq`` is
the per-``(src, dst)`` sequence number stamped at send time — the
backbone of the exact FIFO / exactly-once clauses.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from ..core.params import LogPParams
from ..core.schedule import Activity, MessageRecord, Schedule
from ..sim.program import ProgramResult

__all__ = ["EventLog", "LiveEvent", "LiveMessage", "LiveResult"]


@dataclass(frozen=True, slots=True)
class LiveEvent:
    """One entry of a rank's event log.

    ``t`` is in cycles since the run epoch; ``clock`` is the rank's
    Lamport clock at the event.  ``peer``/``seq`` are -1 when the kind
    has no peer or sequence component."""

    t: float
    rank: int
    kind: str
    clock: int
    peer: int = -1
    seq: int = -1
    info: str = ""

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)


class EventLog:
    """Append-only per-rank event collector (GIL-atomic appends, so the
    receiver and heartbeat threads share it with the program thread)."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.events: list[LiveEvent] = []

    def append(
        self,
        kind: str,
        t: float,
        clock: int,
        peer: int = -1,
        seq: int = -1,
        info: str = "",
    ) -> None:
        self.events.append(LiveEvent(t, self.rank, kind, clock, peer, seq, info))


@dataclass(frozen=True, slots=True)
class LiveMessage:
    """One message's cross-rank lifecycle, joined from both logs.

    ``delivery``/``recv_return`` (and their clocks) are ``None`` for a
    message that was never delivered (receiver crashed or still queued
    at teardown); ``send_commit``/``wire_out`` are ``None`` for a
    delivery whose sender's log was lost (a chaos-killed rank)."""

    src: int
    dst: int
    seq: int
    send_commit: float | None
    wire_out: float | None
    send_clock: int | None
    delivery: float | None
    recv_return: float | None
    delivery_clock: int | None


@dataclass(slots=True)
class LiveResult:
    """Everything a live run produces (mirror of ``MachineResult``).

    Times are in cycles since the shared epoch.  ``killed`` lists ranks
    the chaos harness ``SIGKILL``\\ ed (their logs die with them);
    ``exitcodes[r]`` is the OS exit status of rank ``r``'s process."""

    P: int
    config: Any  # LiveConfig (kept loose to avoid an import cycle)
    makespan: float
    results: list[ProgramResult]
    rank_events: list[list[LiveEvent]]
    exitcodes: list[int | None]
    killed: list[int] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)

    def value(self, rank: int) -> Any:
        return self.results[rank].value

    def values(self) -> list[Any]:
        return [r.value for r in self.results]

    @property
    def events(self) -> list[LiveEvent]:
        """All ranks' events merged, ordered by ``(t, clock, rank)``."""
        merged = [e for log in self.rank_events for e in log]
        merged.sort(key=lambda e: (e.t, e.clock, e.rank))
        return merged

    def suspects(self, rank: int) -> frozenset[int]:
        """Ranks that ``rank``'s live failure detector suspected."""
        return frozenset(
            e.peer for e in self.rank_events[rank] if e.kind == "suspect"
        )

    @property
    def total_messages(self) -> int:
        return sum(
            1 for log in self.rank_events for e in log if e.kind == "send_commit"
        )

    def messages(self) -> list[LiveMessage]:
        """Join send-side and receive-side logs into message lifecycles."""
        sends: dict[tuple[int, int, int], tuple[LiveEvent, LiveEvent | None]] = {}
        for log in self.rank_events:
            commit: dict[tuple[int, int], LiveEvent] = {}
            for e in log:
                if e.kind == "send_commit":
                    commit[(e.peer, e.seq)] = e
                    sends[(e.rank, e.peer, e.seq)] = (e, None)
                elif e.kind == "wire_out":
                    c = commit.get((e.peer, e.seq))
                    if c is not None:
                        sends[(e.rank, e.peer, e.seq)] = (c, e)
        deliveries: dict[tuple[int, int, int], LiveEvent] = {}
        recv_returns: dict[tuple[int, int, int], LiveEvent] = {}
        order: list[tuple[int, int, int]] = []
        for log in self.rank_events:
            for e in log:
                if e.kind == "delivery":
                    key = (e.peer, e.rank, e.seq)
                    if key not in deliveries:
                        order.append(key)
                    deliveries[key] = e
                elif e.kind == "recv_return":
                    recv_returns[(e.peer, e.rank, e.seq)] = e
        out: list[LiveMessage] = []
        seen: set[tuple[int, int, int]] = set()
        for key in list(sends) + [k for k in order if k not in sends]:
            if key in seen:
                continue
            seen.add(key)
            src, dst, seq = key
            commit_wire = sends.get(key)
            dlv = deliveries.get(key)
            ret = recv_returns.get(key)
            out.append(
                LiveMessage(
                    src=src,
                    dst=dst,
                    seq=seq,
                    send_commit=commit_wire[0].t if commit_wire else None,
                    wire_out=(
                        commit_wire[1].t
                        if commit_wire and commit_wire[1] is not None
                        else None
                    ),
                    send_clock=(
                        commit_wire[1].clock
                        if commit_wire and commit_wire[1] is not None
                        else (commit_wire[0].clock if commit_wire else None)
                    ),
                    delivery=dlv.t if dlv else None,
                    recv_return=ret.t if ret else None,
                    delivery_clock=dlv.clock if dlv else None,
                )
            )
        out.sort(key=lambda m: (m.src, m.dst, m.seq))
        return out

    def schedule(self, params: LogPParams) -> Schedule:
        """A :class:`~repro.core.schedule.Schedule` view of the run.

        ``params`` supplies the model the schedule claims to run under
        (typically the *fitted* host parameters).  SEND intervals are
        ``[send_commit, wire_out]`` (the time the processor was engaged
        in the send syscall), COMPUTE intervals are the logged spans;
        reception is asynchronous live (a dedicated thread), so no RECV
        intervals are emitted.  Message timelines are clamped to be
        monotone: cross-process timestamps of causally ordered events
        can interleave by microseconds at syscall granularity, and the
        schedule is a *timing* view — the exact ordering clauses read
        the raw logs, not this."""
        if params.P < self.P:
            raise ValueError(
                f"schedule params have P={params.P} < live P={self.P}"
            )
        sched = Schedule(params=params)
        for rank, log in enumerate(self.rank_events):
            tl = sched.timeline(rank)
            open_spans: dict[str, LiveEvent] = {}
            for e in log:
                if e.kind in ("send_commit", "compute_begin"):
                    open_spans[e.kind] = e
                elif e.kind == "wire_out":
                    c = open_spans.pop("send_commit", None)
                    if c is not None:
                        tl.add(_interval(c.t, e.t, Activity.SEND, f"-> {e.peer}"))
                elif e.kind == "compute_end":
                    c = open_spans.pop("compute_begin", None)
                    if c is not None:
                        tl.add(_interval(c.t, e.t, Activity.COMPUTE, e.info))
        for m in self.messages():
            if m.send_commit is None or m.delivery is None or m.recv_return is None:
                continue  # lost sender log (chaos) or undelivered: no full lifecycle
            inject = max(m.wire_out if m.wire_out is not None else m.send_commit,
                         m.send_commit)
            arrive = max(m.delivery, inject)
            recv_start = max(m.recv_return, arrive)
            sched.add_message(
                MessageRecord(
                    src=m.src,
                    dst=m.dst,
                    send_start=m.send_commit,
                    inject=inject,
                    arrive=arrive,
                    recv_start=recv_start,
                    recv_end=recv_start,
                    tag=str(m.seq),
                )
            )
        sched.sort_all()
        return sched

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable summary (the CI artifact shape)."""
        return {
            "P": self.P,
            "makespan": self.makespan,
            "total_messages": self.total_messages,
            "killed": list(self.killed),
            "exitcodes": list(self.exitcodes),
            "values": [repr(v) for v in self.values()],
            "events_per_rank": [len(log) for log in self.rank_events],
        }


def _interval(start: float, end: float, kind: Activity, detail: str):
    from ..core.schedule import Interval

    return Interval(start, max(end, start), kind, detail)
