"""``repro.live``: a real multiprocess/TCP execution backend.

Every other backend in this repository — the event-driven
:class:`~repro.sim.machine.LogPMachine`, the compiled schedule
evaluator, the serve layer — is simulation all the way down.  This
package closes the loop the paper itself closes against the CM-5:
it runs *unmodified* :mod:`repro.sim.program` programs as ``P`` real
operating-system processes connected over localhost TCP sockets, logs
every send/delivery/compute span with wall-clock timestamps and Lamport
logical clocks, fits effective ``(L, o, g)`` parameters to the host
with the same microbenchmark structure :mod:`repro.machines.fit` uses
against the simulator, and differentially validates the physical run
against a :class:`~repro.sim.machine.LogPMachine` replay at the fitted
parameters.

Layers (bottom up):

* :mod:`.transport` — length-prefixed pickle frames over a full TCP
  mesh, per-rank Lamport clocks, the mailbox, and the live heartbeat
  failure detector (a real thread emitting real packets).
* :mod:`.logs` — the structured event log each rank records, the
  cross-rank merge, and :class:`~repro.live.logs.LiveResult` (the
  live mirror of :class:`~repro.sim.machine.MachineResult`, including
  a :class:`~repro.core.schedule.Schedule` view of the run).
* :mod:`.ranks` — the per-process action interpreter: drives a program
  generator, giving ``Send``/``Recv``/``Compute``/``Barrier``/``Poll``/
  ``Now``/``Suspects`` their physical semantics.
* :mod:`.coordinator` — :func:`~repro.live.coordinator.run_live`:
  spawns ranks, brokers the mesh, serves the hardware barrier, injects
  chaos (``SIGKILL`` mid-run), and assembles the result.
* :mod:`.calibrate` — :func:`~repro.live.calibrate.fit_live`: the
  microbenchmark suite against the live transport.
* :mod:`.validate_live` — exact ordering/delivery invariants plus
  tolerance-band timing clauses and the differential check against the
  simulator (see ``REPRO_LIVE_SLACK``).

Quickstart: ``python -m repro.live --validate`` (see ``--help``).
"""

from __future__ import annotations

from .calibrate import LiveRunner, fit_live
from .coordinator import ChaosSpec, family_program, run_chaos, run_live
from .logs import LiveEvent, LiveResult
from .transport import LiveConfig
from .validate_live import (
    EXACT_CLAUSES,
    TIMING_CLAUSES,
    LiveValidation,
    live_slack,
    validate_live,
)

__all__ = [
    "ChaosSpec",
    "EXACT_CLAUSES",
    "LiveConfig",
    "LiveEvent",
    "LiveResult",
    "LiveRunner",
    "LiveValidation",
    "TIMING_CLAUSES",
    "family_program",
    "fit_live",
    "live_slack",
    "run_chaos",
    "run_live",
    "validate_live",
]
