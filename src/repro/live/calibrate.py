"""Fitting effective LogP parameters to the live host.

The paper's Section 7 program — determine a machine's ``(L, o, g)`` by
microbenchmark — applied to the machine we actually have: ``P`` Python
processes over localhost TCP.  :class:`LiveRunner` adapts the live
backend to the runner protocol of :func:`repro.machines.fit.measure_logp`,
so the *identical probe programs* that recover hidden parameters from
the simulator (closed-loop) time real sockets here:

* ``o``   — wall-clock of one ``Send`` (pickle + sendall syscall);
* ``L``   — from the ping-pong RTT via ``RTT = 2L + 4o``;
* ``g``   — the receiver's saturated drain interval ``max(g, o)``;
* depth — the outstanding-ops knee (capped low: each probe step is a
  full multiprocess run).

Numbers come back in *cycles* (``LiveConfig.cycle_ns`` per cycle), the
same unit programs compute in, so the fitted
:class:`~repro.machines.fit.MeasuredLogP` drops straight into
``as_params(P)`` for the differential replay on the simulator.

Single-sample wall-clock timings are hostage to scheduler noise, so
every probe runs ``trials`` times and the *minimum* is kept — the
standard microbenchmark estimator (noise on a host is strictly
additive; the minimum is the closest observation to the machine's
floor).
"""

from __future__ import annotations

from ..machines.fit import MeasuredLogP, measure_logp
from .coordinator import run_live
from .transport import LiveConfig

__all__ = ["LiveRunner", "fit_live"]


class LiveRunner:
    """Runner adapter: execute probe programs on real ranks.

    Satisfies the ``measure_logp`` runner protocol (``P`` plus
    ``run_values(factory)``).  ``trials`` runs each probe program that
    returns a number several times and keeps the per-rank minimum —
    min-of-trials is how one benchmarks a noisy host.
    """

    def __init__(
        self,
        P: int,
        config: LiveConfig | None = None,
        trials: int = 3,
    ) -> None:
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        self.P = P
        self.config = config or LiveConfig()
        self.trials = trials
        self.runs = 0

    def run_values(self, factory) -> list:
        best: list | None = None
        for _ in range(self.trials):
            values = run_live(factory, self.P, config=self.config).values()
            self.runs += 1
            if best is None:
                best = values
            else:
                best = [
                    min(b, v)
                    if isinstance(b, (int, float)) and isinstance(v, (int, float))
                    else (b if b is not None else v)
                    for b, v in zip(best, values)
                ]
        return best or []


def fit_live(
    P: int = 3,
    config: LiveConfig | None = None,
    *,
    trials: int = 3,
    measure_depth: bool = True,
    max_depth: int = 6,
) -> MeasuredLogP:
    """Fit effective ``(L, o, g)`` (in cycles) to the live transport.

    ``P >= 3`` (the gap probe needs two senders flooding one receiver).
    ``max_depth`` caps the capacity-knee search: unlike the simulator,
    every probe step costs a real multiprocess spawn, and localhost TCP
    saturates within a handful of outstanding ops anyway.

    The returned ``MeasuredLogP`` may carry a small negative ``L`` on a
    jittery host (the ``4o`` subtraction overshooting);
    ``as_params(P)`` clamps it to 0.
    """
    if P < 3:
        raise ValueError("fit_live needs P >= 3 for the gap probe")
    runner = LiveRunner(P, config, trials=trials)
    return measure_logp(runner, measure_depth=measure_depth, max_depth=max_depth)
