"""``python -m repro.live`` — run, fit, validate, and chaos-test the
live backend from the command line.

Modes (combinable):

* default           — run each requested family on real ranks, print
                      makespans and values;
* ``--validate``    — additionally fit ``(L, o, g)`` to the host and
                      differentially validate every family run against
                      a simulator replay at the fitted parameters;
* ``--chaos``       — SIGKILL a rank mid-run and require every
                      survivor's heartbeat detector to suspect exactly
                      the victim.

Exit status is nonzero only on *exact*-clause violations (ordering,
delivery, value parity) or a failed chaos detection — wall-clock timing
deviations print as warnings, scaled by ``REPRO_LIVE_SLACK``
(see :mod:`repro.live.validate_live`).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from ..hostinfo import host_fingerprint
from .calibrate import fit_live
from .coordinator import family_program, run_chaos, run_live
from .transport import LiveConfig
from .validate_live import live_slack, validate_live

_DEFAULT_FAMILIES = ["stream", "flood", "bcast_tree"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live",
        description="Run LogP programs on real processes over localhost TCP.",
    )
    parser.add_argument(
        "--ranks", type=int, default=4, help="number of rank processes (default 4)"
    )
    parser.add_argument(
        "--families",
        nargs="+",
        default=_DEFAULT_FAMILIES,
        help=f"registry program families to run (default {_DEFAULT_FAMILIES})",
    )
    parser.add_argument(
        "--k", type=int, default=8, help="per-family message count (default 8)"
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="fit (L, o, g) to the host and differentially validate each run",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="SIGKILL a rank mid-run; require heartbeat detection",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write a JSON report to PATH"
    )
    parser.add_argument(
        "--cycle-ns",
        type=float,
        default=20_000.0,
        help="wall-clock nanoseconds per cycle (default 20000 = 20us)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=60.0,
        help="wall-clock seconds before a run is killed (default 60)",
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=None,
        help="override REPRO_LIVE_SLACK for timing tolerances",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=3,
        help="calibration trials per probe (min kept; default 3)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="seed passed to family builders"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.ranks < 2:
        print("live runs need --ranks >= 2", file=sys.stderr)
        return 2
    config = LiveConfig(cycle_ns=args.cycle_ns, deadline_s=args.deadline)
    slack = args.slack if args.slack is not None else live_slack()
    report: dict = {
        "host": host_fingerprint(),
        "ranks": args.ranks,
        "cycle_ns": args.cycle_ns,
        "slack": slack,
        "families": {},
    }
    failures = 0

    fitted = None
    if args.validate:
        fit_P = 3  # the probe set needs exactly 2 senders + 1 receiver
        print(f"fitting (L, o, g) to this host ({fit_P} ranks, "
              f"{args.trials} trials per probe) ...")
        fitted = fit_live(
            fit_P, config, trials=args.trials, measure_depth=True, max_depth=6
        )
        print(
            f"  fitted: o={fitted.o:.3f} L={fitted.L:.3f} "
            f"g={fitted.effective_g:.3f} cycles "
            f"(rtt={fitted.round_trip:.3f}, depth={fitted.pipeline_depth})"
        )
        report["fitted"] = {
            "o": fitted.o,
            "L": fitted.L,
            "effective_g": fitted.effective_g,
            "round_trip": fitted.round_trip,
            "pipeline_depth": fitted.pipeline_depth,
        }

    for name in args.families:
        marker = family_program(name, {"k": args.k}, args.seed)
        print(f"running {name!r} (k={args.k}) on {args.ranks} ranks ...")
        result = run_live(marker, args.ranks, config=config)
        entry: dict = {
            "makespan": result.makespan,
            "messages": result.total_messages,
            "values": [repr(v) for v in result.values()],
        }
        print(
            f"  makespan {result.makespan:.1f} cycles, "
            f"{result.total_messages} messages"
        )
        if args.validate and fitted is not None:
            validation = validate_live(
                result, fitted, programs=marker, slack=slack
            )
            entry["validation"] = validation.as_dict()
            status = "PASS" if validation.exact_ok else "FAIL"
            print(f"  exact clauses: {status}", end="")
            if validation.predicted_makespan is not None:
                print(
                    f"; predicted {validation.predicted_makespan:.1f} vs "
                    f"measured {validation.measured_makespan:.1f} cycles",
                    end="",
                )
            print()
            for v in validation.exact_violations:
                failures += 1
                print(f"  EXACT VIOLATION: {v}", file=sys.stderr)
            for v in validation.timing_violations:
                print(f"  timing (warning): {v}")
        report["families"][name] = entry

    if args.chaos:
        print(f"chaos: SIGKILL one of {args.ranks} ranks mid-run ...")
        outcome = run_chaos(args.ranks, config=config)
        detected = outcome.detected_by_all and outcome.sigkilled
        report["chaos"] = {
            "victim": outcome.victim,
            "kill_at": outcome.kill_at,
            "exitcode": outcome.result.exitcodes[outcome.victim],
            "suspects_by_rank": {
                str(r): s for r, s in outcome.suspects_by_rank.items()
            },
            "detection_times": {
                str(r): t for r, t in outcome.detection_times.items()
            },
            "detected": detected,
        }
        sig = outcome.result.exitcodes[outcome.victim]
        print(
            f"  victim rank {outcome.victim} exitcode {sig} "
            f"(SIGKILL={-signal.SIGKILL}); survivor suspect sets: "
            f"{outcome.suspects_by_rank}"
        )
        if detected:
            print("  chaos detection: PASS")
        else:
            failures += 1
            print("  chaos detection: FAIL", file=sys.stderr)

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report written to {args.json}")

    if failures:
        print(f"{failures} exact failure(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
