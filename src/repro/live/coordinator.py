"""Spawning, brokering, and harvesting a live run.

:func:`run_live` is the live analogue of
:func:`~repro.sim.machine.run_programs`: hand it a *picklable*
``(rank, P) -> generator`` program factory (or a registry marker from
:func:`family_program`) and it spawns ``P`` real OS processes, brokers
the TCP mesh, serves the hardware barrier, optionally ``SIGKILL``\\ s a
victim mid-run (:class:`ChaosSpec`), and assembles a
:class:`~repro.live.logs.LiveResult` from the ranks' event logs.

The coordinator stays single-threaded (fork-safety: no locks are held
when rank processes fork off) and drives all control sockets through
one ``selectors`` loop with an absolute deadline — a wedged rank, a
dead peer, or a lost connection can never hang the caller; stragglers
are killed and reported.

The hardware barrier is served centrally: a rank entering barrier ``n``
sends one control frame and blocks until the coordinator has seen all
*live, unfinished* ranks enter ``n`` (a chaos-killed rank is excused —
the surviving ranks' barrier must not deadlock on a corpse), then every
waiter gets a release frame.  This mirrors the CM-5 control-network
barrier the simulator models, including its all-exit-together shape.
"""

from __future__ import annotations

import pickle
import selectors
import signal
import socket
import time
from dataclasses import dataclass

from ..sim.program import ProgramResult
from .logs import LiveResult
from .ranks import rank_main
from .transport import LiveConfig, recv_frame, send_frame

__all__ = ["ChaosSpec", "WatchProgram", "family_program", "run_chaos", "run_live"]


def family_program(name: str, args: dict | None = None, seed: int | None = None):
    """A registry marker shipped to ranks *by name* (not by pickle of the
    program object): each rank rebuilds the family worker-side via
    :func:`repro.serve.registry.build` — the path the registry
    determinism guard in the test suite pins bit-identical."""
    from ..serve.registry import get_family

    get_family(name)  # unknown families refuse in the parent, loudly
    return ("registry", name, tuple(sorted((args or {}).items())), seed)


@dataclass(frozen=True, slots=True)
class ChaosSpec:
    """Kill ``victim`` with ``SIGKILL`` ``at`` cycles after the epoch."""

    victim: int
    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"chaos kill time must be >= 0, got {self.at}")


class LiveRunError(RuntimeError):
    """A rank errored, disappeared, or the run exceeded its deadline."""


def _pickle_spec(spec: dict) -> bytes:
    try:
        return pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise TypeError(
            "live programs must be picklable (module-level callables or "
            "program classes; closures are not) — ship registry families "
            f"with family_program(name) instead: {exc}"
        ) from exc


def run_live(
    programs,
    P: int,
    *,
    config: LiveConfig | None = None,
    chaos: ChaosSpec | None = None,
) -> LiveResult:
    """Run ``programs`` as ``P`` real processes over localhost TCP.

    Args:
        programs: picklable ``(rank, P) -> generator`` factory, or a
            :func:`family_program` marker.
        P: number of ranks (``>= 1``).
        config: live knobs (:class:`~repro.live.transport.LiveConfig`).
        chaos: optionally ``SIGKILL`` one rank mid-run; its log dies
            with it and it is reported in ``LiveResult.killed``.

    Raises:
        LiveRunError: a rank raised (the remote traceback is included),
            vanished without being chaos-killed, or the deadline passed.
        TypeError: the program factory is not picklable.
    """
    import multiprocessing

    if P < 1:
        raise ValueError(f"P must be >= 1, got {P}")
    config = config or LiveConfig()
    if chaos is not None and not 0 <= chaos.victim < P:
        raise ValueError(f"chaos victim {chaos.victim} out of range 0..{P - 1}")
    ctx = multiprocessing.get_context(config.resolved_start_method())
    deadline = time.monotonic() + config.deadline_s

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind((config.host, 0))
    listener.listen(P)
    coord_port = listener.getsockname()[1]

    specs = [
        _pickle_spec(
            {
                "rank": rank,
                "P": P,
                "config": config,
                "coordinator": (config.host, coord_port),
                "program": programs,
            }
        )
        for rank in range(P)
    ]
    procs = [
        ctx.Process(target=rank_main, args=(spec,), name=f"live-rank-{rank}")
        for rank, spec in enumerate(specs)
    ]
    for proc in procs:
        proc.start()

    controls: dict[int, socket.socket] = {}
    results: dict[int, ProgramResult] = {}
    logs: dict[int, list] = {}
    errors: dict[int, str] = {}
    killed: list[int] = []
    vanished: set[int] = set()

    def _cleanup(kill: bool) -> None:
        for sock in controls.values():
            try:
                sock.close()
            except OSError:
                pass
        listener.close()
        for proc in procs:
            if kill and proc.is_alive():
                proc.kill()
            proc.join(timeout=5.0)

    try:
        # Phase 1: collect hellos (rank -> data port).
        ports: list[int | None] = [None] * P
        for _ in range(P):
            listener.settimeout(max(0.1, deadline - time.monotonic()))
            sock, _addr = listener.accept()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(max(0.1, deadline - time.monotonic()))
            kind, rank, data_port = recv_frame(sock)
            if kind != "hello":
                raise LiveRunError(f"expected hello, got {kind!r}")
            controls[rank] = sock
            ports[rank] = data_port
        # Phase 2: broadcast the port map; collect readiness.
        for sock in controls.values():
            send_frame(sock, ("ports", ports))
        for rank, sock in controls.items():
            kind = recv_frame(sock)[0]
            if kind == "error":
                raise LiveRunError(f"rank {rank} failed during mesh setup")
            if kind != "ready":
                raise LiveRunError(f"expected ready from rank {rank}, got {kind!r}")
        # Phase 3: shared epoch; release the ranks.
        epoch = time.monotonic() + config.settle_s
        for sock in controls.values():
            send_frame(sock, ("go", epoch))

        kill_at = None if chaos is None else epoch + chaos.at * config.cycle_s

        # Phase 4: the event loop — barriers, results, errors, chaos.
        sel = selectors.DefaultSelector()
        for rank, sock in controls.items():
            sock.settimeout(None)
            sel.register(sock, selectors.EVENT_READ, rank)
        barrier_waiting: dict[int, set[int]] = {}

        def _expected_at_barrier() -> set[int]:
            return {
                r
                for r in range(P)
                if r not in results
                and r not in errors
                and r not in killed
                and r not in vanished
            }

        def _release_ready_barriers() -> None:
            for n, waiters in list(barrier_waiting.items()):
                if waiters >= _expected_at_barrier():
                    for r in waiters:
                        sock = controls.get(r)
                        if sock is not None:
                            try:
                                send_frame(sock, ("release", n))
                            except OSError:
                                vanished.add(r)
                    del barrier_waiting[n]

        def _outstanding() -> set[int]:
            return {
                r
                for r in range(P)
                if r not in results
                and r not in errors
                and r not in killed
                and r not in vanished
            }

        try:
            while _outstanding():
                now = time.monotonic()
                if now > deadline:
                    raise LiveRunError(
                        f"live run exceeded deadline ({config.deadline_s}s); "
                        f"outstanding ranks: {sorted(_outstanding())}"
                    )
                timeout = deadline - now
                if kill_at is not None:
                    timeout = min(timeout, max(0.0, kill_at - now))
                events = sel.select(timeout=max(0.0, min(timeout, 0.25)))
                if kill_at is not None and time.monotonic() >= kill_at:
                    victim = chaos.victim
                    kill_at = None
                    if victim not in results and victim not in errors:
                        procs[victim].kill()  # SIGKILL: no goodbye frames
                        killed.append(victim)
                        vsock = controls.pop(victim, None)
                        if vsock is not None:
                            try:
                                sel.unregister(vsock)
                            except KeyError:
                                pass
                            vsock.close()
                        _release_ready_barriers()
                for key, _mask in events:
                    rank = key.data
                    sock = key.fileobj
                    try:
                        frame = recv_frame(sock)
                    except (ConnectionError, OSError):
                        sel.unregister(sock)
                        controls.pop(rank, None)
                        if rank not in results and rank not in killed:
                            vanished.add(rank)
                        _release_ready_barriers()
                        continue
                    kind = frame[0]
                    if kind == "barrier":
                        _rank, n = frame[1], frame[2]
                        barrier_waiting.setdefault(n, set()).add(rank)
                        _release_ready_barriers()
                    elif kind == "result":
                        _kind, _rank, result, events_list = frame
                        results[rank] = result
                        logs[rank] = events_list
                        _release_ready_barriers()
                    elif kind == "error":
                        errors[rank] = frame[2]
                        _release_ready_barriers()
        finally:
            sel.close()
    except BaseException:
        _cleanup(kill=True)
        raise
    _cleanup(kill=False)

    if errors:
        rank, err = sorted(errors.items())[0]
        raise LiveRunError(
            f"live rank {rank} failed ({len(errors)} rank(s) errored):\n{err}"
        )
    if vanished:
        raise LiveRunError(
            f"live rank(s) {sorted(vanished)} disappeared without a result "
            "(and were not chaos-killed)"
        )

    rank_events = [logs.get(rank, []) for rank in range(P)]
    final_results = []
    for rank in range(P):
        if rank in results:
            final_results.append(results[rank])
        else:
            final_results.append(
                ProgramResult(rank=rank, value=None, extras={"killed": True})
            )
    makespan = max(
        (e.t for log in rank_events for e in log), default=0.0
    )
    exitcodes = [proc.exitcode for proc in procs]
    return LiveResult(
        P=P,
        config=config,
        makespan=makespan,
        results=final_results,
        rank_events=rank_events,
        exitcodes=exitcodes,
        killed=killed,
    )


# ----------------------------------------------------------------------
# Chaos: the physical substrate for the PR 5 fault machinery.
# ----------------------------------------------------------------------


class WatchProgram:
    """Every rank idles to ``horizon`` (cycles), sampling its failure
    detector every ``poll`` cycles; returns the sorted suspect list.
    The live counterpart of the chaos harness's detector probes —
    pure detection traffic, no data messages to mask the heartbeats."""

    def __init__(self, horizon: float, poll: float):
        self.horizon = horizon
        self.poll = poll

    def __call__(self, rank: int, P: int):
        from ..sim.program import Now, Sleep, Suspects

        def run():
            while True:
                t = yield Now()
                if t >= self.horizon:
                    break
                yield Sleep(self.poll)
            return sorted((yield Suspects()))

        return run()


@dataclass(slots=True)
class ChaosOutcome:
    """What one live chaos run established."""

    result: LiveResult
    victim: int
    kill_at: float
    suspects_by_rank: dict[int, list[int]]
    detection_times: dict[int, float]

    @property
    def detected_by_all(self) -> bool:
        """Every survivor's detector suspected the victim — and nothing
        else (a false positive is as much a failure as a miss)."""
        return all(
            suspects == [self.victim]
            for suspects in self.suspects_by_rank.values()
        )

    @property
    def sigkilled(self) -> bool:
        return self.result.exitcodes[self.victim] == -signal.SIGKILL


def run_chaos(
    P: int = 4,
    *,
    config: LiveConfig | None = None,
    victim: int | None = None,
    kill_at: float | None = None,
) -> ChaosOutcome:
    """SIGKILL one rank mid-run; survivors must suspect exactly it.

    Defaults: the heartbeat detector beats every 2 000 cycles with a
    10 000-cycle timeout (40 ms / 200 ms at the default cycle), the
    victim is rank ``P - 1`` (rank 0 spared, the chaos harness's spare
    convention), killed a quarter into a horizon long enough for the
    timeout to elapse with margin.
    """
    from ..sim.faults import HeartbeatConfig

    base = config or LiveConfig()
    if base.heartbeat is None:
        hb = HeartbeatConfig(period=2_000.0, timeout=10_000.0)
        from dataclasses import replace

        base = replace(base, heartbeat=hb)
    hb = base.heartbeat
    if victim is None:
        victim = P - 1
    if kill_at is None:
        kill_at = 4 * hb.period
    horizon = kill_at + hb.timeout + 6 * hb.period
    result = run_live(
        WatchProgram(horizon=horizon, poll=hb.period / 4),
        P,
        config=base,
        chaos=ChaosSpec(victim=victim, at=kill_at),
    )
    suspects = {
        rank: list(result.value(rank) or [])
        for rank in range(P)
        if rank != victim
    }
    detection = {}
    for rank in range(P):
        if rank == victim:
            continue
        for e in result.rank_events[rank]:
            if e.kind == "suspect" and e.peer == victim:
                detection[rank] = e.t
                break
    return ChaosOutcome(
        result=result,
        victim=victim,
        kill_at=kill_at,
        suspects_by_rank=suspects,
        detection_times=detection,
    )
