"""The live rank process: physical semantics for every program action.

:func:`rank_main` is the child-process entry point.  It handshakes with
the coordinator (report the data port, learn the port map, build the
mesh, wait for the shared epoch), then :func:`drive_program` runs the
*unmodified* program generator, giving each yielded action its physical
meaning:

* ``Send``    — one pickle frame down the pair's TCP socket; the
  processor is engaged for exactly the syscall's duration (logged as
  ``send_commit`` .. ``wire_out``).  No artificial gap or capacity
  stall is imposed: the live machine's ``o``/``g``/capacity are whatever
  the host's kernel exhibits — that is what calibration measures.
* ``Recv``    — block on the mailbox (tag-matched, arrival order), the
  receiver thread having already paid the wire.  ``timeout`` converts
  cycles to wall-clock.
* ``Compute`` — spin on the monotonic clock for ``cycles`` (a busy loop,
  not ``sleep``: the processor must be *engaged*, and sleep granularity
  is coarser than a cycle).
* ``Sleep``   — ``time.sleep`` (messages keep arriving: reception is a
  dedicated thread, the moral equivalent of the simulator servicing
  messages while idle).
* ``Now``     — cycles since the shared epoch.
* ``Poll``    — snapshot of immediately-available messages.  Live
  reception is asynchronous, so there is nothing left to "service";
  the returned count preserves the program-visible contract (how many
  messages a following ``Recv`` would find ready).
* ``Barrier`` — one round trip to the coordinator's barrier service.
* ``Suspects`` — the live heartbeat detector's current suspect set.
* ``Checkpoint``/``Restore`` — in-process stable store (live ranks do
  not crash-recover; incarnation is always 0).
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
import traceback

from ..sim.program import (
    Barrier,
    Checkpoint,
    Compute,
    Now,
    Poll,
    ProgramResult,
    Recv,
    Restore,
    RestoreInfo,
    Send,
    Sleep,
    Suspects,
)
from .logs import EventLog
from .transport import (
    LiveConfig,
    RankTransport,
    connect_mesh,
    recv_frame,
    send_frame,
)

__all__ = ["drive_program", "rank_main"]


class _Barrier:
    """Client side of the coordinator's hardware-barrier service."""

    def __init__(self, control: socket.socket, lock: threading.Lock, rank: int):
        self._control = control
        self._lock = lock
        self._rank = rank
        self.count = 0

    def cross(self) -> int:
        n = self.count
        send_frame(self._control, ("barrier", self._rank, n), self._lock)
        while True:
            frame = recv_frame(self._control)
            if frame[0] == "release" and frame[1] == n:
                break
        self.count += 1
        return n


def drive_program(
    gen,
    transport: RankTransport,
    barrier: _Barrier,
    rank: int,
    P: int,
) -> ProgramResult:
    """Run one program generator to completion against the live machine."""
    log = transport.log
    cfg = transport.config
    clock = transport.clock
    checkpoint = None
    value = None
    final = None
    if gen is None or not hasattr(gen, "send"):
        gen = iter(gen or ())
    while True:
        try:
            action = gen.send(value) if hasattr(gen, "send") else next(gen)
        except StopIteration as stop:
            final = stop.value
            break
        value = None
        if type(action) is Send:
            transport.send(action.dst, action.payload, action.tag, action.words)
        elif type(action) is Recv:
            timeout_s = (
                None if action.timeout is None else action.timeout * cfg.cycle_s
            )
            entry = transport.mailbox.get(action.tag, timeout_s)
            if entry is None:
                log.append("recv_timeout", transport.now(), clock.tick())
            else:
                transport.receives += 1
                log.append(
                    "recv_return",
                    transport.now(),
                    clock.tick(),
                    peer=entry.src,
                    seq=entry.seq,
                )
                value = entry.msg
        elif type(action) is Compute:
            t0 = transport.now()
            log.append("compute_begin", t0, clock.tick(), info=action.label)
            end = time.monotonic() + action.cycles * cfg.cycle_s
            while time.monotonic() < end:
                pass
            log.append("compute_end", transport.now(), clock.tick(), info=action.label)
        elif type(action) is Sleep:
            time.sleep(action.cycles * cfg.cycle_s)
        elif type(action) is Now:
            value = transport.now()
        elif type(action) is Poll:
            count = transport.mailbox.available()
            log.append("poll", transport.now(), clock.tick(), seq=count)
            value = count
        elif type(action) is Barrier:
            log.append(
                "barrier_enter", transport.now(), clock.tick(), seq=barrier.count
            )
            n = barrier.cross()
            log.append("barrier_exit", transport.now(), clock.tick(), seq=n)
        elif type(action) is Suspects:
            value = transport.suspects_snapshot()
        elif type(action) is Checkpoint:
            checkpoint = action.payload
            if action.cost:
                end = time.monotonic() + action.cost * cfg.cycle_s
                while time.monotonic() < end:
                    pass
            log.append("checkpoint", transport.now(), clock.tick())
        elif type(action) is Restore:
            value = RestoreInfo(checkpoint=checkpoint, incarnation=0)
        else:
            raise TypeError(
                f"live backend got a non-action yield: {action!r} "
                f"(rank {rank})"
            )
    return ProgramResult(
        rank=rank,
        value=final,
        finished_at=transport.now(),
        sends=transport.sends,
        receives=transport.receives,
    )


def _build_program(spec_program, rank: int, P: int):
    """Instantiate this rank's generator from the shipped spec.

    ``spec_program`` is either a picklable ``(rank, P) -> generator``
    factory or a registry marker ``("registry", name, args, seed)`` —
    the latter rebuilds by *name* on this side of the process boundary,
    the path the serve registry's determinism guard pins."""
    if (
        isinstance(spec_program, tuple)
        and len(spec_program) == 4
        and spec_program[0] == "registry"
    ):
        from ..serve.registry import build

        _tag, name, args, seed = spec_program
        factory = build(name, dict(args or {}), seed)
    else:
        factory = spec_program
    return factory(rank, P)


def rank_main(spec_bytes: bytes) -> None:
    """Child-process entry: handshake, run, report.  Never raises — an
    error is shipped to the coordinator and exits nonzero."""
    spec = pickle.loads(spec_bytes)
    rank: int = spec["rank"]
    P: int = spec["P"]
    config: LiveConfig = spec["config"]
    host, coord_port = spec["coordinator"]

    # Watchdog: whatever happens, this process is gone by the deadline.
    watchdog = threading.Timer(config.deadline_s, os._exit, args=(3,))
    watchdog.daemon = True
    watchdog.start()

    control = None
    transport = None
    try:
        control = socket.create_connection((host, coord_port), timeout=config.deadline_s)
        control.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        control_lock = threading.Lock()

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind((host, 0))
        listener.listen(P)
        data_port = listener.getsockname()[1]
        send_frame(control, ("hello", rank, data_port), control_lock)

        frame = recv_frame(control)
        if frame[0] != "ports":
            raise ConnectionError(f"expected ports frame, got {frame[0]!r}")
        ports: list[int] = frame[1]
        links = connect_mesh(rank, P, listener, ports, host, config.deadline_s)
        listener.close()
        send_frame(control, ("ready", rank), control_lock)

        frame = recv_frame(control)
        if frame[0] != "go":
            raise ConnectionError(f"expected go frame, got {frame[0]!r}")
        epoch: float = frame[1]

        log = EventLog(rank)
        transport = RankTransport(rank, P, config, log, epoch, links)
        gen = _build_program(spec["program"], rank, P)

        # Synchronized start: all ranks cross the epoch together.
        while time.monotonic() < epoch:
            pass
        transport.start()
        log.append("start", transport.now(), transport.clock.tick())
        barrier = _Barrier(control, control_lock, rank)
        result = drive_program(gen, transport, barrier, rank, P)
        log.append("finish", transport.now(), transport.clock.tick())
        result.extras["suspects"] = sorted(transport.suspects_snapshot())
        transport.close()
        send_frame(control, ("result", rank, result, log.events), control_lock)
        control.close()
        watchdog.cancel()
        os._exit(0)
    except BaseException:  # noqa: BLE001 - shipped to the coordinator
        err = traceback.format_exc()
        try:
            if control is not None:
                send_frame(control, ("error", rank, err))
        except OSError:
            pass
        try:
            if transport is not None:
                transport.close()
        except Exception:  # noqa: BLE001 - already failing
            pass
        os._exit(1)
