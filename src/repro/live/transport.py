"""Localhost TCP transport for live ranks.

The wire layer of the live backend: length-prefixed pickle frames over
a full mesh of localhost TCP sockets (one socket per rank pair, dialed
by the higher rank, ``TCP_NODELAY`` so small-message latency is the
kernel's, not Nagle's), per-rank Lamport clocks for cross-rank event
ordering, the tag-matched mailbox behind ``Recv``/``Poll``, and the
*live* heartbeat failure detector — a real thread emitting real
packets, the physical counterpart of the in-simulator detector of
:class:`~repro.sim.faults.HeartbeatConfig`.

Timestamps are ``time.monotonic()`` readings converted to *cycles*
(``LiveConfig.cycle_ns`` nanoseconds per cycle) relative to a shared
epoch the coordinator broadcasts.  On Linux (and every platform this
repo targets) ``time.monotonic`` is ``CLOCK_MONOTONIC``, which is
machine-wide, so timestamps taken in different rank processes are
directly comparable; the validator nonetheless treats *timing* clauses
in tolerance bands and reserves exactness for ordering and delivery
clauses, which rest on the logical clocks and per-pair sequence
numbers carried in every data frame.
"""

from __future__ import annotations

import os
import pickle
import selectors
import socket
import struct
import threading
import time
from dataclasses import dataclass, field

from ..sim.faults import HeartbeatConfig
from ..sim.program import ReceivedMessage
from .logs import EventLog

__all__ = [
    "LiveConfig",
    "RankTransport",
    "connect_mesh",
    "recv_frame",
    "send_frame",
]

_LEN = struct.Struct(">I")

#: Hard ceiling on one frame (a live payload should be small data, not
#: a dataset; refusing early beats an allocation bomb).
MAX_FRAME_BYTES = 64 * 1024 * 1024


def send_frame(sock: socket.socket, obj, lock: threading.Lock | None = None) -> None:
    """Pickle ``obj`` and write it length-prefixed (atomically under ``lock``)."""
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    data = _LEN.pack(len(blob)) + blob
    if lock is None:
        sock.sendall(data)
    else:
        with lock:
            sock.sendall(data)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(n)
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket):
    """Read one length-prefixed pickle frame (raises ``ConnectionError`` on EOF)."""
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    return pickle.loads(_recv_exact(sock, length))


@dataclass(frozen=True)
class LiveConfig:
    """Knobs of one live run.

    Args:
        cycle_ns: nanoseconds of wall-clock per simulated *cycle* — the
            unit conversion between program time (``Compute(5)``) and
            the host.  The default (20 µs) puts localhost TCP latency
            in the low single-digit cycles, the regime the paper's
            parameter tables live in.
        heartbeat: attach the live failure detector (periods/timeouts in
            cycles, exactly :class:`~repro.sim.faults.HeartbeatConfig`'s
            contract).  ``None`` (default) runs without detector threads.
        deadline_s: wall-clock bound on the whole run.  Both the
            coordinator and every rank enforce it (ranks via a watchdog
            that force-exits), so a wedged program or a dead peer can
            never hang a test or a CI pipeline.
        start_method: multiprocessing start method; ``None`` picks
            ``fork`` where available (fast) else ``spawn``.  Programs
            are *always* shipped to ranks as explicit pickles regardless
            — the registry-determinism guard in the test suite is what
            makes that safe — so both methods run identical code.
        settle_s: delay between mesh completion and the shared epoch,
            absorbing scheduler jitter so all ranks start together.
    """

    cycle_ns: float = 20_000.0
    heartbeat: HeartbeatConfig | None = None
    deadline_s: float = 60.0
    start_method: str | None = None
    settle_s: float = 0.05
    host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if self.cycle_ns <= 0:
            raise ValueError(f"cycle_ns must be > 0, got {self.cycle_ns}")
        if self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.settle_s < 0:
            raise ValueError(f"settle_s must be >= 0, got {self.settle_s}")
        if self.start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(f"unknown start_method {self.start_method!r}")

    @property
    def cycle_s(self) -> float:
        return self.cycle_ns * 1e-9

    def resolved_start_method(self) -> str:
        import multiprocessing

        if self.start_method is not None:
            return self.start_method
        env = os.environ.get("REPRO_LIVE_START")
        if env:
            return env
        return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


class LamportClock:
    """Thread-safe Lamport logical clock."""

    __slots__ = ("_lock", "_t")

    def __init__(self) -> None:
        self._t = 0
        self._lock = threading.Lock()

    def tick(self) -> int:
        with self._lock:
            self._t += 1
            return self._t

    def merge(self, other: int) -> int:
        with self._lock:
            self._t = max(self._t, other) + 1
            return self._t


@dataclass(slots=True)
class _Entry:
    msg: ReceivedMessage
    seq: int
    src: int


class Mailbox:
    """Arrival-ordered, tag-matched message store behind ``Recv``/``Poll``."""

    def __init__(self) -> None:
        self._entries: list[_Entry] = []
        self._cond = threading.Condition()

    def put(self, entry: _Entry) -> None:
        with self._cond:
            self._entries.append(entry)
            self._cond.notify_all()

    def get(self, tag, timeout_s: float | None) -> _Entry | None:
        """First message matching ``tag`` (``None`` matches any), waiting
        up to ``timeout_s`` (``None`` = forever); ``None`` on timeout."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._cond:
            while True:
                for i, entry in enumerate(self._entries):
                    if tag is None or entry.msg.tag == tag:
                        return self._entries.pop(i)
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        if not any(
                            tag is None or e.msg.tag == tag for e in self._entries
                        ):
                            return None

    def available(self) -> int:
        with self._cond:
            return len(self._entries)


def connect_mesh(
    rank: int,
    P: int,
    listener: socket.socket,
    ports: list[int],
    host: str,
    deadline: float,
) -> dict[int, socket.socket]:
    """Build the full peer mesh: dial every lower rank, accept every higher.

    ``ports`` maps rank -> data port (all already listening before any
    dial starts — the coordinator broadcasts the map only after every
    rank reported its port, so dials cannot race the listeners)."""
    links: dict[int, socket.socket] = {}
    for peer in range(rank):
        sock = socket.create_connection((host, ports[peer]), timeout=deadline)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_frame(sock, ("peer", rank))
        links[peer] = sock
    for _ in range(P - 1 - rank):
        listener.settimeout(deadline)
        sock, _addr = listener.accept()
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        kind, peer = recv_frame(sock)
        if kind != "peer":
            raise ConnectionError(f"expected peer hello, got {kind!r}")
        links[peer] = sock
    return links


@dataclass(slots=True)
class _Link:
    sock: socket.socket
    lock: threading.Lock = field(default_factory=threading.Lock)
    alive: bool = True


class RankTransport:
    """One rank's view of the mesh: send path, receiver thread, detector.

    The main (program) thread calls :meth:`send` and reads the mailbox;
    a receiver thread drains every peer socket into the mailbox (so a
    busy sender can never deadlock the pair — the physical analogue of
    the simulator's always-on network interface); an optional heartbeat
    thread emits liveness beacons and maintains the suspect set.
    """

    def __init__(
        self,
        rank: int,
        P: int,
        config: LiveConfig,
        log: EventLog,
        epoch: float,
        links: dict[int, socket.socket],
    ) -> None:
        self.rank = rank
        self.P = P
        self.config = config
        self.log = log
        self.epoch = epoch
        self.clock = LamportClock()
        self.mailbox = Mailbox()
        self._links = {peer: _Link(sock) for peer, sock in links.items()}
        self._next_seq = dict.fromkeys(links, 0)
        self._finished: set[int] = set()
        self._suspects: set[int] = set()
        self._state_lock = threading.Lock()
        self._stop = threading.Event()
        self._recv_thread: threading.Thread | None = None
        self._hb_thread: threading.Thread | None = None
        self.sends = 0
        self.receives = 0
        # Heartbeat bookkeeping: peer -> cycles of the last beat heard
        # (initialized to the epoch so a never-heard peer accumulates
        # silence from t=0, matching the simulator detector).
        self._last_heard = dict.fromkeys(links, 0.0)

    # -- time ----------------------------------------------------------

    def now(self) -> float:
        """Cycles since the shared epoch."""
        return (time.monotonic() - self.epoch) / self.config.cycle_s

    # -- send path (main thread) --------------------------------------

    def send(self, dst: int, payload, tag, words: int) -> None:
        if dst == self.rank:
            raise ValueError(f"rank {self.rank} sending to itself")
        if not 0 <= dst < self.P:
            raise ValueError(f"destination {dst} out of range 0..{self.P - 1}")
        link = self._links[dst]
        seq = self._next_seq[dst]
        self._next_seq[dst] = seq + 1
        t0 = self.now()
        clock = self.clock.tick()
        self.log.append("send_commit", t0, clock, peer=dst, seq=seq)
        frame = ("data", self.rank, seq, clock, t0, tag, payload, words)
        try:
            send_frame(link.sock, frame, link.lock)
        except OSError as exc:
            # A dead peer's socket: the message is lost at the (dead)
            # interface, exactly like the simulator's
            # dropped_at_dead_interface accounting.  The program keeps
            # running; the heartbeat detector is the discovery channel.
            link.alive = False
            self.log.append(
                "send_failed", self.now(), self.clock.tick(), peer=dst, seq=seq,
                info=type(exc).__name__,
            )
            return
        self.log.append(
            "wire_out", self.now(), self.clock.tick(), peer=dst, seq=seq
        )
        self.sends += 1

    # -- receiver thread ----------------------------------------------

    def _serve_frame(self, peer: int, frame) -> None:
        kind = frame[0]
        if kind == "data":
            _kind, src, seq, clock, t_commit, tag, payload, _words = frame
            merged = self.clock.merge(clock)
            t = self.now()
            with self._state_lock:
                self._last_heard[src] = t
            self.log.append("delivery", t, merged, peer=src, seq=seq)
            self.mailbox.put(
                _Entry(
                    ReceivedMessage(
                        src=src, payload=payload, tag=tag,
                        sent_at=t_commit, received_at=t,
                    ),
                    seq,
                    src,
                )
            )
        elif kind == "hb":
            _kind, src, clock, _t = frame
            self.clock.merge(clock)
            with self._state_lock:
                self._last_heard[src] = self.now()
        elif kind == "bye":
            with self._state_lock:
                self._finished.add(frame[1])

    def _receiver_loop(self) -> None:
        sel = selectors.DefaultSelector()
        for peer, link in self._links.items():
            link.sock.setblocking(True)
            sel.register(link.sock, selectors.EVENT_READ, peer)
        try:
            while not self._stop.is_set():
                for key, _mask in sel.select(timeout=0.05):
                    peer = key.data
                    link = self._links[peer]
                    if not link.alive:
                        continue
                    try:
                        frame = recv_frame(link.sock)
                    except (ConnectionError, OSError):
                        # EOF without "bye": the peer died.  No shortcut
                        # into the suspect set — detection is the
                        # heartbeat detector's job, by timeout.
                        link.alive = False
                        sel.unregister(link.sock)
                        continue
                    self._serve_frame(peer, frame)
        finally:
            sel.close()

    # -- heartbeat thread ---------------------------------------------

    def _watch_sets(self) -> tuple[set[int], set[int]]:
        """(peers I beat to, peers I watch) from the heartbeat config."""
        hb = self.config.heartbeat
        peers = set(self._links)
        if hb is None or hb.edges is None:
            return peers, peers
        beat = {b for a, b in hb.edges if a == self.rank} | {
            a for a, b in hb.edges if b == self.rank
        }
        return beat & peers, beat & peers

    def _heartbeat_loop(self) -> None:
        hb = self.config.heartbeat
        assert hb is not None
        period_s = hb.period * self.config.cycle_s
        beat_to, watched = self._watch_sets()
        while not self._stop.wait(period_s):
            t = self.now()
            if hb.horizon is not None and t > hb.horizon:
                return
            for peer in beat_to:
                link = self._links[peer]
                if not link.alive:
                    continue
                try:
                    send_frame(link.sock, ("hb", self.rank, self.clock.tick(), t), link.lock)
                except OSError:
                    link.alive = False
            now = self.now()
            with self._state_lock:
                for peer in watched:
                    if peer in self._finished or peer in self._suspects:
                        continue
                    silence = now - self._last_heard[peer]
                    if silence > hb.timeout:
                        self._suspects.add(peer)
                        self.log.append(
                            "suspect", now, self.clock.tick(), peer=peer,
                            info=f"last_heard={self._last_heard[peer]:.1f}"
                            f";missed={int(silence // hb.period)}",
                        )

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        self._recv_thread = threading.Thread(
            target=self._receiver_loop, name=f"live-recv-{self.rank}", daemon=True
        )
        self._recv_thread.start()
        if self.config.heartbeat is not None:
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop, name=f"live-hb-{self.rank}", daemon=True
            )
            self._hb_thread.start()

    def suspects_snapshot(self) -> frozenset[int]:
        with self._state_lock:
            return frozenset(self._suspects)

    def close(self) -> None:
        """Graceful shutdown: announce completion, stop threads, close."""
        for link in self._links.values():
            if link.alive:
                try:
                    send_frame(link.sock, ("bye", self.rank), link.lock)
                except OSError:
                    link.alive = False
        self._stop.set()
        for thread in (self._recv_thread, self._hb_thread):
            if thread is not None:
                thread.join(timeout=2.0)
        for link in self._links.values():
            try:
                link.sock.close()
            except OSError:
                pass
