"""The long-message extension: LogGP (Section 5.4's "simple extension").

The basic model charges the overhead ``o`` "for each word (or small
number of words)" of a long message — sending ``k`` words costs ``k``
small messages.  Section 5.4 observes that real machines add DMA
hardware so that "a part of sending and receiving long messages can be
overlapped with computation", which "can simply be modeled as two
processors at each node" — a network processor streaming the payload
while the compute processor continues.

The standard way the literature crystallized this observation (Alexandrov,
Ionescu, Schauser & Scheiman's LogGP, a direct successor of this paper)
adds one parameter:

``G``
    the *Gap per byte/word* for long messages: after the ``o``-cycle
    setup, each additional word enters the network ``G`` cycles apart,
    with the processor free.  A ``k``-word message costs the sender
    ``o`` of processor time and occupies its network port for
    ``(k-1) G``; end to end it takes ``o + (k-1)G + L + o``.

:class:`LogGPParams` carries the extra parameter and the cost algebra;
:mod:`repro.sim` accepts ``Send(..., words=k)`` on a machine built with
``G`` and enforces the port occupancy.  ``G = g`` recovers the basic
per-word model with the processor freed; ``G -> 0`` models an ideal DMA
engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .params import LogPParams

__all__ = [
    "LogGPParams",
    "long_message_time",
    "long_message_processor_time",
    "fragmentation_crossover",
]


@dataclass(frozen=True, slots=True)
class LogGPParams(LogPParams):
    """LogP plus the long-message Gap ``G`` (cycles per additional word).

    ``G <= g`` on any sensible machine: the whole point of the bulk
    interface is that streaming words is cheaper than sending them as
    individual messages.
    """

    G: float = 0.0

    def __post_init__(self) -> None:
        # slots=True dataclasses recreate the class, breaking zero-arg
        # super(); call the base validator explicitly.
        LogPParams.__post_init__(self)
        if self.G < 0:
            raise ValueError(f"G must be >= 0, got {self.G}")
        if not math.isfinite(self.G):
            raise ValueError(f"G must be finite, got {self.G}")

    @property
    def bulk_bandwidth(self) -> float:
        """Long-message bandwidth in words/cycle (``1/G``)."""
        return math.inf if self.G == 0 else 1.0 / self.G

    def as_logp(self) -> LogPParams:
        """Drop the extension (for code paths that want plain LogP)."""
        return LogPParams(L=self.L, o=self.o, g=self.g, P=self.P, name=self.name)


def long_message_time(p: LogGPParams, k: int) -> float:
    """End-to-end time of one ``k``-word message:
    ``o + (k-1)G + L + o``."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return p.o + (k - 1) * p.G + p.L + p.o


def long_message_processor_time(p: LogGPParams, k: int) -> float:
    """Processor cycles consumed at the *sender*: just the setup ``o`` —
    the stream is driven by the network interface ("overlapped with
    computation")."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return p.o


def fragmentation_crossover(p: LogGPParams) -> float:
    """Message size (words) above which one bulk message beats sending
    the words as individual small messages.

    Small messages: ``o + (k-1) max(g, o) + L + o`` end to end and
    ``k*o`` of processor time; bulk: ``o + (k-1)G + L + o`` and ``o``.
    End to end the bulk message wins for every ``k >= 2`` whenever
    ``G <= max(g, o)``; this function returns the break-even ``k`` for
    general parameter settings (``inf`` if bulk never wins).
    """
    small_slope = p.send_interval
    bulk_slope = p.G
    if bulk_slope < small_slope:
        return 2.0
    if bulk_slope == small_slope:
        return 2.0  # tie on time; bulk still wins on processor cycles
    return math.inf
