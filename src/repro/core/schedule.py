"""Explicit event-time schedules shared by analysis, simulation and viz.

The paper's Figures 3 and 4 show, for each processor, *when* it is busy
sending, receiving or computing.  This module defines the neutral data
structures those timelines are expressed in:

* :class:`Interval` — one contiguous stretch of processor activity;
* :class:`ProcessorTimeline` — all intervals of one processor;
* :class:`MessageRecord` — the life of one message (injection, flight,
  reception);
* :class:`Schedule` — a complete picture: parameters, per-processor
  timelines and the message set, with derived metrics (makespan, busy
  fractions, overlap statistics).

The analytical schedule builders in :mod:`repro.algorithms` emit these
directly from closed-form event times; the simulator's trace layer
(:mod:`repro.sim.trace`) converts execution traces into the same shape,
so tests can assert that analysis and simulation agree interval for
interval.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from .params import LogPParams

__all__ = [
    "Activity",
    "Interval",
    "MessageRecord",
    "ProcessorTimeline",
    "Schedule",
]


class Activity(enum.Enum):
    """What a processor is doing during an interval."""

    COMPUTE = "compute"
    SEND = "send"  # paying the send overhead o
    RECV = "recv"  # paying the receive overhead o
    STALL = "stall"  # blocked by the capacity constraint or the gap
    IDLE = "idle"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class Interval:
    """A contiguous activity interval ``[start, end)`` on one processor.

    ``detail`` carries free-form context (peer processor, message tag,
    operation name) used by the Gantt renderer and by tests.
    """

    start: float
    end: float
    kind: Activity
    detail: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"interval end {self.end} precedes start {self.start}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class MessageRecord:
    """The full timeline of one message.

    ``send_start``      sender begins the o-cycle injection;
    ``inject``          message enters the network (``send_start + o``);
    ``arrive``          last bit reaches the destination module;
    ``recv_start``      receiver begins the o-cycle reception
                        (``>= arrive``; later if the receive gap delays it);
    ``recv_end``        message available to the program.
    """

    src: int
    dst: int
    send_start: float
    inject: float
    arrive: float
    recv_start: float
    recv_end: float
    tag: str = ""
    words: int = 1
    # Queueing excess charged by a contended network fabric; 0.0 on
    # uncontended fabrics.  The unloaded flight is ``latency - net_stall``.
    net_stall: float = 0.0

    def __post_init__(self) -> None:
        seq = (
            self.send_start,
            self.inject,
            self.arrive,
            self.recv_start,
            self.recv_end,
        )
        if any(b < a for a, b in zip(seq, seq[1:])):
            raise ValueError(f"non-monotone message timeline: {seq}")

    @property
    def latency(self) -> float:
        """Network flight time (``arrive - inject``)."""
        return self.arrive - self.inject

    @property
    def end_to_end(self) -> float:
        """Total time from send start to availability at the receiver."""
        return self.recv_end - self.send_start

    @property
    def unloaded_latency(self) -> float:
        """Flight time net of fabric queueing (``latency - net_stall``)."""
        return self.arrive - self.inject - self.net_stall


@dataclass(slots=True)
class ProcessorTimeline:
    """All activity intervals of one processor, kept sorted by start."""

    proc: int
    intervals: list[Interval] = field(default_factory=list)

    def add(self, interval: Interval) -> None:
        self.intervals.append(interval)

    def sort(self) -> None:
        self.intervals.sort(key=lambda iv: (iv.start, iv.end))

    def busy_time(self) -> float:
        """Total time spent in non-IDLE, non-STALL activities."""
        return sum(
            iv.duration
            for iv in self.intervals
            if iv.kind in (Activity.COMPUTE, Activity.SEND, Activity.RECV)
        )

    def time_in(self, kind: Activity) -> float:
        return sum(iv.duration for iv in self.intervals if iv.kind is kind)

    def end_time(self) -> float:
        return max((iv.end for iv in self.intervals), default=0.0)

    def overlaps(self) -> list[tuple[Interval, Interval]]:
        """Return pairs of busy intervals that overlap in time.

        A processor can only do one thing at a time, so a valid schedule
        has no overlapping COMPUTE/SEND/RECV intervals.  Used by the
        semantic validator.
        """
        busy = sorted(
            (
                iv
                for iv in self.intervals
                if iv.kind in (Activity.COMPUTE, Activity.SEND, Activity.RECV)
                and iv.duration > 0
            ),
            key=lambda iv: iv.start,
        )
        bad: list[tuple[Interval, Interval]] = []
        for a, b in zip(busy, busy[1:]):
            if b.start < a.end - 1e-12:
                bad.append((a, b))
        return bad


@dataclass(slots=True)
class Schedule:
    """A complete schedule: per-processor timelines plus the message set."""

    params: LogPParams
    timelines: dict[int, ProcessorTimeline] = field(default_factory=dict)
    messages: list[MessageRecord] = field(default_factory=list)

    def timeline(self, proc: int) -> ProcessorTimeline:
        """The timeline for ``proc``, created on first access."""
        if proc not in self.timelines:
            if not 0 <= proc < self.params.P:
                raise ValueError(
                    f"processor {proc} out of range 0..{self.params.P - 1}"
                )
            self.timelines[proc] = ProcessorTimeline(proc)
        return self.timelines[proc]

    def add_interval(
        self, proc: int, start: float, end: float, kind: Activity, detail: str = ""
    ) -> None:
        self.timeline(proc).add(Interval(start, end, kind, detail))

    def add_message(self, record: MessageRecord) -> None:
        self.messages.append(record)

    @property
    def makespan(self) -> float:
        """Completion time: the latest event across processors and
        message receptions (the paper's "maximum time used by any
        processor")."""
        t = max((tl.end_time() for tl in self.timelines.values()), default=0.0)
        if self.messages:
            t = max(t, max(m.recv_end for m in self.messages))
        return t

    def busy_fraction(self, proc: int) -> float:
        """Fraction of the makespan during which ``proc`` is busy."""
        total = self.makespan
        if total == 0:
            return 0.0
        return self.timeline(proc).busy_time() / total

    def total_time_in(self, kind: Activity) -> float:
        return sum(tl.time_in(kind) for tl in self.timelines.values())

    def messages_between(self, src: int, dst: int) -> list[MessageRecord]:
        return [m for m in self.messages if m.src == src and m.dst == dst]

    def receive_load(self) -> dict[int, int]:
        """Messages received per processor — the contention statistic the
        connected-components study (Section 4.2.3) cares about."""
        load: dict[int, int] = {}
        for m in self.messages:
            load[m.dst] = load.get(m.dst, 0) + 1
        return load

    def sort_all(self) -> None:
        for tl in self.timelines.values():
            tl.sort()
        self.messages.sort(key=lambda m: (m.send_start, m.src, m.dst))


def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Coalesce adjacent intervals of the same kind (utility for viz)."""
    out: list[Interval] = []
    for iv in sorted(intervals, key=lambda i: (i.start, i.end)):
        if (
            out
            and out[-1].kind is iv.kind
            and abs(out[-1].end - iv.start) < 1e-12
            and out[-1].detail == iv.detail
        ):
            out[-1] = Interval(out[-1].start, iv.end, iv.kind, iv.detail)
        else:
            out.append(iv)
    return out


__all__.append("merge_intervals")
