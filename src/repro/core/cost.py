"""Closed-form LogP costs for primitive communication operations.

These are the building blocks the paper composes algorithm analyses from:
single messages, request/reply pairs, pipelined streams, h-relations,
the all-to-all data remap at the heart of the FFT study, the long-message
extension of Section 5.4 and the synchronous send/receive protocol cost
noted under Table 1.

Every function takes a :class:`~repro.core.params.LogPParams` as its first
argument and returns a time in cycles.  Functions come in two flavours
where the paper's own accounting differs from the exact schedule:

* ``*_exact`` — the precise makespan of the event schedule the simulator
  executes (sender busy ``o`` per message, injections ``max(g, o)``
  apart, last message takes ``L`` then ``o`` to receive);
* the unsuffixed form — the paper's (slightly coarser) formula, kept so
  benchmarks can print exactly the expressions from the text.
"""

from __future__ import annotations

import math

from .params import LogPParams

__all__ = [
    "point_to_point",
    "remote_read",
    "prefetch_issue_cost",
    "pipelined_stream",
    "pipelined_stream_exact",
    "h_relation",
    "h_relation_exact",
    "all_to_all_remap",
    "all_to_all_remap_exact",
    "long_message",
    "protocol_send_recv",
    "barrier_cost",
    "capacity_stall_rate",
]


def point_to_point(p: LogPParams) -> float:
    """One small message end to end: ``L + 2o`` (Section 5)."""
    return p.point_to_point()


def remote_read(p: LogPParams) -> float:
    """Read a remote location: ``2L + 4o`` (Section 3.2)."""
    return p.remote_read()


def prefetch_issue_cost(p: LogPParams) -> float:
    """Processing time consumed issuing one prefetch: ``2o`` (Section 3.2).

    "Prefetch operations, which initiate a read and continue, can be
    issued every g cycles and cost 2o units of processing time": ``o`` to
    send the request now plus ``o`` to receive the reply later.
    """
    return 2 * p.o


def pipelined_stream(p: LogPParams, k: int) -> float:
    """Paper-style cost of streaming ``k`` messages between one pair:
    ``g*k + L`` (gap-dominated pipelining, Section 3.1/6.5.1).

    Valid for ``k >= 1``; the paper folds both overheads into the gap
    term, which is exact when ``g >= 2o`` is interpreted per Section 4.1.
    """
    _require_count(k)
    return p.g * k + p.L


def pipelined_stream_exact(p: LogPParams, k: int) -> float:
    """Exact makespan of ``k`` back-to-back messages between one pair.

    The first injection completes at ``o``; subsequent injections are
    spaced ``max(g, o)`` apart; the final message needs ``L`` to cross the
    network and ``o`` to be received:
    ``o + (k-1)*max(g,o) + L + o``.

    Capacity stalls cannot occur in a single-pair stream: the receiver
    drains at the same rate ``max(g, o)`` the sender injects at.
    """
    _require_count(k)
    return p.o + (k - 1) * p.send_interval + p.L + p.o


def h_relation(p: LogPParams, h: int) -> float:
    """Paper-style cost of an h-relation: ``g*h + L``.

    An *h-relation* (BSP terminology, Section 6.3) is a communication
    pattern in which every processor sends at most ``h`` messages and
    receives at most ``h`` messages.  Under a contention-free schedule
    each processor injects one message per ``g``, and the tail message
    takes ``L`` to land.
    """
    _require_count(h)
    return p.g * h + p.L


def h_relation_exact(p: LogPParams, h: int) -> float:
    """Exact contention-free h-relation makespan:
    ``o + (h-1)*max(g,o) + L + o``."""
    _require_count(h)
    return p.o + (h - 1) * p.send_interval + p.L + p.o


def all_to_all_remap(p: LogPParams, n: int) -> float:
    """Paper formula for the FFT cyclic-to-blocked remap of ``n`` points:
    ``g*(n/P - n/P**2) + L`` (Section 4.1.1).

    Each processor holds ``n/P`` points and keeps ``n/P**2`` of them
    local, so it sends ``n/P - n/P**2`` messages — ``n/P**2`` to every
    other processor.  With the staggered (contention-free) schedule the
    cost is one gap per message plus the trailing latency.
    """
    _require_count(n)
    per_proc = n / p.P - n / p.P**2
    return p.g * per_proc + p.L


def all_to_all_remap_exact(p: LogPParams, n: int) -> float:
    """Exact staggered-remap makespan for ``n`` points over ``P``
    processors (``n`` divisible by ``P**2`` for an exact schedule).

    Sends per processor ``k = n/P - n/P**2`` are injected ``max(g, o)``
    apart starting at ``o``; the receive side is symmetric.
    """
    _require_count(n)
    k = n // p.P - n // p.P**2
    if k <= 0:
        return 0.0
    return p.o + (k - 1) * p.send_interval + p.L + p.o


def long_message(p: LogPParams, n_words: int) -> float:
    """Cost of an ``n_words``-word message under the basic model
    (Section 5.4): the overhead ``o`` is paid per word.

    "Our basic model assumes that each node consists only of one
    processor that is also responsible for sending and receiving
    messages.  Therefore the overhead o is paid for each word (or small
    number of words)."  The words pipeline through the network, so:
    ``o + (n-1)*max(g,o) + L + o``.
    """
    _require_count(n_words)
    return pipelined_stream_exact(p, n_words)


def protocol_send_recv(p: LogPParams, n_words: int) -> float:
    """Synchronous send/receive protocol cost: ``3(L + 2o) + n*g``.

    Table 1's discussion: the CM-5 vendor library's synchronous
    send/receive "involves a pair of messages before transmitting the
    first data element.  This protocol is easily modeled in terms of our
    parameters as 3(L + 2o) + ng, where n is the number of words sent."
    """
    _require_count(n_words)
    return 3 * (p.L + 2 * p.o) + n_words * p.g


def barrier_cost(p: LogPParams) -> float:
    """Software barrier cost over a binomial gather + broadcast tree.

    LogP has no synchronization primitive ("In our model all
    synchronization is done by messages", Section 6.3): a barrier is a
    reduction to processor 0 followed by a broadcast, each a
    ``ceil(log2 P)``-depth tree of ``L + 2o`` hops.
    """
    depth = math.ceil(math.log2(p.P)) if p.P > 1 else 0
    return 2 * depth * (p.L + 2 * p.o + p.send_interval)


def capacity_stall_rate(p: LogPParams, targets: int, rate: float) -> float:
    """Fraction of injection attempts that stall at a destination, under
    an open-loop model where ``targets`` senders each inject toward one
    destination every ``1/rate`` cycles.

    The destination drains one message per ``g`` cycles and tolerates
    ``ceil(L/g)`` in flight; offered load beyond ``1/g`` stalls senders.
    Returns the stalled fraction ``max(0, 1 - (1/g)/(targets*rate))``
    inverted into a per-attempt stall probability.
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if targets < 1:
        raise ValueError(f"targets must be >= 1, got {targets}")
    offered = targets * rate
    service = p.bandwidth
    if offered <= service:
        return 0.0
    return 1.0 - service / offered


def _require_count(k: int) -> None:
    if k < 1:
        raise ValueError(f"count must be >= 1, got {k}")
