"""The four LogP machine parameters and derived quantities.

The LogP model (Culler et al., PPOPP 1993, Section 3) characterizes a
distributed-memory machine by:

``L``
    an upper bound on the *latency* incurred communicating a small message
    from its source module to its target module;
``o``
    the *overhead*: the length of time a processor is engaged in the
    transmission or reception of each message, during which it can do no
    other work;
``g``
    the *gap*: the minimum interval between consecutive message
    transmissions — or consecutive receptions — at a single processor
    (``1/g`` is the available per-processor communication bandwidth);
``P``
    the number of processor/memory modules.

Local operations take unit time (one *cycle*); ``L``, ``o`` and ``g`` are
expressed in cycles.  The network has finite capacity: at most
``ceil(L/g)`` messages may be in transit from any processor, or to any
processor, at one time; a sender that would exceed this stalls.

:class:`LogPParams` is an immutable value object used by every other layer
of this package — the analytical cost formulas (:mod:`repro.core.cost`),
the discrete-event simulator (:mod:`repro.sim`) and the algorithm suite
(:mod:`repro.algorithms`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["LogPParams"]


@dataclass(frozen=True, slots=True)
class LogPParams:
    """An immutable set of LogP machine parameters.

    Parameters are expressed in processor cycles (fractional values are
    allowed; Section 4.1.4 of the paper calibrates the CM-5 at
    ``o = 0.44`` cycles when a "cycle" is one FFT butterfly).

    Args:
        L: network latency upper bound, in cycles (``>= 0``).
        o: per-message send/receive overhead, in cycles (``>= 0``).
        g: minimum gap between sends (or receives) at one processor,
            in cycles (``>= 0``).  ``g == 0`` models infinite bandwidth.
        P: number of processors (``>= 1``).
        name: optional human-readable label (e.g. ``"CM-5"``).

    Examples:
        >>> m = LogPParams(L=6, o=2, g=4, P=8)
        >>> m.point_to_point()
        10
        >>> m.capacity
        2
    """

    L: float
    o: float
    g: float
    P: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.L < 0:
            raise ValueError(f"L must be >= 0, got {self.L}")
        if self.o < 0:
            raise ValueError(f"o must be >= 0, got {self.o}")
        if self.g < 0:
            raise ValueError(f"g must be >= 0, got {self.g}")
        if not isinstance(self.P, int) or isinstance(self.P, bool):
            raise TypeError(f"P must be an int, got {type(self.P).__name__}")
        if self.P < 1:
            raise ValueError(f"P must be >= 1, got {self.P}")
        for field in ("L", "o", "g"):
            v = getattr(self, field)
            if not math.isfinite(v):
                raise ValueError(f"{field} must be finite, got {v}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Network capacity ``ceil(L/g)``: the maximum number of messages
        in transit from any processor or to any processor (Section 3).

        With ``g == 0`` (infinite bandwidth) capacity is unbounded and a
        large sentinel is returned.
        """
        if self.g == 0:
            return 2**62
        return max(1, math.ceil(self.L / self.g))

    @property
    def send_interval(self) -> float:
        """Effective interval between message injections at one processor.

        A processor is busy for ``o`` cycles per send and may inject at
        most one message per ``g`` cycles, so successive sends are spaced
        by ``max(g, o)``.
        """
        return max(self.g, self.o)

    @property
    def bandwidth(self) -> float:
        """Per-processor communication bandwidth in messages/cycle
        (the reciprocal of ``g``; ``inf`` when ``g == 0``)."""
        return math.inf if self.g == 0 else 1.0 / self.g

    def point_to_point(self) -> float:
        """Time for one small message end to end: ``L + 2o``.

        ``o`` at the sender, ``L`` in the network, ``o`` at the receiver
        (Section 5: "the time to transmit a small message will be
        ``2o + L``").
        """
        return self.L + 2 * self.o

    def remote_read(self) -> float:
        """Time to read a remote location: ``2L + 4o`` (Section 3.2).

        A request message followed by a reply, each costing ``L + 2o``.
        """
        return 2 * self.L + 4 * self.o

    def max_virtual_processors(self) -> int:
        """The multithreading limit ``L/g`` of Section 3.2.

        The capacity constraint allows latency-masking multithreading to
        be employed only up to ``L/g`` virtual processors per physical
        processor.
        """
        return self.capacity

    # ------------------------------------------------------------------
    # Simplification rules (Section 3.1)
    # ------------------------------------------------------------------

    def merge_overhead_into_gap(self) -> "LogPParams":
        """Apply the Section 3.1 approximation ``o := max(o, g)``.

        "One convenient approximation technique is to increase *o* to be
        as large as *g*, so *g* can be ignored.  This is conservative by
        at most a factor of two."  Returns a new parameter set with
        ``o = max(o, g)`` and ``g = 0`` marked ignored.

        With ``o >= g`` the injection pacing is unchanged
        (``send_interval == max(o, g)`` before and after), which is the
        approximation's whole point.  Note the merged set is an
        *analysis* device: with ``g`` ignored the capacity bound
        ``ceil(L/g)`` degenerates to unbounded, so it is not meant to
        parameterize capacity-sensitive simulation runs.
        """
        merged = max(self.o, self.g)
        return replace(self, o=merged, g=0, name=self._tag("o>=g"))

    def ignore_latency(self) -> "LogPParams":
        """Drop ``L`` (Section 3.1: appropriate when messages are sent in
        long pipelined streams so transmission is gap-dominated)."""
        return replace(self, L=0, name=self._tag("L=0"))

    def ignore_bandwidth(self) -> "LogPParams":
        """Drop ``g`` (Section 3.1: appropriate for algorithms that
        communicate infrequently)."""
        return replace(self, g=0, name=self._tag("g=0"))

    def ignore_overhead(self) -> "LogPParams":
        """Drop ``o`` (the paper "hopes architectures improve to a point
        where o can be eliminated"; also yields the postal model when
        combined with ``g = 1``)."""
        return replace(self, o=0, name=self._tag("o=0"))

    def as_postal(self) -> "LogPParams":
        """The postal-model special case ``o = 0, g = 1`` of Section 3.3
        footnote 3 (Bar-Noy & Kipnis broadcast)."""
        return replace(self, o=0, g=1, name=self._tag("postal"))

    def with_processors(self, P: int) -> "LogPParams":
        """Return a copy with a different processor count."""
        return replace(self, P=P)

    def scaled(self, factor: float) -> "LogPParams":
        """Return a copy with ``L``, ``o`` and ``g`` multiplied by
        ``factor`` — used when re-expressing parameters in a different
        cycle unit (e.g. FFT-butterfly cycles vs hardware clock ticks)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be > 0, got {factor}")
        return replace(
            self, L=self.L * factor, o=self.o * factor, g=self.g * factor
        )

    def _tag(self, suffix: str) -> str:
        return f"{self.name}[{suffix}]" if self.name else suffix

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"LogP{label}(L={self.L}, o={self.o}, g={self.g}, P={self.P})"
