"""Algorithm-level analytical formulas from Section 4 of the paper.

These closed forms are what the paper derives on paper; the simulator in
:mod:`repro.sim` executes the corresponding schedules, and the test suite
asserts the two agree.  Covered here:

* FFT (Section 4.1): compute and communication time under the cyclic,
  blocked and hybrid layouts, and the hybrid layout's optimality ratio;
* LU decomposition (Section 4.2.1): per-step and total communication /
  computation under the bad, column and grid layouts, and the
  active-processor profiles of blocked vs scattered grid allocation;
* generic speedup / efficiency helpers.

All times are in cycles of the given :class:`~repro.core.params.LogPParams`.
"""

from __future__ import annotations

import math

from .params import LogPParams

__all__ = [
    "fft_compute_time",
    "fft_comm_time_cyclic",
    "fft_comm_time_blocked",
    "fft_comm_time_hybrid",
    "fft_total_time",
    "fft_optimality_ratio",
    "lu_comm_per_step",
    "lu_compute_per_step",
    "lu_total_time",
    "lu_active_processors",
    "speedup",
    "efficiency",
]


# ----------------------------------------------------------------------
# FFT (Section 4.1)
# ----------------------------------------------------------------------


def _check_fft_args(n: int, P: int) -> None:
    if n < 2 or n & (n - 1):
        raise ValueError(f"n must be a power of two >= 2, got {n}")
    if P < 1 or P & (P - 1):
        raise ValueError(f"P must be a power of two >= 1, got {P}")
    if P > n:
        raise ValueError(f"P={P} exceeds problem size n={n}")


def fft_compute_time(n: int, P: int) -> float:
    """Per-processor computation time ``(n/P) * log2 n``.

    Each of the ``n log n`` butterfly nodes costs one cycle and the work
    divides evenly under any of the three layouts (Section 4.1.1).
    """
    _check_fft_args(n, P)
    return (n / P) * math.log2(n)


def fft_comm_time_cyclic(p: LogPParams, n: int) -> float:
    """Communication time under the cyclic (or blocked) layout:
    ``(g*n/P + L) * log2 P`` (Section 4.1.1, "assuming g >= 2o").

    Cyclic layout: the first ``log(n/P)`` columns are local and each of
    the last ``log P`` columns needs a remote datum per node — one
    pipelined exchange phase of ``n/P`` messages per column.
    """
    _check_fft_args(n, p.P)
    if p.P == 1:
        return 0.0
    return (p.g * n / p.P + p.L) * math.log2(p.P)


def fft_comm_time_blocked(p: LogPParams, n: int) -> float:
    """Communication time under the blocked layout — identical to the
    cyclic layout's by symmetry (remote columns are the *first*
    ``log P`` instead of the last)."""
    return fft_comm_time_cyclic(p, n)


def fft_comm_time_hybrid(p: LogPParams, n: int) -> float:
    """Communication time under the hybrid (cyclic-then-blocked) layout:
    ``g*(n/P - n/P**2) + L`` (Section 4.1.1).

    A single all-to-all remap replaces ``log P`` exchange phases — lower
    by a factor of ``log P``.  Requires ``n >= P**2`` so the remap column
    can sit between column ``log P`` and column ``log(n/P)``.
    """
    _check_fft_args(n, p.P)
    if p.P == 1:
        return 0.0
    if n < p.P**2:
        raise ValueError(
            f"hybrid layout needs n >= P**2 (n={n}, P={p.P})"
        )
    return p.g * (n / p.P - n / p.P**2) + p.L


def fft_total_time(p: LogPParams, n: int, layout: str = "hybrid") -> float:
    """Total FFT time (compute + communicate) under a layout.

    ``layout`` is one of ``"cyclic"``, ``"blocked"``, ``"hybrid"``.
    """
    comm = {
        "cyclic": fft_comm_time_cyclic,
        "blocked": fft_comm_time_blocked,
        "hybrid": fft_comm_time_hybrid,
    }
    try:
        comm_fn = comm[layout]
    except KeyError:
        raise ValueError(f"unknown layout {layout!r}") from None
    return fft_compute_time(n, p.P) + comm_fn(p, n)


def fft_optimality_ratio(p: LogPParams, n: int) -> float:
    """The hybrid layout is within ``1 + g/log n`` of optimal
    (Section 4.1.1): the remap's ``g n/P`` term against the unavoidable
    ``(n/P) log n`` compute term."""
    _check_fft_args(n, p.P)
    return 1.0 + p.g / math.log2(n)


# ----------------------------------------------------------------------
# LU decomposition (Section 4.2.1)
# ----------------------------------------------------------------------

_LU_LAYOUTS = ("bad", "column", "grid")


def lu_comm_per_step(p: LogPParams, n: int, k: int, layout: str) -> float:
    """Communication time of elimination step ``k`` (0-based) on an
    ``n x n`` matrix.

    * ``"bad"``    — every processor fetches the whole pivot row *and*
      multiplier column: ``2(n-k)g + L``;
    * ``"column"`` — column layout; only the multiplier column is
      broadcast: ``(n-k)g + L`` (halves the bad layout's cost);
    * ``"grid"``   — sqrt(P) x sqrt(P) grid; each processor needs only
      the ``2(n-k)/sqrt(P)`` pivot/multiplier values covering its
      submatrix: ``2(n-k)g/sqrt(P) + L`` (the paper's ``sqrt(P)`` gain).
    """
    _check_lu_args(n, k, p.P, layout)
    m = n - 1 - k  # values below/right of the pivot
    if m == 0:
        return 0.0
    if layout == "bad":
        return 2 * m * p.g + p.L
    if layout == "column":
        return m * p.g + p.L
    root = math.isqrt(p.P)
    return 2 * (m / root) * p.g + p.L


def lu_compute_per_step(n: int, k: int, P: int) -> float:
    """Computation time of step ``k``: ``2(n-k)**2 / P`` cycles.

    The rank-1 update touches ``(n-1-k)**2`` elements, each a multiply
    and a subtract, spread over ``P`` processors (perfect balance is the
    scattered layout's property; blocked allocation degrades this — see
    :func:`lu_active_processors`).
    """
    if not 0 <= k < n:
        raise ValueError(f"step k={k} out of range for n={n}")
    if P < 1:
        raise ValueError(f"P must be >= 1, got {P}")
    m = n - 1 - k
    return 2.0 * m * m / P


def lu_total_time(p: LogPParams, n: int, layout: str = "grid") -> float:
    """Total predicted LU time: sum of per-step compute + communicate."""
    _check_lu_args(n, 0, p.P, layout)
    total = 0.0
    for k in range(n - 1):
        total += lu_compute_per_step(n, k, p.P)
        total += lu_comm_per_step(p, n, k, layout)
    return total


def lu_active_processors(
    n: int, P: int, k: int, allocation: str = "scattered"
) -> int:
    """Number of processors with remaining work at elimination step ``k``
    under a sqrt(P) x sqrt(P) grid with ``allocation`` in
    ``("blocked", "scattered")``.

    Blocked allocation idles a full processor row and column every
    ``n/sqrt(P)`` steps ("by the time the algorithm completes
    ``n/sqrt(P)`` elimination steps, ``2 sqrt(P)`` processors would be
    idle ... only one processor is active for the last ``n/sqrt(P)``
    steps").  Scattered allocation keeps all ``P`` active until the last
    ``sqrt(P)`` steps.
    """
    root = math.isqrt(P)
    if root * root != P:
        raise ValueError(f"P must be a perfect square, got {P}")
    if not 0 <= k < n:
        raise ValueError(f"step k={k} out of range for n={n}")
    remaining = n - 1 - k  # side of the active trailing submatrix
    if remaining == 0:
        return 0
    if allocation == "scattered":
        # rows (and cols) of the trailing submatrix hit min(remaining, root)
        # distinct processor rows because consecutive rows are root apart.
        return min(remaining, root) ** 2
    if allocation == "blocked":
        # Each processor owns a contiguous (n/root) x (n/root) tile; only
        # tiles intersecting the trailing submatrix still have work.
        tile = math.ceil(n / root)
        live = math.ceil(remaining / tile)
        return live * live
    raise ValueError(f"unknown allocation {allocation!r}")


def _check_lu_args(n: int, k: int, P: int, layout: str) -> None:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0 <= k < n:
        raise ValueError(f"step k={k} out of range for n={n}")
    if layout not in _LU_LAYOUTS:
        raise ValueError(f"layout must be one of {_LU_LAYOUTS}, got {layout!r}")
    if layout == "grid":
        root = math.isqrt(P)
        if root * root != P:
            raise ValueError(f"grid layout needs square P, got {P}")


# ----------------------------------------------------------------------
# Generic metrics
# ----------------------------------------------------------------------


def speedup(t_serial: float, t_parallel: float) -> float:
    """Classic speedup ``T1 / TP``."""
    if t_parallel <= 0:
        raise ValueError(f"parallel time must be > 0, got {t_parallel}")
    return t_serial / t_parallel


def efficiency(t_serial: float, t_parallel: float, P: int) -> float:
    """Parallel efficiency ``T1 / (P * TP)``."""
    if P < 1:
        raise ValueError(f"P must be >= 1, got {P}")
    return speedup(t_serial, t_parallel) / P
