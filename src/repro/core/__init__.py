"""The LogP model core: parameters, primitive costs, schedules, analysis.

This subpackage is the paper's primary contribution rendered as code.
Everything else in :mod:`repro` — the simulator, the algorithm suite, the
comparison models — is expressed in terms of the types defined here.
"""

from .analysis import (
    efficiency,
    fft_comm_time_blocked,
    fft_comm_time_cyclic,
    fft_comm_time_hybrid,
    fft_compute_time,
    fft_optimality_ratio,
    fft_total_time,
    lu_active_processors,
    lu_comm_per_step,
    lu_compute_per_step,
    lu_total_time,
    speedup,
)
from .cost import (
    all_to_all_remap,
    all_to_all_remap_exact,
    barrier_cost,
    capacity_stall_rate,
    h_relation,
    h_relation_exact,
    long_message,
    pipelined_stream,
    pipelined_stream_exact,
    point_to_point,
    prefetch_issue_cost,
    protocol_send_recv,
    remote_read,
)
from .loggp import (
    LogGPParams,
    fragmentation_crossover,
    long_message_processor_time,
    long_message_time,
)
from .params import LogPParams
from .schedule import (
    Activity,
    Interval,
    MessageRecord,
    ProcessorTimeline,
    Schedule,
    merge_intervals,
)

__all__ = [
    "LogPParams",
    "LogGPParams",
    "long_message_time",
    "long_message_processor_time",
    "fragmentation_crossover",
    "Activity",
    "Interval",
    "MessageRecord",
    "ProcessorTimeline",
    "Schedule",
    "merge_intervals",
    "point_to_point",
    "remote_read",
    "prefetch_issue_cost",
    "pipelined_stream",
    "pipelined_stream_exact",
    "h_relation",
    "h_relation_exact",
    "all_to_all_remap",
    "all_to_all_remap_exact",
    "long_message",
    "protocol_send_recv",
    "barrier_cost",
    "capacity_stall_rate",
    "fft_compute_time",
    "fft_comm_time_cyclic",
    "fft_comm_time_blocked",
    "fft_comm_time_hybrid",
    "fft_total_time",
    "fft_optimality_ratio",
    "lu_comm_per_step",
    "lu_compute_per_step",
    "lu_total_time",
    "lu_active_processors",
    "speedup",
    "efficiency",
]
