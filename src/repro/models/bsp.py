"""The Bulk-Synchronous Parallel model (Section 6.3).

BSP was "one of the inspirations" for LogP; a computation is a sequence
of *supersteps*, each combining local work ``w``, an ``h``-relation, and
a barrier, at cost ``w + g*h + l``.  The paper's concerns, all
observable here:

1. a superstep is charged for the most unfavourable h-relation — the
   schedule inside a step cannot be exploited;
2. messages sent in a superstep are usable only in the *next* superstep
   even when the latency is much shorter than the step;
3. the barrier is assumed in hardware; LogP pays for it with messages.

The module provides the BSP cost calculator, BSP costings of the paper's
running examples, a parameter bridge from LogP (g_bsp ~ g,
l_bsp ~ 2L + barrier cost), and a BSP *runtime* on the LogP simulator —
superstep programs executed with real messages, so the overhead of
emulating BSP's semantics on a LogP machine is measurable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

from ..core.params import LogPParams

__all__ = [
    "BSPParams",
    "bsp_from_logp",
    "superstep_cost",
    "bsp_total",
    "bsp_sum_cost",
    "bsp_fft_cost",
    "bsp_superstep",
]


@dataclass(frozen=True, slots=True)
class BSPParams:
    """The BSP machine parameters.

    ``g``: time per message under continuous traffic (an h-relation
    costs ``g*h``); ``l``: the barrier/synchronization periodicity;
    ``P``: processors.
    """

    g: float
    l: float
    P: int

    def __post_init__(self) -> None:
        if self.g < 0 or self.l < 0:
            raise ValueError("g and l must be >= 0")
        if self.P < 1:
            raise ValueError(f"P must be >= 1, got {self.P}")


def bsp_from_logp(p: LogPParams, hardware_barrier: float | None = None) -> BSPParams:
    """Derive BSP parameters from LogP ones.

    ``g_bsp = max(g, 2o)`` (BSP's per-message charge must cover the
    processor's own overhead); ``l = L + barrier`` where the barrier is
    hardware if given, else the LogP software barrier cost.
    """
    from ..core.cost import barrier_cost

    barrier = hardware_barrier if hardware_barrier is not None else barrier_cost(p)
    return BSPParams(g=max(p.g, 2 * p.o), l=p.L + barrier, P=p.P)


def superstep_cost(b: BSPParams, w: float, h: int) -> float:
    """Cost of one superstep: ``w + g*h + l``."""
    if w < 0 or h < 0:
        raise ValueError("w and h must be >= 0")
    return w + b.g * h + b.l


def bsp_total(b: BSPParams, steps: Sequence[tuple[float, int]]) -> float:
    """Total cost of a superstep sequence of ``(w, h)`` pairs."""
    return sum(superstep_cost(b, w, h) for w, h in steps)


def bsp_sum_cost(b: BSPParams, n: int) -> float:
    """BSP summation: local sums, then a ``log P``-depth reduction where
    every superstep is a 1-relation — but each level pays the full
    ``l``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    local = math.ceil(n / b.P) - 1
    depth = math.ceil(math.log2(b.P)) if b.P > 1 else 0
    steps = [(float(local), 0)] + [(1.0, 1)] * depth
    return bsp_total(b, steps)


def bsp_fft_cost(b: BSPParams, n: int) -> float:
    """BSP hybrid FFT: compute superstep, remap superstep
    (an ``n/P - n/P**2`` relation), compute superstep.

    BSP "places the scheduling burden on the router which is assumed to
    be capable of routing any balanced pattern in the desired amount of
    time" — so naive and staggered schedules cost the same here, which
    is precisely the distinction LogP exposes.
    """
    if n < b.P * b.P:
        raise ValueError(f"need n >= P**2, got n={n}, P={b.P}")
    m = n // b.P
    h = m - n // (b.P * b.P)
    logn = math.log2(n)
    rc = math.log2(b.P)
    return bsp_total(
        b,
        [
            (m * rc, 0),  # phase I columns
            (0.0, h),  # remap
            (m * (logn - rc), 0),  # phase III columns
        ],
    )


def bsp_superstep(
    rank: int,
    P: int,
    work_cycles: float,
    outgoing: dict[int, list[Any]],
    step_id: Any,
    use_hardware_barrier: bool = True,
):
    """Run one BSP superstep on the LogP simulator (composable fragment).

    Local compute, send all messages, receive everything addressed here
    (counts pre-exchanged), then barrier.  Messages become *available*
    to the caller only after the barrier — BSP's deferred-delivery rule.
    Returns the received ``(src, payload)`` pairs.
    """
    from ..sim.collectives import exchange, software_barrier
    from ..sim.program import Barrier, Compute

    if work_cycles > 0:
        yield Compute(work_cycles, label=f"superstep-{step_id}")
    received = yield from exchange(rank, P, outgoing, tag=("bsp", step_id))
    if use_hardware_barrier:
        yield Barrier(name=("bsp", step_id))
    else:
        yield from software_barrier(rank, P, tag=("bsp", step_id))
    return received
