"""Simulating a PRAM on a LogP machine (Section 6.1's warning, measured).

"It has been suggested that the PRAM can serve as a good model for
expressing the logical structure of parallel algorithms, and that
implementation of these algorithms can be achieved by general-purpose
simulations of the PRAM on distributed-memory machines.  However, these
simulations require powerful interconnection networks, and, even then,
may be unacceptably slow, especially when network bandwidth and
processor overhead for sending and receiving messages are properly
accounted."

This module *is* that general-purpose simulation: it takes an unmodified
PRAM program (the same generators :class:`repro.models.pram.PRAM` runs)
and executes it on the LogP machine through the shared-memory layer,
charging every memory reference and every synchronization at full LogP
cost.  Each synchronous PRAM step becomes:

1. issue all of the step's reads as prefetches, await them
   (each remote one a full ``2L + 4o`` round trip, pipelined);
2. a global fence (reads-before-writes — the PRAM's synchronous
   semantics);
3. apply the step's write (an acknowledged remote write);
4. a second fence (writes complete before the next step's reads).

Concurrent writes resolve in owner arrival order (CRCW-arbitrary);
programs written for EREW/CREW run unchanged.  The resulting
*cycles-per-PRAM-step* figure is the slowdown the paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Sequence

from ..core.params import LogPParams
from ..sim.dsm import AwaitPrefetch, DSMResult, Fence, Prefetch, Write, run_dsm
from .pram import PRAM, PramResult, PramStep

__all__ = ["PramOnLogPResult", "run_pram_on_logp", "pram_slowdown"]


@dataclass(slots=True)
class PramOnLogPResult:
    """Outcome of emulating a PRAM program on the LogP machine."""

    dsm: DSMResult
    steps: int
    makespan: float
    cycles_per_step: float
    memory: list[Any]
    returns: list[Any]


def _emulated_app(factory: Callable[[int, int], Generator]):
    def app(rank: int, P: int):
        gen = factory(rank, P)
        to_gen: Any = None
        step_id = 0
        result: Any = None
        while True:
            try:
                step = gen.send(to_gen)
            except StopIteration as stop:
                result = stop.value
                break
            if not isinstance(step, PramStep):
                raise RuntimeError(
                    f"PRAM programs must yield PramStep, got {step!r}"
                )
            # Read phase: pipeline the step's reads as prefetches.
            handles = []
            for addr in step.reads:
                h = yield Prefetch(addr)
                handles.append(h)
            vals = []
            for h in handles:
                v = yield AwaitPrefetch(h)
                vals.append(v)
            yield Fence(("r", step_id))
            # Write phase.
            w = step.write
            if callable(w):
                w = w(vals)
            if w is not None:
                addr, value = w
                yield Write(addr, value)
            yield Fence(("w", step_id))
            to_gen = vals
            step_id += 1
        # Drain any remaining fences? Programs are lockstep (the PRAM
        # machine requires it too), so all ranks exit after the same
        # number of steps.
        return (result, step_id)

    return app


def run_pram_on_logp(
    params: LogPParams,
    factory: Callable[[int, int], Generator],
    memory_size: int,
    initial: Sequence[Any] | None = None,
    **machine_kwargs: Any,
) -> PramOnLogPResult:
    """Run one PRAM program per LogP processor (``params.P`` of them)
    against a block-distributed shared memory of ``memory_size`` cells.

    The program factory is exactly what :meth:`repro.models.pram.PRAM.run`
    takes; programs must stay in lockstep (yield idle ``PramStep()``
    when inactive), as on the synchronous machine.
    """
    contents = list(initial) if initial is not None else [0] * memory_size
    if len(contents) != memory_size:
        raise ValueError("initial contents must match memory_size")
    dsm = run_dsm(params, _emulated_app(factory), contents, **machine_kwargs)
    steps = max((v[1] for v in dsm.values), default=0)
    lockstep = {v[1] for v in dsm.values}
    if len(lockstep) > 1:
        raise RuntimeError(
            f"PRAM programs fell out of lockstep: step counts {lockstep}"
        )
    return PramOnLogPResult(
        dsm=dsm,
        steps=steps,
        makespan=dsm.makespan,
        cycles_per_step=dsm.makespan / steps if steps else 0.0,
        memory=list(dsm.memory),
        returns=[v[0] for v in dsm.values],
    )


def pram_slowdown(
    params: LogPParams,
    factory: Callable[[int, int], Generator],
    memory_size: int,
    initial: Sequence[Any] | None = None,
    mode: str = "CRCW-arbitrary",
) -> tuple[PramResult, PramOnLogPResult, float]:
    """Run the same program on the ideal PRAM and on the LogP machine;
    returns ``(pram_result, logp_result, cycles_per_pram_step)``.

    The two executions must agree on final memory and return values —
    the emulation is checked, not assumed.
    """
    pram = PRAM(
        params.P, memory_size, mode=mode,
        initial=list(initial) if initial is not None else None,
    )
    ideal = pram.run(factory)
    emulated = run_pram_on_logp(params, factory, memory_size, initial)
    if list(ideal.memory) != list(emulated.memory):
        raise AssertionError(
            "PRAM-on-LogP diverged from the ideal PRAM: "
            f"{ideal.memory} vs {emulated.memory}"
        )
    if ideal.returns != emulated.returns:
        raise AssertionError("return values diverged")
    if ideal.steps != emulated.steps:
        raise AssertionError(
            f"step counts diverged: {ideal.steps} vs {emulated.steps}"
        )
    return ideal, emulated, emulated.cycles_per_step
