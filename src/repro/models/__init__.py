"""The competing models of Section 6, as executable baselines:
PRAM (with concurrency-rule enforcement), BSP (cost model + runtime on
the LogP simulator), the postal model, and the delay model."""

from .bsp import (
    BSPParams,
    bsp_fft_cost,
    bsp_from_logp,
    bsp_sum_cost,
    bsp_superstep,
    bsp_total,
    superstep_cost,
)
from .delay import (
    delay_broadcast_time,
    delay_fft_time,
    delay_point_to_point,
    delay_sum_time,
)
from .postal import (
    postal_broadcast_time,
    postal_equivalent_params,
    postal_informed,
)
from .pram_on_logp import (
    PramOnLogPResult,
    pram_slowdown,
    run_pram_on_logp,
)
from .scanmodel import (
    logp_scan_time,
    scan_model_broadcast_steps,
    scan_model_scan_steps,
    scan_model_sum_steps,
)
from .pram import (
    PRAM,
    ConcurrencyViolation,
    PramResult,
    PramStep,
    pram_broadcast_program,
    pram_broadcast_steps,
    pram_sum_program,
    pram_sum_steps,
)

__all__ = [
    "PRAM",
    "PramStep",
    "PramResult",
    "ConcurrencyViolation",
    "pram_sum_program",
    "pram_broadcast_program",
    "pram_sum_steps",
    "pram_broadcast_steps",
    "BSPParams",
    "bsp_from_logp",
    "superstep_cost",
    "bsp_total",
    "bsp_sum_cost",
    "bsp_fft_cost",
    "bsp_superstep",
    "postal_informed",
    "postal_broadcast_time",
    "postal_equivalent_params",
    "delay_point_to_point",
    "delay_broadcast_time",
    "delay_sum_time",
    "delay_fft_time",
    "scan_model_scan_steps",
    "scan_model_sum_steps",
    "scan_model_broadcast_steps",
    "logp_scan_time",
    "PramOnLogPResult",
    "run_pram_on_logp",
    "pram_slowdown",
]
