"""The scan-model (Section 6.2, "Other primitive parallel operations").

"The scan-model is an EREW PRAM model extended with unit-time scan
operations (data independent prefix operations), i.e., it assumes that
certain scan operations can be executed as fast as parallel memory
references.  For integer scan operations this is approximately the case
on the CM-2 and CM-5."

As a cost model the scan-model charges one step for any scan (and hence
for reductions and broadcasts, which are scans plus a read); under LogP
the same operations cost ``Theta(log P)`` message rounds — see
:func:`repro.sim.collectives.prefix_scan`.  These functions provide the
scan-model's predictions for the Section 6 comparison table, plus the
LogP cost of emulating one scan in software.
"""

from __future__ import annotations

import math

from ..core.params import LogPParams

__all__ = [
    "scan_model_scan_steps",
    "scan_model_sum_steps",
    "scan_model_broadcast_steps",
    "logp_scan_time",
]


def scan_model_scan_steps(n: int) -> int:
    """A scan over any number of elements: one step, by assumption."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1


def scan_model_sum_steps(n: int) -> int:
    """Summation = one scan (take the last element): one step."""
    return scan_model_scan_steps(n)


def scan_model_broadcast_steps(n: int) -> int:
    """Broadcast = one max-scan from the source: one step."""
    return scan_model_scan_steps(n)


def logp_scan_time(p: LogPParams) -> float:
    """What one scan costs when built from messages under LogP:
    ``ceil(log2 P)`` recursive-doubling rounds, each a send/fly/receive
    plus the combine — the price the scan-model assumes away.

    The recursive-doubling schedule's longest chain is through the
    highest rank: it receives in every round, ``L + 2o + 1`` behind the
    sender's value each time, with round r's send available ``max(g, o)``
    after round r-1's receive completes.
    """
    rounds = math.ceil(math.log2(p.P)) if p.P > 1 else 0
    if rounds == 0:
        return 0.0
    per_round = p.L + 2 * p.o + 1
    return rounds * per_round + (rounds - 1) * max(p.g - per_round, 0.0)
