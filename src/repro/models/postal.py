"""The postal model (Bar-Noy & Kipnis) — Section 3.3, footnote 3.

"A special case of this algorithm with o = 0 and g = 1 appears in [4]."
In the postal model with latency ``lam``, a sender is busy one time unit
per message and the message arrives ``lam`` units after the send begins.
The number of informed processors after broadcasting for ``t`` units
satisfies the recurrence::

    N(t) = 1                        for 0 <= t < lam
    N(t) = N(t - 1) + N(t - lam)    otherwise

(each informed processor launches one message per unit; a message
launched at ``t - lam`` creates a new informed processor at ``t``).
This module implements the recurrence and the equivalence with the LogP
optimal broadcast at ``o = 0, g = 1, L = lam`` — a cross-model check the
tests enforce exactly.
"""

from __future__ import annotations

import math
from functools import lru_cache

from ..core.params import LogPParams

__all__ = [
    "postal_informed",
    "postal_broadcast_time",
    "postal_equivalent_params",
]


def postal_informed(t: int, lam: int) -> int:
    """``N(t)``: processors informed after ``t`` units, latency ``lam``.

    ``lam >= 1``; ``lam == 1`` degenerates to doubling (``2**t``).
    """
    if lam < 1:
        raise ValueError(f"lam must be >= 1, got {lam}")
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    if lam == 1:
        return 2**t

    @lru_cache(maxsize=None)
    def N(t: int) -> int:
        if t < lam:
            return 1
        return N(t - 1) + N(t - lam)

    return N(t)


def postal_broadcast_time(P: int, lam: int) -> int:
    """Minimum ``t`` with ``N(t) >= P`` — the optimal postal broadcast
    time for ``P`` processors."""
    if P < 1:
        raise ValueError(f"P must be >= 1, got {P}")
    t = 0
    while postal_informed(t, lam) < P:
        t += 1
        if t > 64 * lam + 64 + int(4 * math.log2(max(P, 2)) * lam):
            raise RuntimeError("postal recurrence failed to reach P")
    return t


def postal_equivalent_params(P: int, lam: int) -> LogPParams:
    """The LogP parameter point equivalent to the postal model:
    ``o = 0, g = 1, L = lam``.

    With these parameters a LogP sender is free again one unit after a
    send begins (``max(g, o) = 1``) and the recipient holds the datum
    ``L + 2o = lam`` after the send begins — exactly postal semantics,
    so :func:`repro.algorithms.broadcast.optimal_broadcast_time` equals
    :func:`postal_broadcast_time` for all ``P``.
    """
    if lam < 1:
        raise ValueError(f"lam must be >= 1, got {lam}")
    return LogPParams(L=lam, o=0, g=1, P=P, name=f"postal(lam={lam})")
