"""The delay model of Papadimitriou & Yannakakis (Section 6.2, "Latency").

The delay model charges a fixed delay ``d`` between the production of a
value on one processor and its use on another — and nothing else: no
overhead, no bandwidth limit, no capacity.  The paper notes the layered
FFT "is a special case of the 'layered' FFT algorithm proposed in [25]"
but that the delay model "has no bandwidth limitations and hence no
contention" — so it cannot rank the naive and staggered remap schedules
that differ by an order of magnitude on the real machine.

These costings exist as the Section 6 comparison baseline.
"""

from __future__ import annotations

import math

__all__ = [
    "delay_point_to_point",
    "delay_broadcast_time",
    "delay_sum_time",
    "delay_fft_time",
]


def delay_point_to_point(d: float) -> float:
    """One message: just ``d``."""
    if d < 0:
        raise ValueError(f"d must be >= 0, got {d}")
    return d


def delay_broadcast_time(P: int, d: float) -> float:
    """Optimal delay-model broadcast of one datum to ``P`` processors.

    With no sending cost, an informed processor can inform another every
    time unit (value production takes the unit); each message takes
    ``d``.  The informed count obeys the postal recurrence with
    ``lam = d + 1``; equivalently LogP with ``o=0, g=1, L=d+1...``  For
    the comparison table we use the standard statement: time
    ``~ d * log2 P / log2(d+1)`` asymptotically; exactly, the postal
    bound with integer ``lam = int(d) + 1``.
    """
    if P < 1:
        raise ValueError(f"P must be >= 1, got {P}")
    from .postal import postal_broadcast_time

    return float(postal_broadcast_time(P, int(d) + 1))


def delay_sum_time(n: int, P: int, d: float) -> float:
    """Delay-model summation: local sums then a combining tree where
    each level costs ``d + 1``."""
    if n < 1 or P < 1:
        raise ValueError("n and P must be >= 1")
    local = math.ceil(n / P) - 1
    depth = math.ceil(math.log2(P)) if P > 1 else 0
    return local + depth * (d + 1)


def delay_fft_time(n: int, P: int, d: float) -> float:
    """Delay-model hybrid FFT: compute + one remap paying a single ``d``
    (no bandwidth term at all — every message of the all-to-all travels
    concurrently for free).  Contrast with LogP's ``g*(n/P - n/P**2) + L``."""
    if n < P * P:
        raise ValueError(f"need n >= P**2, got n={n}, P={P}")
    return (n / P) * math.log2(n) + d
