"""A PRAM simulator — the baseline model LogP argues against (Section 6.1).

The PRAM "assumes that interprocessor communication has infinite
bandwidth, zero latency, and zero overhead (g = 0, L = 0, o = 0)" and
that processors run in lockstep against a single shared memory.  This
module implements that machine faithfully — including the concurrency
rules of its EREW / CREW / CRCW variants — so that the Section 6
benchmark can run the *same* algorithms here and on the LogP simulator
and exhibit the misprediction.

Programs are generators, one per processor; each ``yield`` is one
synchronous PRAM step::

    def program(pid, n_procs):
        vals = yield PramStep(reads=[2 * pid, 2 * pid + 1],
                              write=lambda v: (pid, v[0] + v[1]))
        ...

Reads happen at the start of the step, writes at the end (the standard
semantics); the ``write`` callback receives the read values so a step
can read-modify-write.  Concurrency violations (two readers of one cell
under EREW; two writers under EREW/CREW; unequal concurrent writes under
CRCW-common) raise :class:`ConcurrencyViolation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Generator

__all__ = [
    "PramStep",
    "ConcurrencyViolation",
    "PRAM",
    "PramResult",
    "pram_sum_program",
    "pram_broadcast_program",
    "pram_sum_steps",
    "pram_broadcast_steps",
]


class ConcurrencyViolation(RuntimeError):
    """A read or write pattern forbidden by the PRAM variant."""


@dataclass(frozen=True, slots=True)
class PramStep:
    """One synchronous step: read cells, then optionally write one cell.

    ``write`` is either ``None``, a ``(addr, value)`` pair, or a callable
    receiving the list of read values and returning ``(addr, value)`` (or
    ``None`` to skip the write).
    """

    reads: tuple[int, ...] = ()
    write: Any = None

    def __init__(self, reads=(), write=None):
        object.__setattr__(self, "reads", tuple(reads))
        object.__setattr__(self, "write", write)


@dataclass(slots=True)
class PramResult:
    """Outcome of a PRAM run."""

    steps: int
    memory: list[Any]
    returns: list[Any]


class PRAM:
    """Synchronous shared-memory machine with concurrency checking.

    Args:
        n_procs: number of processors.
        memory_size: shared memory cells (initialized to ``initial`` or 0).
        mode: ``"EREW"``, ``"CREW"``, ``"CRCW-arbitrary"``,
            ``"CRCW-common"`` or ``"CRCW-priority"`` (lowest pid wins).
    """

    _MODES = ("EREW", "CREW", "CRCW-arbitrary", "CRCW-common", "CRCW-priority")

    def __init__(
        self, n_procs: int, memory_size: int, mode: str = "EREW", initial=None
    ) -> None:
        if n_procs < 1:
            raise ValueError(f"n_procs must be >= 1, got {n_procs}")
        if memory_size < 0:
            raise ValueError(f"memory_size must be >= 0, got {memory_size}")
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {mode!r}")
        self.n_procs = n_procs
        self.mode = mode
        self.memory: list[Any] = (
            list(initial) if initial is not None else [0] * memory_size
        )
        if initial is not None and len(self.memory) != memory_size:
            raise ValueError("initial contents must match memory_size")

    def run(
        self,
        factory: Callable[[int, int], Generator],
        max_steps: int = 1_000_000,
    ) -> PramResult:
        """Run one generator per processor to completion, synchronously."""
        gens = [factory(pid, self.n_procs) for pid in range(self.n_procs)]
        pending: list[PramStep | None] = [None] * self.n_procs
        returns: list[Any] = [None] * self.n_procs
        results: list[Any] = [None] * self.n_procs
        live = set(range(self.n_procs))
        steps = 0

        # Prime every program to its first step.
        for pid in list(live):
            try:
                pending[pid] = gens[pid].send(None)
            except StopIteration as stop:
                returns[pid] = stop.value
                live.discard(pid)

        while live:
            steps += 1
            if steps > max_steps:
                raise RuntimeError(f"PRAM exceeded {max_steps} steps")
            # --- read phase ---
            read_map: dict[int, list[int]] = {}
            for pid in live:
                step = pending[pid]
                for addr in step.reads:
                    self._check_addr(addr)
                    read_map.setdefault(addr, []).append(pid)
            if self.mode == "EREW":
                for addr, readers in read_map.items():
                    if len(readers) > 1:
                        raise ConcurrencyViolation(
                            f"EREW: cell {addr} read by processors {readers}"
                        )
            for pid in live:
                results[pid] = [self.memory[a] for a in pending[pid].reads]
            # --- write phase ---
            writes: dict[int, list[tuple[int, Any]]] = {}
            for pid in sorted(live):
                w = pending[pid].write
                if callable(w):
                    w = w(results[pid])
                if w is None:
                    continue
                addr, value = w
                self._check_addr(addr)
                writes.setdefault(addr, []).append((pid, value))
            for addr, writers in writes.items():
                if len(writers) > 1:
                    if self.mode in ("EREW", "CREW"):
                        raise ConcurrencyViolation(
                            f"{self.mode}: cell {addr} written by "
                            f"processors {[p for p, _ in writers]}"
                        )
                    if self.mode == "CRCW-common":
                        values = {repr(v) for _, v in writers}
                        if len(values) > 1:
                            raise ConcurrencyViolation(
                                f"CRCW-common: unequal writes to cell {addr}"
                            )
                # arbitrary -> first in pid order; priority -> lowest pid;
                # both resolve to writers[0] since pids were sorted.
                self.memory[addr] = writers[0][1]
            # --- advance programs ---
            for pid in list(live):
                try:
                    pending[pid] = gens[pid].send(results[pid])
                except StopIteration as stop:
                    returns[pid] = stop.value
                    live.discard(pid)

        return PramResult(steps=steps, memory=self.memory, returns=returns)

    def _check_addr(self, addr: int) -> None:
        if not 0 <= addr < len(self.memory):
            raise IndexError(
                f"address {addr} outside memory of {len(self.memory)} cells"
            )


# ----------------------------------------------------------------------
# Canonical PRAM algorithms (for the model-comparison benchmark)
# ----------------------------------------------------------------------


def pram_sum_program(n: int):
    """EREW parallel sum of ``memory[0:n]`` into ``memory[0]`` in
    ``ceil(log2 n)`` steps with ``n/2`` processors (free communication —
    the loophole)."""

    def factory(pid: int, P: int):
        def run():
            stride = 1
            while stride < n:
                a, b = 2 * stride * pid, 2 * stride * pid + stride
                if b < n:
                    vals = yield PramStep(
                        reads=[a, b], write=lambda v, a=a: (a, v[0] + v[1])
                    )
                else:
                    yield PramStep()  # idle, stay in lockstep
                stride *= 2
            return None

        return run()

    return factory


def pram_broadcast_program(n: int):
    """EREW broadcast of ``memory[0]`` to cells ``0..n-1`` by recursive
    doubling in ``ceil(log2 n)`` steps."""

    def factory(pid: int, P: int):
        def run():
            have = 1
            while have < n:
                src, dst = pid, pid + have
                if pid < have and dst < n:
                    vals = yield PramStep(
                        reads=[src], write=lambda v, dst=dst: (dst, v[0])
                    )
                else:
                    yield PramStep()
                have *= 2
            return None

        return run()

    return factory


def pram_sum_steps(n: int) -> int:
    """The PRAM cost model's answer for summing n values: ``ceil(log2 n)``
    steps, independent of any communication parameter."""
    return math.ceil(math.log2(n)) if n > 1 else 0


def pram_broadcast_steps(n: int) -> int:
    """PRAM broadcast cost: ``ceil(log2 n)`` (EREW doubling); 1 on CREW."""
    return math.ceil(math.log2(n)) if n > 1 else 0
