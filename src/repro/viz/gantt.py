"""ASCII Gantt charts of processor activity — the Figure 3/4 right-hand
panels, rendered in text.

Each processor gets one row; time flows left to right in fixed-width
buckets.  Legend: ``s`` send overhead, ``r`` receive overhead,
``#`` compute, ``!`` stall, ``.`` idle, ``-`` message in flight
(drawn on the sender's row between injection and arrival when
``show_flight`` is set).
"""

from __future__ import annotations

import math

from ..core.schedule import Activity, Schedule

__all__ = ["render_gantt", "activity_char"]

_CHARS = {
    Activity.SEND: "s",
    Activity.RECV: "r",
    Activity.COMPUTE: "#",
    Activity.STALL: "!",
    Activity.IDLE: ".",
}


def activity_char(kind: Activity) -> str:
    """The single-character glyph for an activity."""
    return _CHARS[kind]


def render_gantt(
    schedule: Schedule,
    *,
    width: int = 72,
    until: float | None = None,
    show_flight: bool = False,
) -> str:
    """Render a schedule as an ASCII Gantt chart.

    Args:
        schedule: the trace to draw.
        width: number of time buckets across the page.
        until: clip the time axis (default: the makespan).
        show_flight: overlay ``-`` on the sender's row while its message
            is in the network (only where the row is otherwise idle).
    """
    span = schedule.makespan if until is None else until
    if span <= 0:
        return "(empty schedule)"
    P = schedule.params.P
    dt = span / width
    rows: list[list[str]] = [["."] * width for _ in range(P)]

    def paint(proc: int, start: float, end: float, ch: str, force: bool) -> None:
        if end <= start:
            # Instantaneous events still deserve one glyph.
            end = start + dt / 2
        lo = max(0, int(start / dt))
        hi = min(width, max(lo + 1, int(math.ceil(end / dt))))
        for i in range(lo, hi):
            if force or rows[proc][i] == ".":
                rows[proc][i] = ch

    if show_flight:
        for m in schedule.messages:
            paint(m.src, m.inject, m.arrive, "-", force=False)
    for rank, tl in sorted(schedule.timelines.items()):
        for iv in tl.intervals:
            if iv.start >= span:
                continue
            paint(rank, iv.start, min(iv.end, span), _CHARS[iv.kind], force=True)

    header_marks = 6
    header = [" "] * width
    label = f"0{'':{width}}"
    axis = []
    for k in range(header_marks + 1):
        t = span * k / header_marks
        axis.append(f"{t:g}")
    # Simple axis line: tick labels evenly spaced.
    slot = max(1, width // header_marks)
    axis_line = ""
    for k in range(header_marks):
        axis_line += f"{span * k / header_marks:<{slot}.4g}"
    axis_line = axis_line[:width]

    out = [f"t:   {axis_line}| {span:g}"]
    for rank in range(P):
        out.append(f"P{rank:<3d} " + "".join(rows[rank]))
    out.append(
        "     legend: s=send r=recv #=compute !=stall .=idle"
        + (" -=in flight" if show_flight else "")
    )
    del header, label, axis
    return "\n".join(out)
