"""Text rendering: ASCII Gantt charts, tree diagrams, aligned tables."""

from .gantt import activity_char, render_gantt
from .tables import format_table
from .tree import render_broadcast_tree, render_summation_tree

__all__ = [
    "render_gantt",
    "activity_char",
    "format_table",
    "render_broadcast_tree",
    "render_summation_tree",
]
