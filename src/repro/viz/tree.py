"""Text rendering of broadcast/summation trees (Figure 3/4 left panels)."""

from __future__ import annotations

from ..algorithms.broadcast import BroadcastTree
from ..algorithms.summation import SummationTree

__all__ = ["render_broadcast_tree", "render_summation_tree"]


def _render(
    root: int,
    children_of,
    label,
    prefix: str = "",
) -> list[str]:
    lines = [f"{prefix}{label(root)}"]
    kids = children_of(root)
    for i, child in enumerate(kids):
        last = i == len(kids) - 1
        branch = "`-- " if last else "|-- "
        extension = "    " if last else "|   "
        sub = _render(child, children_of, label)
        lines.append(prefix + branch + sub[0].lstrip())
        lines.extend(prefix + extension + s for s in sub[1:])
    return lines


def render_broadcast_tree(tree: BroadcastTree) -> str:
    """Render an optimal broadcast tree with per-node receive times —
    the node labels of Figure 3's left panel."""

    def label(rank: int) -> str:
        t = tree.recv_time[rank]
        return f"P{rank} (t={t:g})"

    return "\n".join(_render(tree.root, lambda r: tree.children[r], label))


def render_summation_tree(tree: SummationTree) -> str:
    """Render a summation tree with per-node deadlines and input counts —
    the Figure 4 left panel."""

    def label(rank: int) -> str:
        node = tree.nodes[rank]
        return (
            f"P{rank} (deadline={node.deadline:g}, "
            f"inputs={node.local_inputs})"
        )

    return "\n".join(
        _render(tree.root, lambda r: tree.nodes[r].children, label)
    )
