"""Aligned text tables — the output format every benchmark prints in."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    floatfmt: str = ".3g",
    title: str = "",
) -> str:
    """Format rows into an aligned monospace table.

    Numbers are right-aligned and formatted with ``floatfmt``; everything
    else is left-aligned ``str()``.
    """

    def cell(v: Any) -> str:
        if isinstance(v, bool) or v is None:
            return str(v)
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    def is_num(v: Any) -> bool:
        return isinstance(v, (int, float)) and not isinstance(v, bool)

    texts = [[cell(v) for v in row] for row in rows]
    ncols = len(headers)
    for row in texts:
        if len(row) != ncols:
            raise ValueError(
                f"row has {len(row)} cells, header has {ncols}"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in texts)) if texts else len(headers[c])
        for c in range(ncols)
    ]
    numeric = [
        all(is_num(row[c]) for row in rows) and bool(rows) for c in range(ncols)
    ]

    def fmt_row(cells: Sequence[str], nums: Sequence[bool]) -> str:
        return "  ".join(
            c.rjust(w) if num else c.ljust(w)
            for c, w, num in zip(cells, widths, nums)
        ).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers, [False] * ncols))
    lines.append("  ".join("-" * w for w in widths))
    for row in texts:
        lines.append(fmt_row(row, numeric))
    return "\n".join(lines)
