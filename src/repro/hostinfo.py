"""Host fingerprinting for benchmark and live-run reports.

A measured number without the machine it was measured on is noise a
week later.  :func:`host_fingerprint` captures the minimal identifying
context — platform, CPU count, Python build — using only the standard
library, cheap enough to embed in every report artifact.
"""

from __future__ import annotations

import os
import platform
import sys

__all__ = ["host_fingerprint"]


def host_fingerprint() -> dict:
    """Identifying facts about the machine producing a report."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor() or platform.machine(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "executable": sys.executable,
    }
