"""Performance benchmark entry point: ``python -m repro.bench``.

Times the simulator's hot paths on fixed workloads and writes a
``BENCH_<date>.json`` report comparing against the recorded pre-fast-path
baseline (:data:`PR1_BASELINE`).  The workload shapes match
``benchmarks/test_perf_simulator.py`` so the numbers line up with the
pytest-benchmark suite:

* ``engine_dispatch`` — 20k no-op events through the raw event engine;
* ``stream`` / ``stream_traced`` — a 2000-message pipelined point-to-point
  stream (the paper's Section 4.1 schedule), untraced and traced;
* ``stalls`` — a 15-sender many-to-one flood in the capacity-stall
  regime (Section 4.1.2);
* ``fuzz_smoke`` — 60 seeds of the differential fuzz harness under
  deterministic latency;
* ``fabric_ring`` / ``fabric_contended`` — the stream workload routed
  through a ring :class:`~repro.sim.net.TopologyFabric` and a flood
  through a :class:`~repro.sim.net.ContentionFabric` (the network-fabric
  smoke numbers CI archives);
* ``sweep_scaling`` — the same fuzz workload through the parallel sweep
  runner at 1 and 2 workers (wall time; informational — on a single
  core the pool adds overhead, on a multicore box it amortizes);
* ``compiled_grid`` / ``compiled_grid_machine`` — an o-sensitivity
  parameter grid (dense overhead sweep of a pipelined optimal-tree
  broadcast at several ``P``) through :func:`repro.sim.sweep.grid_map`
  on the compiled schedule evaluator and on the event machine; the
  report records ``compiled_grid_speedup`` (machine / compiled), the
  headline number for the DAG-evaluator fast path (target >= 10x);
* ``compiled_vs_machine`` — the compiled evaluator over a mixed
  verification grid (o-sweep plus an L x g box that crosses capacity
  and schedule-region boundaries, stalls included); the machine runs
  the same grid untimed and every ``(makespan, stall_time)`` pair must
  be bit-identical, or the benchmark aborts;
* ``compiled_seed_sweep`` / ``compiled_seed_sweep_machine`` — a
  binomial broadcast+reduce under seeded :class:`JitteredLatency`
  replayed over a (point x seed) product grid through
  :func:`~repro.sim.compiled.grid.evaluate_seed_grid` versus one
  serial machine run per (point, seed); bit-identity on every column
  is verified before timing, and the report records
  ``compiled_seed_sweep_speedup`` (target >= 5x at 500 seeds);
* ``compiled_topology_grid`` / ``compiled_topology_grid_machine`` —
  the pipelined-broadcast o-sweep routed through a deterministic ring
  :class:`~repro.sim.net.TopologyFabric` on both backends (the per-hop
  delay lowering's headline grid), compiled-vs-machine parity checked
  before timing, speedup recorded as
  ``compiled_topology_grid_speedup``;
* ``folded_broadcast_grid`` — a binomial broadcast at ``P = 2**17``
  built class-compactly (:func:`~repro.algorithms.broadcast.binomial_tree_folded`),
  folded (:func:`~repro.sim.compiled.fold_tree`), and evaluated over an
  o-sweep grid by rank equivalence classes
  (:func:`~repro.sim.compiled.evaluate_folded_grid`) — ~3 200 classes
  standing in for 131 072 ranks, no per-rank object ever materialized;
* ``folded_vs_unfolded`` — the same binomial broadcast pipeline at
  ``P = 2**14`` end to end on both paths: generators compiled and
  evaluated per rank versus the class-compact constructor folded and
  evaluated per class, bit-identity verified first, with the headline
  ``folded_vs_unfolded_speedup`` recorded (target >= 50x);
* ``serve_throughput`` / ``serve_cache_hit`` — the :mod:`repro.serve`
  job server under sustained sequential traffic: single-point requests
  cycling over a fixed parameter pool (first cycle computes, the rest
  is cache service) and the identical multi-point sweep re-requested
  until it is pure cache hits.  Beyond the gated timings, the report
  records ``serve_requests_per_s`` and ``serve_cache_hit_rate`` as
  first-class serving baselines.
* ``serve_degraded`` — serving throughput *under fire*: machine-backend
  sweeps sharded across a :class:`~repro.sim.supervise.SupervisedPool`
  while a killer thread SIGKILLs one pool worker per period.  Every
  result is checked bit-identical to the serial ``grid_map`` before the
  timing counts (a parity failure raises), and the report records
  ``serve_degraded_requests_per_s`` plus the observed worker-death
  count — the self-healing overhead baseline.

``--only PREFIX`` runs just the workloads whose name starts with
``PREFIX`` (e.g. ``--only compiled`` for the grid-evaluator pair, or
``--only folded`` for ``folded_broadcast_grid`` + ``folded_vs_unfolded``).

Every report records the process peak RSS (``max_rss_kb``, from
``resource.getrusage``) alongside the timings; ``--baseline`` gates it
with its own, looser slack (``--max-mem-regression``, default 25%),
because an allocator high-watermark is coarser than a best-of-N timing
but a symmetry-folding or tape-layout regression that doubles memory
must still fail loudly.
``--backend {machine,compiled,auto}`` selects the backend timed by
``compiled_grid`` (default ``compiled``; the machine reference timing
is always taken on the machine).  Backend resolution has the same
refusal semantics as :func:`repro.sim.sweep.grid_map`: asking for the
compiled path under a nondeterministic timing configuration is a loud
``ValueError``, never a silent fallback.

Each timing is the best of ``--reps`` runs (default 7): minimum, not
mean, because scheduling noise only ever adds time.  ``--smoke`` shrinks
every workload ~10x for CI smoke coverage and omits the baseline
comparison (speedups are only meaningful at the calibrated sizes).

``--baseline PATH`` compares the run against any previously written
``BENCH_*.json``: per-workload ratios are printed and the process exits
nonzero if any shared hot-path timing regressed more than
``--max-regression`` (default 5%) — the CI regression gate.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
import time
from typing import Callable

from .core import LogPParams
from .sim import Engine, LogPMachine, Recv, Send, run_programs
from .sim.fuzz import fuzz_sweep
from .sim.net import ContentionFabric, TopologyFabric

__all__ = ["PR1_BASELINE", "run_all", "compare_reports", "main"]

#: Best-of-7 seconds on the reference container at the pre-fast-path
#: commit (PR 1, 9032830), same workloads as below.  The fast-path
#: acceptance bar is >= 2x on ``engine_dispatch_s`` and ``stream_s``.
PR1_BASELINE: dict[str, float] = {
    "engine_dispatch_s": 0.028509,
    "stream_s": 0.035726,
    "stream_traced_s": 0.052693,
    "stalls_s": 0.037877,
}


def _peak_rss_kb() -> int:
    """Process peak RSS in KB (``ru_maxrss``; high-watermark, monotone).

    0 where the :mod:`resource` module is unavailable (non-POSIX) —
    the report then records no memory figure rather than a wrong one.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only module
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss in bytes
        rss //= 1024
    return rss


def _best_of(fn: Callable[[], None], reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


# ----------------------------------------------------------------------
# Workloads (shapes mirror benchmarks/test_perf_simulator.py)
# ----------------------------------------------------------------------


def _engine_dispatch(n_events: int) -> None:
    eng = Engine()

    def noop() -> None:
        pass

    for i in range(n_events):
        eng.schedule(float(i), noop)
    eng.run()


def _stream(k: int, trace: bool) -> None:
    p = LogPParams(L=6, o=2, g=4, P=2)

    def prog(rank: int, P: int):
        if rank == 0:
            for i in range(k):
                yield Send(1, payload=i)
            return None
        total = 0
        for _ in range(k):
            m = yield Recv()
            total += m.payload
        return total

    run_programs(p, prog, trace=trace)


def _stalls(k: int) -> None:
    p = LogPParams(L=8, o=1, g=4, P=16)

    def prog(rank: int, P: int):
        if rank == 0:
            for _ in range(k * (P - 1)):
                yield Recv()
            return None
        for _ in range(k):
            yield Send(0)
        return None

    run_programs(p, prog, trace=False)


def _fabric_ring(k: int) -> None:
    """The stream workload over a ring TopologyFabric (routed flights)."""
    p = LogPParams(L=6, o=2, g=4, P=2)
    machine = LogPMachine(
        p, fabric=TopologyFabric.ring(2, L=6), trace=False
    )

    def prog(rank: int, P: int):
        if rank == 0:
            for i in range(k):
                yield Send(1, payload=i)
            return None
        for _ in range(k):
            yield Recv()
        return None

    machine.run(prog)


def _fabric_contended(k: int) -> None:
    """Many-to-one flood over a contended ring: every message queues."""
    p = LogPParams(L=8, o=1, g=4, P=8)
    machine = LogPMachine(
        p, fabric=ContentionFabric.ring(8, L=8), trace=False
    )

    def prog(rank: int, P: int):
        if rank == 0:
            for _ in range(k * (P - 1)):
                yield Recv()
            return None
        for _ in range(k):
            yield Send(0)
        return None

    machine.run(prog)


def _fuzz(seeds: int, workers: int) -> None:
    # compiled_check/chaos_check=False keeps this workload's cost
    # identical to what records predating the compiled backend and the
    # chaos harness measured (each has its own workload); correctness
    # sweeps in tests and CI run with the checks on.
    summary = fuzz_sweep(
        range(seeds),
        ("fixed",),
        workers=workers,
        compiled_check=False,
        chaos_check=False,
    )
    if not summary.ok:
        raise RuntimeError(
            "fuzz failures during benchmark: " + "; ".join(summary.failures[:3])
        )


def _chaos_broadcast(
    n_victims: int, collect: list | None = None
) -> None:
    """Self-healing broadcast under one crash per run, CM-5 parameters.

    Times the full fault path end to end: heartbeat traffic, crash
    injection, detection, re-graft, and root-accounted termination.
    With ``collect`` it also appends one serializable fault-report
    summary per run — the smoke profile ships these as the CI artifact.
    """
    from .algorithms.broadcast import (
        ft_broadcast_program,
        ft_heartbeat_config,
    )
    from .sim.faults import CrashStop, FaultPlan

    p = LogPParams(L=6.0, o=2.0, g=4.0, P=8)
    hb = ft_heartbeat_config(p, horizon=20_000.0)
    factory = ft_broadcast_program(42, poll=hb.period / 2, deadline=15_000.0)
    for victim in range(1, n_victims + 1):
        at = 10.0 * victim
        machine = LogPMachine(
            p, heartbeat=hb, fault_plan=FaultPlan([CrashStop(victim, at)])
        )
        res = machine.run(factory)
        bad = [
            r
            for r in range(p.P)
            if r != victim and res.value(r) != 42
        ]
        if bad:
            raise RuntimeError(
                f"chaos_broadcast: survivors {bad} missed the value "
                f"(victim {victim} at t={at})"
            )
        if collect is not None:
            rep = res.fault_report()
            collect.append(
                {
                    "victim": victim,
                    "crash_at": at,
                    "makespan": res.makespan,
                    "crashes": [
                        [e.rank, e.time, e.kind] for e in rep.crashes
                    ],
                    "suspicions": len(rep.suspects),
                    "heartbeats_sent": rep.heartbeats_sent,
                    "dropped_at_dead_interface": rep.dropped_at_dead_interface,
                    "gave_up_sends": rep.gave_up_sends,
                    "wedged_ranks": rep.wedged_ranks,
                }
            )


def _serve_requests(
    requests: list, *, batch_window: float = 0.0
) -> dict:
    """Serve ``requests`` sequentially on a fresh in-process server.

    Sequential awaits measure sustained request service time — the
    cache/dedup/batch layer plus simulation — not pipelining tricks.
    Returns the server's stats snapshot (cache hit rate included).
    """
    import asyncio

    from .serve import ServeConfig, SimulationServer

    async def _run() -> dict:
        config = ServeConfig(batch_window=batch_window, use_pool=False)
        async with SimulationServer(config) as server:
            for request in requests:
                job = await server.submit(request)
                await job.wait()
            return server.stats_snapshot()

    return asyncio.run(_run())


def _serve_throughput_requests(n_requests: int, distinct: int) -> list:
    """``n_requests`` single-point requests cycling over ``distinct``
    parameter points: the first cycle computes, the rest is cache
    service — the sustained-traffic shape the serving layer exists for.
    """
    from .serve import SweepRequest

    pool = [
        LogPParams(L=6.0, o=0.5 + 0.05 * i, g=4.0, P=4)
        for i in range(distinct)
    ]
    return [
        SweepRequest.make(
            "stream",
            [pool[i % distinct]],
            args={"k": 8},
            backend="compiled",
        )
        for i in range(n_requests)
    ]


def _serve_degraded_requests(
    n_requests: int, n_points: int
) -> tuple[list, list]:
    """``n_requests`` distinct machine-backend sweeps plus their serial
    ground truth.  Distinct points and seeds everywhere: no request is
    servable from cache, so every one exercises the supervised pool."""
    from .serve import SweepRequest
    from .serve.server import _eval_shard, canonical_latency

    requests, expected = [], []
    for r in range(n_requests):
        raw = [
            (4.0 + 0.01 * (r * n_points + i), 1.0, 4.0, 8, None)
            for i in range(n_points)
        ]
        pts = [LogPParams(L=L, o=o, g=g, P=P) for (L, o, g, P, _G) in raw]
        requests.append(
            SweepRequest.make(
                "flood", pts, args={"k": 12}, seed=r, backend="machine"
            )
        )
        expected.append(
            _eval_shard(
                "flood", {"k": 12}, r, "machine", canonical_latency(None), raw
            )
        )
    return requests, expected


def _serve_degraded(
    requests: list, expected: list, *, kill_period: float
) -> tuple[float, int, dict]:
    """Serve ``requests`` on a supervised 2-worker server while a killer
    thread SIGKILLs one random pool worker every ``kill_period`` seconds.

    Returns ``(elapsed_s, worker_deaths, stats)``.  Raises if any served
    pair deviates from the precomputed serial ground truth — degraded
    throughput is only worth measuring when it is still correct.
    """
    import asyncio
    import os as _os
    import random as _random
    import signal as _signal
    import threading

    from .serve import ServeConfig, SimulationServer

    async def _run() -> tuple[float, int, dict]:
        config = ServeConfig(
            workers=2, batch_window=0.0, shard_min_points=2, supervised=True
        )
        async with SimulationServer(config) as server:
            stop = threading.Event()
            rng = _random.Random(0xDE6)

            def killer() -> None:
                while not stop.wait(kill_period):
                    pool = server._pool
                    pids = pool.pids() if hasattr(pool, "pids") else []
                    if pids:
                        try:
                            _os.kill(rng.choice(pids), _signal.SIGKILL)
                        except ProcessLookupError:
                            pass

            thread = threading.Thread(target=killer, daemon=True)
            t0 = time.perf_counter()
            thread.start()
            try:
                for i, (request, want) in enumerate(zip(requests, expected)):
                    job = await server.submit(request)
                    got = await job.wait()
                    if list(got) != list(want):
                        raise RuntimeError(
                            f"serve_degraded parity failure on request {i}: "
                            "supervised result deviates from serial grid_map"
                        )
            finally:
                stop.set()
                thread.join()
            elapsed = time.perf_counter() - t0
            deaths = getattr(server._pool, "deaths", 0)
            return elapsed, deaths, server.stats_snapshot()

    return asyncio.run(_run())


def _serve_cache_hit_requests(n_requests: int, n_points: int) -> list:
    """The identical ``n_points``-point sweep ``n_requests`` times: one
    cold batch, then pure cache hits (the hit-rate baseline)."""
    from .serve import SweepRequest

    points = [
        LogPParams(L=6.0, o=0.25 + 0.125 * i, g=4.0, P=8)
        for i in range(n_points)
    ]
    return [
        SweepRequest.make(
            "bcast_tree", points, args={"k": 8}, backend="compiled"
        )
        for _ in range(n_requests)
    ]


def _bcast_stream_factory(k: int):
    """Pipelined optimal-tree broadcast of ``k`` items, any ``P``.

    The tree shape is the optimal single-item broadcast tree for the
    paper's base parameters at each ``P`` (cached), so one factory
    serves a grid whose ``P`` varies.
    """
    from .algorithms.broadcast import (
        optimal_broadcast_tree,
        pipelined_broadcast_program,
    )

    trees: dict[int, list[list[int]]] = {}

    def factory(rank: int, P: int):
        children = trees.get(P)
        if children is None:
            children = optimal_broadcast_tree(
                LogPParams(L=6, o=2, g=4, P=P)
            ).children
            trees[P] = children
        return pipelined_broadcast_program(children, range(k))(rank, P)

    return factory


def _o_sweep_grid(n_o: int, ps: tuple[int, ...]) -> list[LogPParams]:
    """Dense overhead sweep at fixed L=6, g=4, for each ``P`` in ``ps``."""
    return [
        LogPParams(L=6.0, o=0.25 + i * 7.75 / (n_o - 1), g=4.0, P=P)
        for P in ps
        for i in range(n_o)
    ]


def _compiled_grid(n_o: int, ps: tuple[int, ...], k: int, backend: str) -> None:
    from .sim.sweep import grid_map

    grid_map(_bcast_stream_factory(k), _o_sweep_grid(n_o, ps), backend=backend)


def _compiled_vs_machine(n_o: int, box: int, k: int) -> None:
    """Bit-identity check: compiled vs machine over a mixed grid.

    The grid combines the o-sweep (few schedule regions) with an
    ``L x g`` box (many regions: capacity steps, arrival-order
    crossings, capacity-stall clamps), so both the tape-covered fast
    path and the scalar-replay fallback are exercised.  Equality is
    exact — any drift is a correctness bug, not noise.
    """
    from .sim.sweep import grid_map

    grid = _o_sweep_grid(n_o, (8,)) + [
        LogPParams(L=float(L), o=2.0, g=float(g), P=8)
        for L in range(1, box + 1)
        for g in range(1, box // 2 + 1)
    ]
    fac = _bcast_stream_factory(k)
    compiled = grid_map(fac, grid, backend="compiled")
    machine = grid_map(fac, grid, backend="machine")
    if compiled != machine:
        bad = sum(1 for a, b in zip(compiled, machine) if a != b)
        raise RuntimeError(
            f"compiled/machine divergence on {bad}/{len(grid)} grid points"
        )


def _bcast_reduce_factory():
    """Binomial broadcast then binomial reduce: the seeded-sweep shape.

    Single-phase tree traffic (14 messages at P=8) keeps the recorded
    tape count low under drawn latencies — the regime the seed axis
    vectorizes.  Order-sensitive collectives (all-reduce, multi-round
    exchanges) fragment into one region per global message ordering and
    replay scalar instead: still exact, just not the fast path this
    workload gates.
    """
    from .sim.collectives import binomial_broadcast, binomial_reduce

    def factory(rank: int, P: int):
        got = yield from binomial_broadcast(rank, P, 17)
        return (yield from binomial_reduce(rank, P, got + rank))

    return factory


def _seed_sweep_latency(params: LogPParams, seed: int):
    from .sim.latency import JitteredLatency

    return JitteredLatency(params.L, scale_frac=0.02, seed=seed)


def _seed_sweep_grid() -> list[LogPParams]:
    # Both points sit in the same schedule-ordering regime, so the
    # recorded tapes stay few (~5); an o=1 point would fragment the
    # region cover (~13 tapes) and halve the headline speedup.
    return [
        LogPParams(L=6.0, o=2.0, g=4.0, P=8),
        LogPParams(L=6.0, o=3.0, g=4.0, P=8),
    ]


def _compiled_seed_sweep(seeds: range) -> None:
    from .sim.compiled import compile_programs
    from .sim.compiled.grid import evaluate_seed_grid

    prog = compile_programs(_bcast_reduce_factory(), 8)
    res = evaluate_seed_grid(
        prog, _seed_sweep_grid(), seeds, _seed_sweep_latency
    )
    if res.fallbacks:
        raise RuntimeError(
            f"compiled_seed_sweep: {res.fallbacks} scalar fallbacks — "
            "tape coverage regressed, the timing no longer measures the "
            "vectorized path"
        )


def _seed_sweep_machine(seeds: range) -> list[tuple[float, float]]:
    factory = _bcast_reduce_factory()
    out: list[tuple[float, float]] = []
    for params in _seed_sweep_grid():
        for s in seeds:
            res = LogPMachine(
                params, latency=_seed_sweep_latency(params, s), trace=False
            ).run(factory)
            out.append((res.makespan, res.total_stall_time))
    return out


def _seed_sweep_verify(seeds: range) -> int:
    """Bit-identity of every (point, seed) column vs the serial machine.

    Runs once before the timed passes; returns the recorded tape count
    for the report.  Any drift aborts the benchmark — the speedup is
    only worth reporting for an exact replay.
    """
    from .sim.compiled import compile_programs
    from .sim.compiled.grid import evaluate_seed_grid

    prog = compile_programs(_bcast_reduce_factory(), 8)
    res = evaluate_seed_grid(
        prog, _seed_sweep_grid(), seeds, _seed_sweep_latency
    )
    got = list(zip(res.makespans, res.total_stall_times))
    want = _seed_sweep_machine(seeds)
    if got != want:
        bad = sum(1 for a, b in zip(got, want) if a != b)
        raise RuntimeError(
            f"compiled_seed_sweep divergence on {bad}/{len(want)} "
            "(point, seed) columns"
        )
    return res.tapes


def _topology_grid(n_o: int) -> list[LogPParams]:
    return _o_sweep_grid(n_o, (8,))


def _compiled_topology_grid(n_o: int, k: int, backend: str) -> None:
    from .sim.sweep import grid_map

    grid_map(
        _bcast_stream_factory(k),
        _topology_grid(n_o),
        backend=backend,
        fabric=TopologyFabric.ring(8, L=6),
    )


def _folded_points(P: int, n_o: int) -> list[LogPParams]:
    """Dyadic o-sweep (multiples of 1/8) at fixed L=8, g=4 — the
    folded evaluator's exactness guard requires dyadic parameters."""
    return [
        LogPParams(L=8.0, o=0.25 + 0.125 * i, g=4.0, P=P)
        for i in range(n_o)
    ]


def _folded_broadcast_grid(P: int, n_o: int) -> int:
    """Build + fold + grid-evaluate a binomial broadcast at huge ``P``.

    The whole pipeline is Θ(classes): the class-compact constructor
    never materializes per-rank children lists, ``fold_tree`` converts
    classes directly, and the folded grid tapes weight aggregates by
    class multiplicity.  Returns the class count for the report.
    """
    from .algorithms.broadcast import binomial_tree_folded
    from .sim.compiled import evaluate_folded_grid, fold_tree

    folded = fold_tree(binomial_tree_folded(P))
    res = evaluate_folded_grid(folded, _folded_points(P, n_o))
    if res.divergent:
        raise RuntimeError(
            f"folded_broadcast_grid: {len(res.divergent)} point(s) "
            "diverged — the workload no longer measures the folded path"
        )
    return res.classes


def _unfolded_broadcast_pipeline(P: int, pts: list[LogPParams]) -> list:
    """The per-rank reference pipeline: compile generators, evaluate."""
    from .algorithms.broadcast import binomial_tree
    from .sim.collectives import tree_broadcast
    from .sim.compiled import compile_programs, evaluate

    kids = binomial_tree(P)

    def fac(rank: int, P_: int):
        return tree_broadcast(
            rank, P_, 7 if rank == 0 else None, kids, root=0
        )

    prog = compile_programs(fac, P)
    return [
        (r.makespan, r.total_stall_time)
        for r in (evaluate(prog, p) for p in pts)
    ]


def _folded_broadcast_pipeline(P: int, pts: list[LogPParams]) -> list:
    """The per-class pipeline for the same broadcast, Θ(classes)."""
    from .algorithms.broadcast import binomial_tree_folded
    from .sim.compiled import evaluate_folded, fold_tree

    folded = fold_tree(binomial_tree_folded(P))
    return [
        (r.makespan, r.total_stall_time)
        for r in (evaluate_folded(folded, p) for p in pts)
    ]


def _folded_vs_unfolded_verify(P: int, pts: list[LogPParams]) -> None:
    """Bit-identity of the two pipelines, run once before timing."""
    folded = _folded_broadcast_pipeline(P, pts)
    unfolded = _unfolded_broadcast_pipeline(P, pts)
    if folded != unfolded:
        bad = sum(1 for a, b in zip(folded, unfolded) if a != b)
        raise RuntimeError(
            f"folded_vs_unfolded divergence on {bad}/{len(pts)} points "
            f"at P={P}"
        )


def _topology_grid_verify(n_o: int, k: int) -> None:
    """Compiled-vs-machine parity for the routed grid, run once untimed."""
    from .sim.sweep import grid_map

    fac = _bcast_stream_factory(k)
    grid = _topology_grid(n_o)
    fabric = TopologyFabric.ring(8, L=6)
    compiled = grid_map(fac, grid, backend="compiled", fabric=fabric)
    machine = grid_map(fac, grid, backend="machine", fabric=fabric)
    if compiled != machine:
        bad = sum(1 for a, b in zip(compiled, machine) if a != b)
        raise RuntimeError(
            f"compiled_topology_grid divergence on {bad}/{len(grid)} points"
        )


# ----------------------------------------------------------------------


def run_all(
    *,
    smoke: bool = False,
    reps: int = 7,
    only: str | None = None,
    backend: str = "compiled",
) -> dict:
    """Run every benchmark; returns the report dict (see module doc).

    ``only`` restricts the run to workloads whose name starts with it;
    ``backend`` is the backend timed by ``compiled_grid``.
    """
    scale = 10 if smoke else 1
    n_events = 20_000 // scale
    k_stream = 2_000 // scale
    k_stalls = 150 // scale
    seeds = 60 // scale
    n_o = 128 if smoke else 1024
    grid_ps = (4, 8) if smoke else (4, 8, 16)
    k_grid = 16 if smoke else 32
    vs_n_o = 32 if smoke else 64
    vs_box = 8 if smoke else 16
    n_seeds = 50 if smoke else 500
    topo_n_o = 64 if smoke else 512
    folded_P = 2**17
    folded_n_o = 16 if smoke else 64
    fvu_P = 2**10 if smoke else 2**14
    serve_reqs = 64 if smoke else 512
    serve_distinct = 16 if smoke else 64
    serve_hit_reqs = 16 if smoke else 128
    serve_hit_points = 16 if smoke else 32
    degraded_reqs = 10 if smoke else 48
    degraded_points = 8 if smoke else 16
    degraded_kill_period = 0.03 if smoke else 1.0

    def want(name: str) -> bool:
        return only is None or name.startswith(only)

    timings: dict[str, float] = {}
    if want("engine_dispatch"):
        timings["engine_dispatch_s"] = _best_of(
            lambda: _engine_dispatch(n_events), reps
        )
    if want("stream"):
        timings["stream_s"] = _best_of(lambda: _stream(k_stream, False), reps)
        timings["stream_traced_s"] = _best_of(
            lambda: _stream(k_stream, True), reps
        )
    if want("stalls"):
        timings["stalls_s"] = _best_of(lambda: _stalls(k_stalls), reps)
    if want("fabric_ring"):
        timings["fabric_ring_s"] = _best_of(
            lambda: _fabric_ring(k_stream), reps
        )
    if want("fabric_contended"):
        timings["fabric_contended_s"] = _best_of(
            lambda: _fabric_contended(k_stalls), reps
        )
    if want("fuzz_smoke"):
        timings["fuzz_smoke_s"] = _best_of(
            lambda: _fuzz(seeds, 1), max(1, reps // 3)
        )
    fault_reports: list = []
    if want("chaos_broadcast"):
        n_victims = 3 if smoke else 7
        timings["chaos_broadcast_s"] = _best_of(
            lambda: _chaos_broadcast(n_victims), max(1, reps // 3)
        )
        _chaos_broadcast(n_victims, collect=fault_reports)
    if want("compiled_grid"):
        timings["compiled_grid_s"] = _best_of(
            lambda: _compiled_grid(n_o, grid_ps, k_grid, backend),
            max(1, reps // 2),
        )
        timings["compiled_grid_machine_s"] = _best_of(
            lambda: _compiled_grid(n_o, grid_ps, k_grid, "machine"),
            max(1, reps // 3),
        )
    if want("compiled_vs_machine"):
        timings["compiled_vs_machine_s"] = _best_of(
            lambda: _compiled_vs_machine(vs_n_o, vs_box, k_grid),
            max(1, reps // 3),
        )
    seed_sweep_tapes: int | None = None
    if want("compiled_seed_sweep"):
        seed_axis = range(n_seeds)
        seed_sweep_tapes = _seed_sweep_verify(seed_axis)
        timings["compiled_seed_sweep_s"] = _best_of(
            lambda: _compiled_seed_sweep(seed_axis), max(1, reps // 2)
        )
        timings["compiled_seed_sweep_machine_s"] = _best_of(
            lambda: _seed_sweep_machine(seed_axis), max(1, reps // 3)
        )
    if want("compiled_topology_grid"):
        _topology_grid_verify(topo_n_o, k_grid)
        timings["compiled_topology_grid_s"] = _best_of(
            lambda: _compiled_topology_grid(topo_n_o, k_grid, "compiled"),
            max(1, reps // 2),
        )
        timings["compiled_topology_grid_machine_s"] = _best_of(
            lambda: _compiled_topology_grid(topo_n_o, k_grid, "machine"),
            max(1, reps // 3),
        )
    folded_classes: int | None = None
    folded_rss_kb: int | None = None
    if want("folded_broadcast_grid"):
        # The full P=2**17 size runs even under --smoke: huge P at small
        # cost is the point of the folded path, and CI's folded-smoke
        # job pins exactly this workload.  Only the grid width shrinks.
        rss0 = _peak_rss_kb()
        folded_classes = _folded_broadcast_grid(folded_P, folded_n_o)
        folded_rss_kb = _peak_rss_kb() - rss0
        timings["folded_broadcast_grid_s"] = _best_of(
            lambda: _folded_broadcast_grid(folded_P, folded_n_o),
            max(1, reps // 2),
        )
    if want("folded_vs_unfolded"):
        fvu_pts = _folded_points(fvu_P, 8)
        _folded_vs_unfolded_verify(fvu_P, fvu_pts)
        timings["folded_vs_unfolded_folded_s"] = _best_of(
            lambda: _folded_broadcast_pipeline(fvu_P, fvu_pts),
            max(1, reps // 2),
        )
        timings["folded_vs_unfolded_unfolded_s"] = _best_of(
            lambda: _unfolded_broadcast_pipeline(fvu_P, fvu_pts),
            max(1, reps // 3),
        )
    serve_metrics: dict[str, float] = {}
    if want("serve"):
        tp_requests = _serve_throughput_requests(
            serve_reqs, serve_distinct
        )
        hit_requests = _serve_cache_hit_requests(
            serve_hit_reqs, serve_hit_points
        )
        timings["serve_throughput_s"] = _best_of(
            lambda: _serve_requests(tp_requests), max(1, reps // 3)
        )
        timings["serve_cache_hit_s"] = _best_of(
            lambda: _serve_requests(hit_requests), max(1, reps // 3)
        )
        # First-class serving baselines: sustained requests/sec over the
        # throughput mix, hit rate over the repeat mix (one extra
        # instrumented run each; the timing keys above are what
        # --baseline gates).
        serve_metrics["serve_requests_per_s"] = round(
            len(tp_requests) / timings["serve_throughput_s"], 1
        )
        hit_stats = _serve_requests(hit_requests)
        serve_metrics["serve_cache_hit_rate"] = hit_stats["cache"][
            "hit_rate"
        ]
    degraded_deaths = 0
    if want("serve_degraded"):
        # One instrumented run (not best-of-N): the SIGKILL schedule is
        # wall-clock-driven, so repeats would not reduce variance — the
        # correctness check inside is the hard gate, the timing a
        # baseline with the usual --baseline slack.
        dg_requests, dg_expected = _serve_degraded_requests(
            degraded_reqs, degraded_points
        )
        dg_elapsed, degraded_deaths, _dg_stats = _serve_degraded(
            dg_requests, dg_expected, kill_period=degraded_kill_period
        )
        timings["serve_degraded_s"] = round(dg_elapsed, 4)
        serve_metrics["serve_degraded_requests_per_s"] = round(
            len(dg_requests) / dg_elapsed, 1
        )
        serve_metrics["serve_degraded_worker_deaths"] = degraded_deaths
    sweep_scaling: dict[str, float] = {}
    if want("sweep"):
        _fuzz(seeds, 1)  # warm up (imports, generator JIT-ish costs)
        sweep_scaling = {
            str(w): _best_of(lambda: _fuzz(seeds, w), max(3, reps // 2))
            for w in (1, 2)
        }

    from .hostinfo import host_fingerprint

    report: dict = {
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "host": host_fingerprint(),
        "smoke": smoke,
        "reps": reps,
        "workloads": {
            "engine_dispatch": {"events": n_events},
            "stream": {"k": k_stream, "L": 6, "o": 2, "g": 4, "P": 2},
            "stalls": {"k": k_stalls, "L": 8, "o": 1, "g": 4, "P": 16},
            "fabric_ring": {"k": k_stream, "fabric": "TopologyFabric[Ring2]"},
            "fabric_contended": {
                "k": k_stalls,
                "fabric": "ContentionFabric[Ring8]",
            },
            "fuzz_smoke": {"seeds": seeds, "latencies": ["fixed"]},
            "chaos_broadcast": {
                "P": 8,
                "L": 6,
                "o": 2,
                "g": 4,
                "victims": 3 if smoke else 7,
            },
            "compiled_grid": {
                "n_o": n_o,
                "ps": list(grid_ps),
                "k": k_grid,
                "L": 6,
                "g": 4,
                "o_range": [0.25, 8.0],
                "backend": backend,
            },
            "compiled_vs_machine": {
                "n_o": vs_n_o,
                "box": vs_box,
                "k": k_grid,
            },
            "compiled_seed_sweep": {
                "family": "binomial bcast+reduce",
                "P": 8,
                "points": len(_seed_sweep_grid()),
                "seeds": n_seeds,
                "latency": "jittered(scale_frac=0.02)",
                "tapes": seed_sweep_tapes,
            },
            "compiled_topology_grid": {
                "n_o": topo_n_o,
                "k": k_grid,
                "fabric": "TopologyFabric[Ring8]",
            },
            "folded_broadcast_grid": {
                "P": folded_P,
                "n_o": folded_n_o,
                "L": 8,
                "g": 4,
                "family": "binomial broadcast",
                "classes": folded_classes,
                "rss_delta_kb": folded_rss_kb,
            },
            "folded_vs_unfolded": {
                "P": fvu_P,
                "points": 8,
                "family": "binomial broadcast",
            },
            "serve_throughput": {
                "requests": serve_reqs,
                "distinct_points": serve_distinct,
                "family": "stream",
            },
            "serve_cache_hit": {
                "requests": serve_hit_reqs,
                "points": serve_hit_points,
                "family": "bcast_tree",
            },
            "serve_degraded": {
                "requests": degraded_reqs,
                "points": degraded_points,
                "kill_period_s": degraded_kill_period,
                "worker_deaths": degraded_deaths,
                "family": "flood",
                "backend": "machine",
                "pool": "SupervisedPool[2]",
            },
        },
        "timings_s": timings,
        "sweep_scaling_s": sweep_scaling,
    }
    if serve_metrics:
        report.update(serve_metrics)
    if fault_reports:
        report["fault_reports"] = fault_reports
    if (
        "compiled_grid_s" in timings
        and "compiled_grid_machine_s" in timings
        and timings["compiled_grid_s"] > 0
    ):
        report["compiled_grid_speedup"] = round(
            timings["compiled_grid_machine_s"] / timings["compiled_grid_s"], 2
        )
    for stem in ("compiled_seed_sweep", "compiled_topology_grid"):
        fast, ref = timings.get(f"{stem}_s"), timings.get(f"{stem}_machine_s")
        if fast and ref:
            report[f"{stem}_speedup"] = round(ref / fast, 2)
    fast = timings.get("folded_vs_unfolded_folded_s")
    ref = timings.get("folded_vs_unfolded_unfolded_s")
    if fast and ref:
        report["folded_vs_unfolded_speedup"] = round(ref / fast, 2)
    rss = _peak_rss_kb()
    if rss:
        report["max_rss_kb"] = rss
    if not smoke and all(key in timings for key in PR1_BASELINE):
        report["baseline_pr1_s"] = dict(PR1_BASELINE)
        report["speedup_vs_pr1"] = {
            key: round(PR1_BASELINE[key] / timings[key], 3)
            for key in PR1_BASELINE
        }
    return report


def compare_reports(
    report: dict,
    baseline: dict,
    *,
    max_regression: float = 0.05,
    max_mem_regression: float = 0.25,
) -> tuple[dict[str, float], list[str]]:
    """Compare a report against a prior ``BENCH_*.json``.

    Returns ``(ratios, regressions)``: per-workload ``current /
    baseline`` timing ratios over the keys both reports share, and the
    list of workloads whose ratio exceeds ``1 + max_regression``.
    Workloads only one side measured are skipped — reports from
    different PRs stay comparable as workloads are added.

    Peak RSS (``max_rss_kb``) is gated too, under its own
    ``max_mem_regression`` slack: an allocator high-watermark is
    coarser than a best-of-N timing (interpreter heap reuse, import
    order), so 25% by default — wide enough for noise, narrow enough
    that a folding or tape-layout change reintroducing per-rank
    materialization fails loudly.
    """
    base_timings = baseline.get("timings_s", {})
    timings = report.get("timings_s", {})
    ratios: dict[str, float] = {}
    regressions: list[str] = []
    for key in sorted(set(timings) & set(base_timings)):
        base = base_timings[key]
        if base <= 0:
            continue
        ratio = timings[key] / base
        ratios[key] = round(ratio, 3)
        if ratio > 1.0 + max_regression:
            regressions.append(key)
    base_rss = baseline.get("max_rss_kb", 0)
    rss = report.get("max_rss_kb", 0)
    if base_rss > 0 and rss > 0:
        ratio = rss / base_rss
        ratios["max_rss_kb"] = round(ratio, 3)
        if ratio > 1.0 + max_mem_regression:
            regressions.append("max_rss_kb")
    return ratios, regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="~10x smaller workloads, no baseline comparison (CI)",
    )
    parser.add_argument("--reps", type=int, default=7)
    parser.add_argument(
        "--out", default=None,
        help="output path (default BENCH_<date>.json; '-' for stdout only)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="prior BENCH_*.json to compare against; exits 1 if any "
        "shared workload regressed more than --max-regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.05, metavar="FRAC",
        help="allowed slowdown vs --baseline before failing (default 0.05)",
    )
    parser.add_argument(
        "--max-mem-regression", type=float, default=0.25, metavar="FRAC",
        help="allowed peak-RSS growth vs --baseline before failing "
        "(default 0.25; looser than timings — see compare_reports)",
    )
    parser.add_argument(
        "--only", default=None, metavar="PREFIX",
        help="run only workloads whose name starts with PREFIX "
        "(e.g. 'compiled' for the grid-evaluator pair, 'folded' for "
        "folded_broadcast_grid + folded_vs_unfolded, 'serve' for the "
        "job-server pair)",
    )
    parser.add_argument(
        "--fault-report-out", default=None, metavar="PATH",
        help="also write the chaos_broadcast per-run fault-report "
        "summaries to PATH as JSON (CI uploads this as an artifact)",
    )
    parser.add_argument(
        "--backend", default="compiled",
        choices=("machine", "compiled", "auto"),
        help="backend timed by compiled_grid (default compiled); refusal "
        "semantics as in repro.sim.sweep.grid_map",
    )
    args = parser.parse_args(argv)
    report = run_all(
        smoke=args.smoke, reps=args.reps, only=args.only, backend=args.backend
    )

    for key, val in report["timings_s"].items():
        line = f"{key:24s} {val * 1e3:9.2f} ms"
        if "speedup_vs_pr1" in report and key in report["speedup_vs_pr1"]:
            line += f"   {report['speedup_vs_pr1'][key]:5.2f}x vs PR 1"
        print(line)
    for w, val in report["sweep_scaling_s"].items():
        print(f"{'sweep[workers=' + w + ']':24s} {val * 1e3:9.2f} ms")
    for stem in ("compiled_grid", "compiled_seed_sweep", "compiled_topology_grid"):
        key = f"{stem}_speedup"
        if key in report:
            print(
                f"{stem + ' speedup':24s} "
                f"{report[key]:9.2f} x (machine / compiled)"
            )
    if "folded_vs_unfolded_speedup" in report:
        print(
            f"{'folded speedup':24s} "
            f"{report['folded_vs_unfolded_speedup']:9.2f} x "
            "(unfolded / folded)"
        )
    if "max_rss_kb" in report:
        print(f"{'peak RSS':24s} {report['max_rss_kb'] / 1024:9.1f} MB")
    if "serve_requests_per_s" in report:
        print(
            f"{'serve requests/sec':24s} "
            f"{report['serve_requests_per_s']:9.1f} /s"
        )
    if "serve_cache_hit_rate" in report:
        print(
            f"{'serve cache hit rate':24s} "
            f"{report['serve_cache_hit_rate'] * 100:9.1f} %"
        )

    regressed = False
    if args.baseline is not None:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        ratios, regressions = compare_reports(
            report,
            baseline,
            max_regression=args.max_regression,
            max_mem_regression=args.max_mem_regression,
        )
        report["baseline_path"] = args.baseline
        report["baseline_ratio"] = ratios
        print(f"vs {args.baseline}:")
        for key, ratio in ratios.items():
            flag = "  REGRESSED" if key in regressions else ""
            print(f"  {key:22s} {ratio:6.3f}x{flag}")
        if regressions:
            regressed = True
            print(
                f"REGRESSION: {len(regressions)} workload(s) slowed more "
                f"than {args.max_regression:.0%}: {', '.join(regressions)}"
            )
        else:
            print(f"no regression beyond {args.max_regression:.0%}")

    if args.fault_report_out is not None:
        with open(args.fault_report_out, "w") as fh:
            json.dump(report.get("fault_reports", []), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.fault_report_out}")

    out = args.out
    if out != "-":
        if out is None:
            out = f"BENCH_{report['date']}.json"
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {out}")
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
