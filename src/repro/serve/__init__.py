"""Simulation-as-a-service: the LogP prediction engine behind a server.

The paper's whole argument is that a calibrated ``(L, o, g, P)`` model
makes machine behaviour *predictable without the machine* — which makes
prediction a natural service: clients ask "what would this program's
makespan be at these parameter points?" and never run a simulator
themselves.  This package is that serving layer over the repository's
existing execution stack:

* :mod:`.registry` — named, fingerprinted program families (what a
  request may ask to simulate);
* :mod:`.cache` — exact-key LRU over per-point results;
* :mod:`.server` — :class:`SimulationServer`, the asyncio job engine:
  request-level dedup, result caching, cross-request batch coalescing
  into single vectorized compiled-grid evaluations, process-pool
  sharding for large sweeps, and per-job progress streaming;
* :mod:`.protocol` — a JSON-lines TCP protocol plus a thin client;
* ``python -m repro.serve`` (:mod:`.__main__`) — run the TCP server,
  or ``--smoke`` for the self-checking parity/throughput probe CI runs.

Serving invariant, pinned by ``tests/test_serve.py``: every result is
bit-identical to the serial sweep, whichever path produced it.
"""

from .cache import CacheKey, CacheStats, ResultCache
from .registry import families, fingerprint, register
from .server import (
    Job,
    ServeConfig,
    ServerShutdown,
    SimulationServer,
    SweepRequest,
    parse_point,
    serve_sweep,
)

__all__ = [
    "CacheKey",
    "CacheStats",
    "Job",
    "ResultCache",
    "ServeConfig",
    "ServerShutdown",
    "SimulationServer",
    "SweepRequest",
    "families",
    "fingerprint",
    "parse_point",
    "register",
    "serve_sweep",
]
