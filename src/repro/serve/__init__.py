"""Simulation-as-a-service: the LogP prediction engine behind a server.

The paper's whole argument is that a calibrated ``(L, o, g, P)`` model
makes machine behaviour *predictable without the machine* — which makes
prediction a natural service: clients ask "what would this program's
makespan be at these parameter points?" and never run a simulator
themselves.  This package is that serving layer over the repository's
existing execution stack:

* :mod:`.registry` — named, fingerprinted program families (what a
  request may ask to simulate);
* :mod:`.cache` — exact-key LRU over per-point results;
* :mod:`.server` — :class:`SimulationServer`, the asyncio job engine:
  request-level dedup, result caching, cross-request batch coalescing
  into single vectorized compiled-grid evaluations, process-pool
  sharding for large sweeps, and per-job progress streaming;
* :mod:`.protocol` — a JSON-lines TCP protocol plus a thin client;
* :mod:`.chaos` — the service-level chaos harness: SIGKILLed pool
  workers, a server killed and restarted mid-job, a journal truncated
  mid-write — results must stay bit-identical and deadline-bounded;
* ``python -m repro.serve`` (:mod:`.__main__`) — run the TCP server,
  ``--smoke`` for the self-checking parity/throughput probe CI runs,
  or ``--chaos`` for the service chaos drill.

The service fault model (DESIGN.md §12): sharded batches run on a
:class:`repro.sim.supervise.SupervisedPool` (worker death → restart +
retry + poison quarantine), jobs carry deadlines and can be cancelled,
admission is bounded (``overloaded`` error frames, never silent
queueing), and with ``--cache-dir`` the result cache persists across
restarts via a write-ahead journal + snapshot.

Serving invariant, pinned by ``tests/test_serve.py``: every result is
bit-identical to the serial sweep, whichever path produced it —
including results replayed from the journal after a crash.
"""

from .cache import CacheKey, CachePersistence, CacheStats, ResultCache
from .registry import families, fingerprint, register
from .server import (
    Job,
    JobCancelledError,
    JobDeadlineError,
    ServeConfig,
    ServerOverloaded,
    ServerShutdown,
    SimulationServer,
    SweepRequest,
    parse_point,
    serve_sweep,
)

__all__ = [
    "CacheKey",
    "CachePersistence",
    "CacheStats",
    "Job",
    "JobCancelledError",
    "JobDeadlineError",
    "ResultCache",
    "ServeConfig",
    "ServerOverloaded",
    "ServerShutdown",
    "SimulationServer",
    "SweepRequest",
    "families",
    "fingerprint",
    "parse_point",
    "register",
    "serve_sweep",
]
