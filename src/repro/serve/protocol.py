"""JSON-lines TCP protocol: the server's wire surface and a thin client.

One frame per line, UTF-8 JSON.  Client frames carry an ``op`` plus an
optional ``tag`` the server echoes back, so a client can correlate
frames when it pipelines requests:

``{"op": "submit", "program": "...", "points": [{"L":..,"o":..,"g":..,
"P":..}, ...], "args": {...}, "seed": null, "backend": "auto",
"latency": {"kind": "jittered", "L": 6.0, "scale_frac": 0.1,
"seed": 7}, "deadline": 30.0, "stream": true, "tag": "r1"}``
    Submit a sweep.  The server answers ``accepted`` (job id + point
    count), then — when ``stream`` — ``progress`` frames after every
    resolved point group, then one ``result`` frame with the
    submission-order ``[makespan, total_stall_time]`` pairs and the
    per-source serving counts, or an ``error`` frame.  ``deadline``
    (seconds, optional) bounds how long the job may wait before it
    fails with a ``deadline-exceeded`` error frame.

``{"op": "cancel", "job": 7, "tag": "c1"}``
    Cancel a job by id (the id from its ``accepted`` frame — usable
    from any connection).  Answers ``{"op": "cancelled", "job": 7,
    "ok": true}``; an unknown or already-finished job has ``ok`` false.
    The cancelled submission's own stream ends with a ``cancelled``
    error frame.

``{"op": "stats"}`` / ``{"op": "families"}`` / ``{"op": "ping"}``
    Introspection: server counters + cache stats + health/readiness
    (+ persistence replay counters when ``--cache-dir`` is set), the
    program registry, liveness.

Typed error frames a client can branch on (the ``error`` field):
``overloaded`` (admission refused, with a ``retry_after`` hint —
back off and resubmit), ``deadline-exceeded``, ``cancelled``, and
``server-shutdown``.  Anything else is an exception rendered as
``TypeName: message``.

Frames the server sends are never interleaved mid-line (a writer lock
serializes them); submissions on one connection run concurrently, so a
slow sweep does not block a ``stats`` probe on the same socket.

Malformed input is answered with an ``error`` frame and the connection
stays up — a serving process must outlive its worst client.
"""

from __future__ import annotations

import asyncio
import json

from .registry import families
from .server import (
    JobCancelledError,
    JobDeadlineError,
    ServerOverloaded,
    ServerShutdown,
    SimulationServer,
    SweepRequest,
)

__all__ = ["ServeClient", "handle_connection", "start_tcp_server"]

#: Refuse absurd frames before json-decoding them (memory safety).
MAX_FRAME_BYTES = 16 * 1024 * 1024


def _encode(obj: dict) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


async def handle_connection(
    server: SimulationServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client connection until EOF (see module docstring)."""
    lock = asyncio.Lock()
    tasks: set[asyncio.Task] = set()

    async def send(obj: dict) -> None:
        async with lock:
            writer.write(_encode(obj))
            await writer.drain()

    async def handle_submit(msg: dict) -> None:
        tag = msg.get("tag")
        try:
            request = SweepRequest.make(
                msg["program"],
                msg.get("points") or [],
                args=msg.get("args"),
                seed=msg.get("seed"),
                backend=msg.get("backend", "auto"),
                latency=msg.get("latency"),
                deadline=msg.get("deadline"),
            )
        except KeyError as exc:
            await send(
                {"op": "error", "tag": tag,
                 "error": f"submit frame missing field {exc.args[0]!r}"}
            )
            return
        except Exception as exc:  # noqa: BLE001 - reported to the client
            await send(
                {"op": "error", "tag": tag,
                 "error": f"{type(exc).__name__}: {exc}"}
            )
            return
        try:
            job = await server.submit(request)
        except ServerShutdown as exc:
            await send(
                {"op": "error", "tag": tag,
                 "error": "server-shutdown", "detail": str(exc)}
            )
            return
        except ServerOverloaded as exc:
            # Explicit load-shedding: the client backs off and retries;
            # nothing was accepted, so a retry is safe and complete.
            await send(
                {"op": "error", "tag": tag, "error": "overloaded",
                 "detail": str(exc), "retry_after": exc.retry_after}
            )
            return
        await send(
            {"op": "accepted", "tag": tag, "job": job.id,
             "total": job.total}
        )
        if msg.get("stream"):
            async for done, total in job.updates():
                await send(
                    {"op": "progress", "tag": tag, "job": job.id,
                     "done": done, "total": total}
                )
        try:
            results = await job.wait()
        except ServerShutdown as exc:
            await send(
                {"op": "error", "tag": tag, "job": job.id,
                 "error": "server-shutdown", "detail": str(exc)}
            )
            return
        except JobDeadlineError as exc:
            await send(
                {"op": "error", "tag": tag, "job": job.id,
                 "error": "deadline-exceeded", "detail": str(exc)}
            )
            return
        except JobCancelledError as exc:
            await send(
                {"op": "error", "tag": tag, "job": job.id,
                 "error": "cancelled", "detail": str(exc)}
            )
            return
        except Exception as exc:  # noqa: BLE001 - reported to the client
            await send(
                {"op": "error", "tag": tag, "job": job.id,
                 "error": f"{type(exc).__name__}: {exc}"}
            )
            return
        await send(
            {"op": "result", "tag": tag, "job": job.id,
             "results": [list(pair) for pair in results],
             "sources": job.sources}
        )

    try:
        while True:
            try:
                line = await reader.readline()
            except (ValueError, ConnectionResetError):
                break  # overlong frame or client gone
            if not line:
                break
            if len(line) > MAX_FRAME_BYTES:
                await send({"op": "error", "error": "frame too large"})
                continue
            try:
                msg = json.loads(line)
            except json.JSONDecodeError as exc:
                await send({"op": "error", "error": f"bad JSON: {exc}"})
                continue
            op = msg.get("op")
            if op == "submit":
                task = asyncio.create_task(handle_submit(msg))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            elif op == "stats":
                await send(
                    {"op": "stats", "tag": msg.get("tag"),
                     "stats": server.stats_snapshot()}
                )
            elif op == "families":
                await send(
                    {"op": "families", "tag": msg.get("tag"),
                     "families": families()}
                )
            elif op == "cancel":
                job_id = msg.get("job")
                ok = isinstance(job_id, int) and server.cancel_job(job_id)
                await send(
                    {"op": "cancelled", "tag": msg.get("tag"),
                     "job": job_id, "ok": bool(ok)}
                )
            elif op == "ping":
                await send({"op": "pong", "tag": msg.get("tag")})
            else:
                await send(
                    {"op": "error", "tag": msg.get("tag"),
                     "error": f"unknown op {op!r}"}
                )
    finally:
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def start_tcp_server(
    server: SimulationServer, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Bind the TCP listener; ``port=0`` picks an ephemeral port.

    The returned ``asyncio.Server``'s first socket reports the bound
    address (``srv.sockets[0].getsockname()``)."""
    await server.start()
    return await asyncio.start_server(
        lambda r, w: handle_connection(server, r, w),
        host,
        port,
        limit=MAX_FRAME_BYTES,
    )


class ServeClient:
    """Minimal request/response client for tests, smoke, and scripts.

    One in-flight submission at a time per client (frames for a single
    tag arrive in order; this client does not pipeline)."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_FRAME_BYTES
        )
        return cls(reader, writer)

    async def _send(self, obj: dict) -> None:
        self._writer.write(_encode(obj))
        await self._writer.drain()

    async def _recv(self) -> dict:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def submit(
        self,
        program: str,
        points: list,
        *,
        args: dict | None = None,
        seed: int | None = None,
        backend: str = "auto",
        latency: dict | None = None,
        deadline: float | None = None,
        stream: bool = False,
    ) -> dict:
        """Submit and collect: returns the ``result`` frame with an extra
        ``"progress"`` list of ``[done, total]`` pairs when streaming.
        Raises ``RuntimeError`` on an ``error`` frame — the message is
        the typed error code (``overloaded``, ``deadline-exceeded``,
        ``cancelled``, ``server-shutdown``) when the server sent one."""
        await self._send(
            {
                "op": "submit",
                "program": program,
                "points": points,
                "args": args or {},
                "seed": seed,
                "backend": backend,
                "latency": latency,
                "deadline": deadline,
                "stream": stream,
            }
        )
        progress: list = []
        while True:
            frame = await self._recv()
            op = frame.get("op")
            if op == "error":
                raise RuntimeError(frame.get("error", "server error"))
            if op == "progress":
                progress.append([frame["done"], frame["total"]])
            elif op == "result":
                frame["progress"] = progress
                return frame
            # "accepted" and unknown frames: keep reading

    async def cancel(self, job_id: int) -> bool:
        """Cancel a job by id (use a *separate* client connection when
        the submitting one is mid-stream).  Returns the server's ``ok``."""
        await self._send({"op": "cancel", "job": job_id})
        frame = await self._recv()
        if frame.get("op") != "cancelled":
            raise RuntimeError(f"expected cancelled frame, got {frame}")
        return bool(frame.get("ok"))

    async def stats(self) -> dict:
        await self._send({"op": "stats"})
        frame = await self._recv()
        if frame.get("op") != "stats":
            raise RuntimeError(f"expected stats frame, got {frame}")
        return frame["stats"]

    async def ping(self) -> bool:
        await self._send({"op": "ping"})
        return (await self._recv()).get("op") == "pong"

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
