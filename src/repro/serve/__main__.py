"""``python -m repro.serve``: run the TCP simulation server (or a probe).

Normal mode binds the JSON-lines protocol (:mod:`repro.serve.protocol`)
and serves until interrupted::

    python -m repro.serve --host 127.0.0.1 --port 7413 \
        --cache-dir /var/tmp/repro-cache --max-pending 100000 \
        --default-deadline 300

``--smoke`` instead runs the self-checking parity/throughput probe
(:mod:`repro.serve.smoke`) against an in-process server on an ephemeral
port and exits nonzero on any parity failure — the CI serve job's
entry point::

    python -m repro.serve --smoke --out serve_smoke.json

``--chaos`` runs the service chaos harness (:mod:`repro.serve.chaos`):
SIGKILLs pool workers mid-sweep, kills and restarts a real server
subprocess mid-job, truncates the cache journal mid-write — and exits
nonzero unless every surviving result stayed bit-identical to the
serial ``grid_map`` and no run outlived its deadline::

    python -m repro.serve --chaos --out serve_chaos.json
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from .protocol import start_tcp_server
from .server import ServeConfig, SimulationServer
from .smoke import run_smoke


async def _serve_forever(args) -> int:
    config = ServeConfig(
        workers=args.workers,
        batch_window=args.batch_window,
        shard_min_points=args.shard_min_points,
        cache_entries=args.cache_entries,
        max_pending_points=args.max_pending,
        default_deadline=args.default_deadline,
        cache_dir=args.cache_dir,
        snapshot_every=args.snapshot_every,
    )
    server = SimulationServer(config)
    tcp = await start_tcp_server(server, args.host, args.port)
    host, port = tcp.sockets[0].getsockname()[:2]
    print(
        f"repro.serve listening on {host}:{port} "
        f"(workers={server.workers}, batch_window={config.batch_window}s)",
        flush=True,
    )
    try:
        await tcp.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        tcp.close()
        await tcp.wait_closed()
        await server.aclose()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7413,
        help="TCP port (0 picks an ephemeral port; default 7413)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for sharded batches (default: "
        "REPRO_SWEEP_WORKERS, then cpu count)",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.002, metavar="SECONDS",
        help="coalescing horizon: compatible points arriving within one "
        "window merge into one grid evaluation (default 0.002)",
    )
    parser.add_argument("--cache-entries", type=int, default=65_536)
    parser.add_argument(
        "--shard-min-points", type=int, default=512, metavar="N",
        help="smallest per-worker share of a batch worth a process "
        "dispatch (default 512)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist the result cache under DIR (write-ahead journal + "
        "snapshot, replayed on restart with fingerprint validation); "
        "default: in-memory only",
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=256, metavar="N",
        help="with --cache-dir: compact the journal into a snapshot "
        "every N journaled results (default 256)",
    )
    parser.add_argument(
        "--max-pending", type=int, default=None, metavar="POINTS",
        help="admission bound: refuse (overloaded error frame) any "
        "request that would push the in-flight point count past this; "
        "default: unbounded",
    )
    parser.add_argument(
        "--default-deadline", type=float, default=None, metavar="SECONDS",
        help="deadline applied to jobs that don't carry their own; "
        "an expired job fails with a deadline-exceeded error frame "
        "(default: none)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the self-checking parity/throughput probe and exit",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="run the service chaos harness (worker SIGKILLs, server "
        "kill -9 + journal replay, torn-tail recovery, deadline and "
        "overload drills) and exit",
    )
    parser.add_argument(
        "--chaos-points", type=int, default=500, metavar="N",
        help="with --chaos: sweep size for the worker-kill drill "
        "(default 500, the acceptance grid)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="with --smoke/--chaos: write the JSON report artifact",
    )
    args = parser.parse_args(argv)
    if args.smoke and args.chaos:
        parser.error("--smoke and --chaos are mutually exclusive")
    if args.smoke:
        return run_smoke(args.out)
    if args.chaos:
        from .chaos import run_service_chaos

        return run_service_chaos(args.out, points=args.chaos_points)
    try:
        return asyncio.run(_serve_forever(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
