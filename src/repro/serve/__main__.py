"""``python -m repro.serve``: run the TCP simulation server (or --smoke).

Normal mode binds the JSON-lines protocol (:mod:`repro.serve.protocol`)
and serves until interrupted::

    python -m repro.serve --host 127.0.0.1 --port 7413

``--smoke`` instead runs the self-checking parity/throughput probe
(:mod:`repro.serve.smoke`) against an in-process server on an ephemeral
port and exits nonzero on any parity failure — the CI serve job's
entry point::

    python -m repro.serve --smoke --out serve_smoke.json
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from .protocol import start_tcp_server
from .server import ServeConfig, SimulationServer
from .smoke import run_smoke


async def _serve_forever(args) -> int:
    config = ServeConfig(
        workers=args.workers,
        batch_window=args.batch_window,
        cache_entries=args.cache_entries,
    )
    server = SimulationServer(config)
    tcp = await start_tcp_server(server, args.host, args.port)
    host, port = tcp.sockets[0].getsockname()[:2]
    print(
        f"repro.serve listening on {host}:{port} "
        f"(workers={server.workers}, batch_window={config.batch_window}s)",
        flush=True,
    )
    try:
        await tcp.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        tcp.close()
        await tcp.wait_closed()
        await server.aclose()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7413,
        help="TCP port (0 picks an ephemeral port; default 7413)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for sharded batches (default: "
        "REPRO_SWEEP_WORKERS, then cpu count)",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.002, metavar="SECONDS",
        help="coalescing horizon: compatible points arriving within one "
        "window merge into one grid evaluation (default 0.002)",
    )
    parser.add_argument("--cache-entries", type=int, default=65_536)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the self-checking parity/throughput probe and exit",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="with --smoke: write the JSON report artifact to PATH",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(args.out)
    try:
        return asyncio.run(_serve_forever(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
