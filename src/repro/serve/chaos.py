"""Service-level chaos harness: kill things, demand bit-identical results.

``python -m repro.serve --chaos`` runs five drills against the real
service stack (no mocks, no injected seams — actual SIGKILLs, a real
server subprocess, real journal bytes) and exits nonzero unless every
surviving result is bit-identical to the serial ``grid_map`` and no
run outlives its deadline:

1. **Workers SIGKILLed mid-sweep.**  A killer thread SIGKILLs a random
   :class:`~repro.sim.supervise.SupervisedPool` worker every ~120 ms
   while a ``--chaos-points``-point machine-backend sweep runs through
   ``sweep_map``.  The pool must restart workers, resubmit orphaned
   chunks, and return the full submission-order result list —
   bit-identical to the same grid evaluated serially in this process.
2. **Server killed mid-job; journal replay.**  A real ``python -m
   repro.serve --cache-dir D`` subprocess serves a batch of requests,
   is SIGKILLed while a heavy job is mid-computation, and is restarted
   on the same cache dir.  The restarted server must replay the
   journal (``dropped_stale == 0``), serve the original requests
   entirely from the warm cache, and return bit-identical pairs.
3. **Torn journal tail.**  The journal from drill 2 is truncated
   mid-record (the crash-consistency case fsync-per-record does not
   rule out).  A third server must drop exactly the torn record
   (``torn_tails == 1``), keep every whole one, and recompute the
   missing point to the same bits.
4. **Deadline over a wedged-slow job.**  A heavy machine-backend
   request with a short deadline must fail with a typed
   ``deadline-exceeded`` error frame — promptly, not after the
   computation — and leave the server responsive.
5. **Overload shedding.**  With a small ``max_pending_points``, an
   oversized request must be refused with a typed ``overloaded`` frame
   (plus ``retry_after``) while an in-bounds request still succeeds.

Like :mod:`repro.serve.smoke`, this writes a JSON artifact for CI and
is a correctness gate first, telemetry second.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import re
import select
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from ..sim.faults import ExponentialBackoffRetry
from ..sim.supervise import SupervisedPool
from ..sim.sweep import sweep_map
from .cache import CachePersistence
from .protocol import ServeClient, start_tcp_server
from .server import (
    ServeConfig,
    SimulationServer,
    _eval_shard,
    canonical_latency,
)

__all__ = ["run_service_chaos"]

#: Wall-clock slack (seconds) allowed past a job deadline before the
#: harness calls it a hang.  Generous: CI runs this on one busy core.
DEADLINE_SLACK = 5.0


def _point_eval(program, args, backend, raw_pt):
    """One grid point, evaluated exactly as a server shard would."""
    return _eval_shard(
        program, dict(args), None, backend, canonical_latency(None), [raw_pt]
    )[0]


# ----------------------------------------------------------------------
# Drill 1: SIGKILL pool workers mid-sweep.
# ----------------------------------------------------------------------


def _worker_kill_drill(check, points: int) -> None:
    rng = random.Random(20260808)
    raw_pts = [
        (4.0 + (i % 7), 0.5 + 0.25 * (i % 5), 2.0 + (i % 3), 8, None)
        for i in range(points)
    ]
    args = {"k": 12}
    want = _eval_shard(
        "flood", dict(args), None, "machine", canonical_latency(None), raw_pts
    )

    pool = SupervisedPool(
        4,
        retry=ExponentialBackoffRetry(base=0.02, mult=2.0, cap=0.2),
        max_attempts=10,  # random kills must never frame an innocent item
        map_deadline=240.0,
    )
    stop = threading.Event()

    def killer() -> None:
        while not stop.wait(0.12):
            pids = pool.pids()
            if pids:
                try:
                    os.kill(rng.choice(pids), signal.SIGKILL)
                except ProcessLookupError:
                    pass  # lost the race with a natural restart

    thread = threading.Thread(target=killer, daemon=True)
    t0 = time.perf_counter()
    thread.start()
    try:
        from functools import partial

        got = sweep_map(
            partial(_point_eval, "flood", args, "machine"),
            raw_pts,
            workers=4,
            chunksize=4,
            pool=pool,
        )
    finally:
        stop.set()
        thread.join()
        pool.close(drain=False)
    elapsed = time.perf_counter() - t0

    check(
        "workers_killed_bit_identical",
        got == want,
        f"{points} points in {elapsed:.1f}s, "
        f"{pool.deaths} worker deaths, {pool.restarts} restarts",
    )
    check(
        "workers_actually_died",
        pool.deaths >= 1,
        f"deaths={pool.deaths} (killer fired every 0.12s for {elapsed:.1f}s)",
    )


# ----------------------------------------------------------------------
# Drills 2 + 3: kill -9 a real server subprocess; replay the journal.
# ----------------------------------------------------------------------


def _spawn_server(cache_dir: str) -> tuple[subprocess.Popen, str, int]:
    src = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve",
            "--port", "0", "--workers", "1",
            "--batch-window", "0.002", "--cache-dir", cache_dir,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        bufsize=0,
    )
    buf = b""
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        ready, _, _ = select.select([proc.stdout], [], [], 0.25)
        if ready:
            chunk = os.read(proc.stdout.fileno(), 4096)
            if not chunk:
                break
            buf += chunk
            m = re.search(rb"listening on ([\d.]+):(\d+)", buf)
            if m:
                return proc, m.group(1).decode(), int(m.group(2))
        if proc.poll() is not None:
            break
    proc.kill()
    raise RuntimeError(f"server subprocess never reported a port: {buf!r}")


def _rpc(coro_factory):
    """Run one client interaction against a server subprocess."""

    async def go():
        return await coro_factory()

    return asyncio.run(go())


def _submit_once(host, port, **kw):
    async def go():
        client = await ServeClient.connect(host, port)
        try:
            return await client.submit(**kw)
        finally:
            await client.aclose()

    return _rpc(go)


def _stats_once(host, port):
    async def go():
        client = await ServeClient.connect(host, port)
        try:
            return await client.stats()
        finally:
            await client.aclose()

    return _rpc(go)


def _heavy_points(n: int) -> list[dict]:
    """``n`` *distinct* machine-backend grid points: a batch that takes
    whole seconds, so a SIGKILL (or a short deadline) lands while it is
    genuinely mid-computation.  Identical points would collapse to one
    cached key and finish instantly."""
    return [
        {"L": 4.0 + 0.01 * i, "o": 1.0, "g": 4.0, "P": 16} for i in range(n)
    ]


def _fire_and_forget(host, port, payload) -> None:
    """Submit without waiting for the result (the job we kill mid-way)."""

    async def go():
        reader, writer = await asyncio.open_connection(host, port)
        writer.write((json.dumps(payload) + "\n").encode())
        await writer.drain()
        while True:
            frame = json.loads(await asyncio.wait_for(reader.readline(), 30))
            if frame.get("op") == "accepted":
                return
            if frame.get("op") == "error":
                raise RuntimeError(frame.get("error"))

    _rpc(go)


def _server_kill_drills(check, tmpdir: str) -> None:
    requests = [
        {
            "program": "bcast_tree",
            "points": [
                {"L": 4.0 + i, "o": 0.5, "g": 2.0, "P": 8},
                {"L": 4.0 + i, "o": 1.5, "g": 2.0, "P": 8},
            ],
            "args": {"k": 6},
            "seed": i,  # distinct seeds -> distinct groups -> one
            "backend": "compiled",  # journal append per finished group
        }
        for i in range(6)
    ]
    want = {
        i: _eval_shard(
            r["program"], dict(r["args"]), r["seed"], r["backend"],
            canonical_latency(None),
            [(p["L"], p["o"], p["g"], p["P"], None) for p in r["points"]],
        )
        for i, r in enumerate(requests)
    }
    n_points = sum(len(r["points"]) for r in requests)
    journal = Path(tmpdir) / CachePersistence.JOURNAL

    # --- Drill 2: first life computes; kill -9 lands mid-heavy-job.
    proc, host, port = _spawn_server(tmpdir)
    try:
        first = {}
        for i, r in enumerate(requests):
            frame = _submit_once(host, port, **r)
            first[i] = [tuple(p) for p in frame["results"]]
        parity = all(first[i] == want[i] for i in want)
        check(
            "first_life_parity", parity,
            f"{n_points} points over {len(requests)} requests",
        )
        # A heavy machine-backend job the server will die in the middle
        # of: accepted, then SIGKILL with the batch mid-computation.
        # Points must be *distinct* — identical points dedupe to one
        # cached key and would finish (and journal) before the kill.
        _fire_and_forget(
            host, port,
            {
                "op": "submit", "program": "flood",
                "points": _heavy_points(400),
                "args": {"k": 40}, "seed": None, "backend": "machine",
            },
        )
        time.sleep(0.4)
    finally:
        proc.kill()
        proc.wait(timeout=30)
    lines = journal.read_bytes().splitlines(keepends=True)
    complete = sum(1 for ln in lines if ln.endswith(b"\n"))
    check(
        "journal_survived_kill9",
        journal.exists() and complete >= n_points,
        f"{complete} complete records after SIGKILL",
    )

    # --- Second life: replay the journal, serve everything warm.
    proc, host, port = _spawn_server(tmpdir)
    try:
        stats = _stats_once(host, port)
        persist = stats.get("persistence") or {}
        check(
            "journal_replayed",
            persist.get("loaded", 0) >= n_points
            and persist.get("dropped_stale", 0) == 0,
            f"loaded={persist.get('loaded')} "
            f"dropped_stale={persist.get('dropped_stale')} "
            f"torn_tails={persist.get('torn_tails')}",
        )
        warm_ok, cache_hits = True, 0
        for i, r in enumerate(requests):
            frame = _submit_once(host, port, **r)
            warm_ok = warm_ok and [tuple(p) for p in frame["results"]] == want[i]
            cache_hits += frame["sources"].get("cache", 0)
        check(
            "replayed_results_bit_identical_and_warm",
            warm_ok and cache_hits == n_points,
            f"{cache_hits}/{n_points} points served from the replayed cache",
        )
    finally:
        proc.kill()  # SIGKILL again: the journal must stay untouched
        proc.wait(timeout=30)

    # --- Drill 3: tear the journal tail mid-record, then recover.
    data = journal.read_bytes()
    whole = sum(1 for ln in data.splitlines(keepends=True) if ln.endswith(b"\n"))
    journal.write_bytes(data[:-7])
    proc, host, port = _spawn_server(tmpdir)
    try:
        stats = _stats_once(host, port)
        persist = stats.get("persistence") or {}
        check(
            "torn_tail_dropped_cleanly",
            persist.get("torn_tails", 0) == 1
            and persist.get("loaded", 0) == whole - 1
            and persist.get("dropped_stale", 0) == 0,
            f"loaded={persist.get('loaded')} "
            f"torn_tails={persist.get('torn_tails')}",
        )
        torn_ok, cache_hits = True, 0
        for i, r in enumerate(requests):
            frame = _submit_once(host, port, **r)
            torn_ok = torn_ok and [tuple(p) for p in frame["results"]] == want[i]
            cache_hits += frame["sources"].get("cache", 0)
        check(
            "torn_tail_recovery_bit_identical",
            torn_ok and n_points - 1 <= cache_hits < n_points,
            f"{cache_hits} warm + {n_points - cache_hits} recomputed, "
            "all bit-identical",
        )
    finally:
        proc.kill()
        proc.wait(timeout=30)


# ----------------------------------------------------------------------
# Drills 4 + 5: deadline expiry and overload shedding (in-process).
# ----------------------------------------------------------------------


async def _deadline_drill(check) -> None:
    server = SimulationServer(ServeConfig(workers=1, batch_window=0.002))
    tcp = await start_tcp_server(server)
    host, port = tcp.sockets[0].getsockname()[:2]
    try:
        client = await ServeClient.connect(host, port)
        deadline = 0.3
        t0 = time.perf_counter()
        try:
            await client.submit(
                "flood",
                _heavy_points(400),
                args={"k": 40},
                backend="machine",
                deadline=deadline,
            )
            check("deadline_enforced", False, "slow job returned a result")
        except RuntimeError as exc:
            elapsed = time.perf_counter() - t0
            check(
                "deadline_enforced",
                str(exc) == "deadline-exceeded"
                and elapsed < deadline + DEADLINE_SLACK,
                f"failed as {exc!r} after {elapsed:.2f}s "
                f"(deadline {deadline}s)",
            )
        alive = await client.ping()
        small = await client.submit(
            "bcast_tree", [{"L": 6.0, "o": 1.0, "g": 4.0, "P": 8}],
            args={"k": 6}, backend="compiled",
        )
        stats = await client.stats()
        check(
            "server_responsive_after_expiry",
            alive
            and len(small["results"]) == 1
            and stats["deadline_expired"] >= 1,
            f"deadline_expired={stats['deadline_expired']}, "
            f"health={stats['health']['status']}",
        )
        await client.aclose()
    finally:
        tcp.close()
        await tcp.wait_closed()
        await server.aclose(drain=False)


async def _overload_drill(check) -> None:
    server = SimulationServer(
        ServeConfig(workers=1, batch_window=0.2, max_pending_points=4)
    )
    tcp = await start_tcp_server(server)
    host, port = tcp.sockets[0].getsockname()[:2]
    try:
        client = await ServeClient.connect(host, port)
        filler = await ServeClient.connect(host, port)
        # Three points parked in the 0.2s coalescing window...
        fill_task = asyncio.create_task(
            filler.submit(
                "bcast_tree",
                [{"L": 4.0 + i, "o": 1.0, "g": 2.0, "P": 8} for i in range(3)],
                args={"k": 6}, backend="compiled",
            )
        )
        await asyncio.sleep(0.05)
        # ...so three more would exceed max_pending_points=4: shed.
        try:
            await client.submit(
                "bcast_tree",
                [{"L": 9.0 + i, "o": 1.0, "g": 2.0, "P": 8} for i in range(3)],
                args={"k": 6}, backend="compiled",
            )
            check("overload_shed", False, "oversized request was accepted")
        except RuntimeError as exc:
            check("overload_shed", str(exc) == "overloaded", f"refused: {exc!r}")
        fill = await fill_task
        one = await client.submit(
            "bcast_tree", [{"L": 20.0, "o": 1.0, "g": 2.0, "P": 8}],
            args={"k": 6}, backend="compiled",
        )
        stats = await client.stats()
        check(
            "overload_recovery",
            len(fill["results"]) == 3
            and len(one["results"]) == 1
            and stats["shed"] >= 1,
            f"shed={stats['shed']}, inflight drained, in-bounds request ok",
        )
        await filler.aclose()
        await client.aclose()
    finally:
        tcp.close()
        await tcp.wait_closed()
        await server.aclose(drain=False)


# ----------------------------------------------------------------------
# Entry point.
# ----------------------------------------------------------------------


def run_service_chaos(out: str | None = None, *, points: int = 500) -> int:
    """Run all drills; write the artifact to ``out``; 0 iff all pass."""
    report: dict = {"checks": {}, "points": points}
    checks = report["checks"]
    ok = True

    def check(name: str, passed: bool, detail: str = "") -> None:
        nonlocal ok
        checks[name] = {"ok": bool(passed), "detail": detail}
        ok = ok and passed
        flag = "ok " if passed else "FAIL"
        print(f"  {flag} {name}" + (f"  ({detail})" if detail else ""))

    drills = [
        ("worker_kill_drill", lambda: _worker_kill_drill(check, points)),
        (
            "server_kill_drills",
            lambda: _server_kill_drills(
                check, tempfile.mkdtemp(prefix="repro-chaos-")
            ),
        ),
        ("deadline_drill", lambda: asyncio.run(_deadline_drill(check))),
        ("overload_drill", lambda: asyncio.run(_overload_drill(check))),
    ]
    for name, drill in drills:
        try:
            drill()
        except Exception as exc:  # noqa: BLE001 - a drill crash is a failure
            check(name, False, f"crashed: {type(exc).__name__}: {exc}")

    report["ok"] = ok
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  wrote {out}")
    if not ok:
        print("serve chaos: FAILED")
        return 1
    print("serve chaos: all drills passed")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via -m repro.serve
    sys.exit(run_service_chaos())
