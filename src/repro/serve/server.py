"""The asyncio job server: dedup, cache, coalesce, shard, stream.

:class:`SimulationServer` accepts sweep requests (one program family
evaluated at many parameter points) and serves each *point* from the
cheapest sufficient source, in this order:

1. **Cache** (:mod:`.cache`): an exact-key LRU hit is returned
   immediately — zero simulation.
2. **In-flight dedup**: a point some other job is already computing is
   *attached to*, never recomputed — concurrent identical requests cost
   one evaluation total.
3. **Coalesced batch**: remaining points wait one ``batch_window`` so
   that compatible points — same family, args, seed, and backend —
   from *any* number of concurrent jobs merge into a single
   :func:`repro.sim.sweep.grid_map` call, which compiles once per
   distinct ``P`` and replays the whole batch through the vectorized
   compiled-grid evaluator.  Batches past ``shard_min_points`` per
   worker are split into contiguous chunks and sharded across the
   persistent :class:`repro.sim.sweep.WorkerPool`.

The determinism contract: every served pair is bit-identical to what
the serial loop ``[run(point) for point in points]`` produces, whether
it came from cache, from another job's flight, from a coalesced batch,
or from a pool shard.  This holds because (a) ``grid_map`` is
per-point bit-identical to the machine regardless of how points are
grouped (the compiled evaluator's contract, pinned by
``tests/test_compiled.py``), (b) shards are contiguous submission-order
chunks merged in order, and (c) cache keys span the full determinism
domain (:class:`repro.serve.cache.CacheKey`).  ``tests/test_serve.py``
pins served-vs-serial equality across all three paths.

Failures are loud: a batch that raises fails every attached job with
the original exception — chained from
:class:`repro.sim.sweep.SweepItemError` when a pool shard died, naming
the failing item — and the server keeps serving subsequent requests.

Jobs stream progress: :meth:`Job.updates` yields ``(done, total)``
after every resolved point-group, and :meth:`Job.wait` returns the
submission-order results.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from functools import partial
from typing import Iterable, Sequence

from ..core import LogGPParams, LogPParams
from ..sim.supervise import SupervisedPool
from ..sim.sweep import WorkerPool, grid_map, resolve_workers, sweep_map
from .cache import CacheKey, CachePersistence, ResultCache, point_key
from .registry import build, canonical_args, fingerprint, get_family

__all__ = [
    "Job",
    "JobCancelledError",
    "JobDeadlineError",
    "ServeConfig",
    "ServerOverloaded",
    "ServerShutdown",
    "SimulationServer",
    "SweepRequest",
    "build_latency",
    "canonical_latency",
    "parse_point",
]


class ServerShutdown(RuntimeError):
    """The server is shutting down (or has shut down).

    Raised by :meth:`SimulationServer.submit` after close, and set on
    every abandoned in-flight future by ``aclose(drain=False)`` — so a
    job interrupted by shutdown fails with an explicit, typed error
    (surfaced on the wire as a ``server-shutdown`` error frame), never
    with a bare ``CancelledError`` that looks like a client bug.
    """


class ServerOverloaded(RuntimeError):
    """Admission refused: accepting the request would exceed the bound.

    Load-shedding is explicit by design — a client must see an
    ``overloaded`` error frame it can back off on, never a silently
    growing queue that turns into a hang.  ``retry_after`` is a hint in
    seconds (one batch window: by then the current batch has drained).
    """

    def __init__(self, inflight: int, requested: int, limit: int,
                 retry_after: float):
        super().__init__(
            f"admission refused: {inflight} point(s) in flight + "
            f"{requested} new would exceed max_pending_points={limit}; "
            f"retry after ~{retry_after}s"
        )
        self.inflight = inflight
        self.requested = requested
        self.limit = limit
        self.retry_after = retry_after


class JobDeadlineError(RuntimeError):
    """The job's deadline elapsed before every point resolved.

    Set on the job's *own* (mirror) futures only: the shared
    computation keeps running and still lands in the cache — the
    deadline bounds how long this client waits, it does not waste the
    work.  Surfaced on the wire as a ``deadline-exceeded`` error frame.
    """

    def __init__(self, job_id: int, deadline: float, pending: int):
        super().__init__(
            f"job {job_id} missed its {deadline}s deadline with "
            f"{pending} point(s) unresolved"
        )
        self.job_id = job_id
        self.deadline = deadline
        self.pending = pending


class JobCancelledError(RuntimeError):
    """The job was cancelled (``cancel`` op or :meth:`Job.cancel`).

    Like a deadline, cancellation fails only this job's mirror futures;
    shared in-flight computation other jobs depend on is untouched.
    Surfaced on the wire as a ``cancelled`` error frame.
    """

    def __init__(self, job_id: int, reason: str):
        super().__init__(f"job {job_id} cancelled: {reason}")
        self.job_id = job_id
        self.reason = reason


def parse_point(spec) -> LogPParams:
    """Accept a ``LogPParams`` or a ``{"L":..,"o":..,"g":..,"P":..}``
    mapping (``"G"`` promotes to LogGP); anything else refuses loudly."""
    if isinstance(spec, LogPParams):
        return spec
    if isinstance(spec, dict):
        unknown = set(spec) - {"L", "o", "g", "P", "G"}
        if unknown:
            raise ValueError(
                f"unknown point fields {sorted(unknown)}; "
                "expected L, o, g, P and optionally G"
            )
        try:
            if spec.get("G") is not None:
                return LogGPParams(
                    L=float(spec["L"]),
                    o=float(spec["o"]),
                    g=float(spec["g"]),
                    P=int(spec["P"]),
                    G=float(spec["G"]),
                )
            return LogPParams(
                L=float(spec["L"]),
                o=float(spec["o"]),
                g=float(spec["g"]),
                P=int(spec["P"]),
            )
        except KeyError as exc:
            raise ValueError(f"point missing field {exc.args[0]!r}") from None
    raise TypeError(
        f"point must be LogPParams or a mapping, got {type(spec).__name__}"
    )


_BACKENDS = ("machine", "compiled", "auto")

#: Wire-level latency kinds -> required numeric fields beyond "kind".
_LATENCY_KINDS = {
    "fixed": ("L",),
    "uniform": ("L", "lo_frac", "seed"),
    "jittered": ("L", "scale_frac", "seed"),
}


def canonical_latency(spec) -> tuple | None:
    """Canonicalize a wire latency spec into a hashable tuple.

    ``None`` means the machine's default (every flight exactly the
    point's ``L``).  Otherwise a mapping like ``{"kind": "uniform",
    "L": 6.0, "lo_frac": 0.25, "seed": 7}`` — the bound ``L`` is
    explicit (one shared model across the sweep, exactly
    :func:`repro.sim.sweep.grid_map`'s ``latency=`` semantics), and the
    tuple form ``("uniform", ("L", 6.0), ("lo_frac", 0.25),
    ("seed", 7))`` keys caching and batch coalescing.  Malformed specs
    refuse loudly at submit time.
    """
    if spec is None:
        return None
    if isinstance(spec, tuple):
        return spec  # already canonical (an internal resubmission)
    if not isinstance(spec, dict):
        raise TypeError(
            f"latency must be a mapping or None, got {type(spec).__name__}"
        )
    kind = spec.get("kind")
    if kind not in _LATENCY_KINDS:
        raise ValueError(
            f"latency kind must be one of {sorted(_LATENCY_KINDS)}, "
            f"got {kind!r}"
        )
    fields = _LATENCY_KINDS[kind]
    unknown = set(spec) - {"kind", *fields}
    if unknown:
        raise ValueError(
            f"unknown latency fields {sorted(unknown)} for kind {kind!r}; "
            f"expected {list(fields)}"
        )
    out = [kind]
    for name in fields:
        if name not in spec:
            raise ValueError(f"latency spec missing field {name!r}")
        val = int(spec[name]) if name == "seed" else float(spec[name])
        out.append((name, val))
    return tuple(out)


def build_latency(lat: tuple | None):
    """Instantiate the shared latency model for a canonical spec.

    Module-level so pool shards can rebuild the model worker-side; a
    fresh instance per call keeps RNG state out of the coalescing key.
    """
    if lat is None:
        return None
    from ..sim.latency import FixedLatency, JitteredLatency, UniformLatency

    kind, *pairs = lat
    kw = dict(pairs)
    if kind == "fixed":
        return FixedLatency(kw["L"])
    if kind == "uniform":
        return UniformLatency(kw["L"], lo_frac=kw["lo_frac"], seed=kw["seed"])
    return JitteredLatency(
        kw["L"], scale_frac=kw["scale_frac"], seed=kw["seed"]
    )


@dataclass(frozen=True)
class SweepRequest:
    """One sweep: a program family evaluated at many parameter points.

    ``args`` is the canonicalized tuple form
    (:func:`repro.serve.registry.canonical_args`); build requests with
    :meth:`make`, which canonicalizes, parses points, and validates the
    family name and backend up front so a bad request fails at submit
    time, not mid-batch.
    """

    program: str
    points: tuple
    args: tuple = ()
    seed: int | None = None
    backend: str = "auto"
    #: Canonical shared-latency spec (see :func:`canonical_latency`);
    #: None means every flight takes exactly the point's ``L``.
    latency: tuple | None = None
    #: Per-job deadline in seconds; ``None`` defers to the server's
    #: ``default_deadline``.  Not part of the cache/coalescing identity:
    #: a deadline bounds the wait, never the value.
    deadline: float | None = None

    @classmethod
    def make(
        cls,
        program: str,
        points: Iterable,
        *,
        args: dict | None = None,
        seed: int | None = None,
        backend: str = "auto",
        latency: dict | tuple | None = None,
        deadline: float | None = None,
    ) -> "SweepRequest":
        get_family(program)  # unknown family refuses at submit time
        if backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        if seed is not None and not isinstance(seed, int):
            raise TypeError(f"seed must be int or None, got {seed!r}")
        if deadline is not None:
            deadline = float(deadline)
            if deadline <= 0:
                raise ValueError(
                    f"deadline must be > 0 seconds, got {deadline}"
                )
        pts = tuple(parse_point(p) for p in points)
        if not pts:
            raise ValueError("a sweep request needs at least one point")
        return cls(
            program=program,
            points=pts,
            args=canonical_args(args),
            seed=seed,
            backend=backend,
            latency=canonical_latency(latency),
            deadline=deadline,
        )

    @property
    def fingerprint(self) -> str:
        return fingerprint(self.program, dict(self.args))


@dataclass
class ServeConfig:
    """Server knobs; the defaults favour correctness-visible behaviour.

    ``batch_window`` is the coalescing horizon in seconds: points
    arriving within one window merge into one grid evaluation.  0 still
    coalesces whatever is queued when the batcher wakes (one event-loop
    tick), it just never *waits* for more.  ``shard_min_points`` is the
    smallest per-worker share of a batch worth a process dispatch —
    the server-side analogue of the scheduler's ``min_chunk``.

    The robustness knobs: ``supervised`` puts sharded batches on a
    :class:`~repro.sim.supervise.SupervisedPool` (worker death is
    detected, retried, and quarantined) instead of a bare
    :class:`~repro.sim.sweep.WorkerPool`; ``max_pending_points`` bounds
    admission (``None`` = unbounded — a request that would push the
    in-flight point count past the bound is refused with
    :class:`ServerOverloaded`, never queued into a silent hang);
    ``default_deadline`` applies to jobs that don't carry their own;
    ``cache_dir`` enables cache persistence (write-ahead journal +
    snapshot every ``snapshot_every`` records, replayed on restart).
    """

    workers: int | None = None
    batch_window: float = 0.002
    shard_min_points: int = 512
    cache_entries: int = 65_536
    use_pool: bool = True
    supervised: bool = True
    max_pending_points: int | None = None
    default_deadline: float | None = None
    cache_dir: str | None = None
    snapshot_every: int = 256


class Job:
    """A submitted sweep: per-point futures in submission order.

    Every point holds a *mirror* future chained from the shared
    in-flight future, never the shared future itself — so a deadline
    expiry or cancellation can fail *this* job's points without
    touching the shared computation (or the other jobs attached to
    it), and the computed value still lands in the cache.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        total: int,
        request: SweepRequest,
        loop: asyncio.AbstractEventLoop | None = None,
    ):
        self.id = next(Job._ids)
        self.request = request
        self.total = total
        self.done = 0
        #: How each point was served: cache / inflight / computed.
        self.sources = {"cache": 0, "inflight": 0, "computed": 0}
        self._loop = loop or asyncio.get_event_loop()
        self._futures: list[asyncio.Future] = []
        self._wake = asyncio.Event()
        #: Server hook, fired once when the last point resolves
        #: (deadline timer cancel + registry cleanup).
        self._on_finished = None

    def _attach(self, fut: asyncio.Future, source: str) -> None:
        self.sources[source] += 1
        mine = self._loop.create_future()
        self._futures.append(mine)
        mine.add_done_callback(self._on_point)

        def _copy(shared: asyncio.Future, mine=mine) -> None:
            # Observe the shared outcome unconditionally: reading
            # .exception() marks it retrieved, so a shared failure whose
            # every mirror was already deadline/cancel-failed doesn't
            # log a spurious "exception was never retrieved".
            cancelled = shared.cancelled()
            exc = None if cancelled else shared.exception()
            if mine.done():
                return  # already failed by deadline/cancel/shutdown
            if cancelled:
                mine.set_exception(
                    ServerShutdown("shared computation cancelled")
                )
            elif exc is not None:
                mine.set_exception(exc)
            else:
                mine.set_result(shared.result())

        if fut.done():
            _copy(fut)
        else:
            fut.add_done_callback(_copy)

    def _on_point(self, fut: asyncio.Future) -> None:
        if not fut.cancelled():
            # Mark retrieved: failures surface in wait(); a mirror whose
            # job was deadline-failed must not log "exception was never
            # retrieved" when the gather that raised skipped it.
            fut.exception()
        self.done += 1
        self._wake.set()
        if self.done >= self.total and self._on_finished is not None:
            hook, self._on_finished = self._on_finished, None
            hook()

    def _fail_pending(self, exc: BaseException) -> None:
        for f in self._futures:
            if not f.done():
                f.set_exception(exc)

    def cancel(self, reason: str = "cancelled by client") -> bool:
        """Fail this job's unresolved points with
        :class:`JobCancelledError`; shared computation is untouched.
        Returns whether anything was actually cancelled."""
        if self.finished:
            return False
        self._fail_pending(JobCancelledError(self.id, reason))
        return True

    def _expire(self, deadline: float) -> None:
        if self.finished:
            return
        self._fail_pending(
            JobDeadlineError(self.id, deadline, self.total - self.done)
        )

    @property
    def finished(self) -> bool:
        return self.done >= self.total

    async def wait(self) -> list[tuple[float, float]]:
        """Submission-order results; re-raises the first point failure."""
        return list(await asyncio.gather(*self._futures))

    async def updates(self):
        """Async stream of ``(done, total)`` progress pairs.

        Yields after every newly resolved point group, ending with the
        final ``(total, total)``.  Failures surface in :meth:`wait`,
        not here — the stream just completes.
        """
        last = -1
        while True:
            if self.done != last:
                last = self.done
                yield (last, self.total)
            if self.done >= self.total:
                return
            self._wake.clear()
            if self.done == last:
                await self._wake.wait()


# ----------------------------------------------------------------------
# Batch evaluation (thread- and process-side; must stay module-level
# and picklable for the pool shards).
# ----------------------------------------------------------------------


def _eval_shard(program, args, seed, backend, latency, raw_pts):
    """Rebuild the family from its name and evaluate one point chunk.

    Runs inside a pool worker (or inline for unsharded batches): only
    names and plain tuples cross the process boundary, the program
    object (and the shared latency model, when the request carries a
    spec) is rebuilt from the registry on this side.  A fresh model per
    shard is sound: the machine and the compiled grid replay both reset
    it per point, so shard boundaries cannot leak RNG state.
    """
    programs = build(program, dict(args), seed)
    pts = [
        LogGPParams(L=L, o=o, g=g, P=P, G=G)
        if G is not None
        else LogPParams(L=L, o=o, g=g, P=P)
        for (L, o, g, P, G) in raw_pts
    ]
    return grid_map(
        programs, pts, backend=backend, latency=build_latency(latency)
    )


def _eval_batch(
    program,
    args,
    seed,
    backend,
    latency,
    raw_pts: list,
    *,
    workers: int,
    shard_min_points: int,
    pool: WorkerPool | SupervisedPool | None,
):
    """One coalesced batch: shard across the pool when big enough.

    Shards are contiguous submission-order chunks, merged in order, so
    the flattened result equals the unsharded ``grid_map`` result
    point for point (grid grouping is per-point independent).
    """
    n = len(raw_pts)
    shards = min(workers, n // shard_min_points) if shard_min_points else 0
    if shards <= 1 or pool is None:
        return _eval_shard(program, args, seed, backend, latency, raw_pts)
    size = -(-n // shards)
    chunks = [raw_pts[i : i + size] for i in range(0, n, size)]
    per_chunk = sweep_map(
        partial(_eval_shard, program, args, seed, backend, latency),
        chunks,
        workers=shards,
        chunksize=1,
        pool=pool,
    )
    return [pair for chunk in per_chunk for pair in chunk]


@dataclass
class _Group:
    """Pending computations coalescable into one grid evaluation."""

    request_shape: tuple  # (program, args, seed, backend, latency)
    entries: list = field(default_factory=list)  # (CacheKey, raw point)


class SimulationServer:
    """See the module docstring; lifecycle is ``start`` / ``aclose``.

    All public coroutines must run on the loop that called
    :meth:`start`.  Synchronous convenience: ``asyncio.run`` around
    :meth:`run_request` (what ``python -m repro.serve --smoke`` and the
    bench workloads do).
    """

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.cache = ResultCache(self.config.cache_entries)
        self.workers = resolve_workers(self.config.workers)
        if self.config.use_pool and self.workers > 1:
            # Supervised by default: a SIGKILLed pool worker (OOM, chaos)
            # is restarted and its chunk retried instead of wedging the
            # batch; results are bit-identical either way.
            self._pool = (
                SupervisedPool(self.workers)
                if self.config.supervised
                else WorkerPool(self.workers)
            )
        else:
            self._pool = None
        self._inflight: dict[CacheKey, asyncio.Future] = {}
        self._pending: dict[tuple, _Group] = {}
        self._have_pending: asyncio.Event | None = None
        self._batcher: asyncio.Task | None = None
        self._closed = False
        self._jobs: dict[int, Job] = {}
        #: fingerprint -> (program, canonical args): lets the snapshot
        #: writer re-emit full records for every cached key.
        self._families_by_fp: dict[str, tuple] = {}
        self._persist: CachePersistence | None = None
        self.stats = {
            "requests": 0,
            "points": 0,
            "served_cache": 0,
            "served_inflight": 0,
            "computed": 0,
            "batches": 0,
            "largest_batch": 0,
            "sharded_batches": 0,
            "errors": 0,
            "shed": 0,
            "cancelled": 0,
            "deadline_expired": 0,
        }
        if self.config.cache_dir:
            self._persist = CachePersistence(
                self.config.cache_dir,
                snapshot_every=self.config.snapshot_every,
            )
            # Replay in write order so the LRU's recency survives too.
            for program, args, key, pair in self._persist.load():
                self.cache.put(key, pair)
                self._families_by_fp[key.fingerprint] = (program, args)

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> "SimulationServer":
        if self._batcher is None:
            self._have_pending = asyncio.Event()
            self._batcher = asyncio.create_task(
                self._batch_loop(), name="repro-serve-batcher"
            )
        return self

    async def aclose(self, drain: bool = True) -> None:
        """Shut down; ``drain`` picks the in-flight jobs' fate.

        ``drain=True`` (default) refuses new submissions but keeps the
        batcher alive until every already-accepted point has resolved —
        attached jobs complete normally.  ``drain=False`` abandons them:
        every unresolved future fails with :class:`ServerShutdown`
        (clients see an explicit ``server-shutdown`` error frame, not a
        hang or a cancellation).
        """
        self._closed = True
        if drain and self._batcher is not None:
            # The batcher keeps consuming _pending; in-flight futures
            # resolve as their groups evaluate.  New work cannot arrive
            # (submit refuses once _closed), so this converges.
            while self._inflight or self._pending:
                if self._pending:
                    self._have_pending.set()
                futs = [f for f in self._inflight.values() if not f.done()]
                if futs:
                    await asyncio.gather(*futs, return_exceptions=True)
                else:
                    # Points queued but not yet picked up: let the
                    # batcher's coalescing window elapse.
                    await asyncio.sleep(0.001)
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        for fut in self._inflight.values():
            if not fut.done():
                fut.set_exception(
                    ServerShutdown(
                        "server-shutdown: job abandoned by aclose(drain=False)"
                    )
                )
        self._inflight.clear()
        self._pending.clear()
        for job in list(self._jobs.values()):
            if not job.finished:
                job._fail_pending(
                    ServerShutdown("server-shutdown: job abandoned by aclose")
                )
        if self._persist is not None:
            # Graceful close compacts: snapshot the live cache and reset
            # the journal, so the next start replays one clean file.
            self._snapshot()
            self._persist.close()
        if self._pool is not None:
            self._pool.close(drain=drain)

    async def close(self, drain: bool = True) -> None:
        """Alias for :meth:`aclose`."""
        await self.aclose(drain=drain)

    async def __aenter__(self) -> "SimulationServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # -- submission ---------------------------------------------------

    async def submit(self, request: SweepRequest) -> Job:
        """Route every point of ``request`` and return its :class:`Job`.

        Raises :class:`ServerOverloaded` (load-shedding, nothing
        accepted) when admission would push the in-flight point count
        past ``max_pending_points`` — all-or-nothing, so a shed request
        leaves no partial state behind.
        """
        if self._closed:
            raise ServerShutdown("server is closed")
        if self._batcher is None:
            raise RuntimeError(
                "server not started; use 'async with SimulationServer()' "
                "or await server.start()"
            )
        fp = request.fingerprint
        limit = self.config.max_pending_points
        if limit is not None:
            # Side-effect-free probe (peek: no stats, no LRU churn).
            # No await between here and the routing loop below, so the
            # count cannot go stale before the points are attached.
            fresh = set()
            for params in request.points:
                key = CacheKey(
                    fp, point_key(params), request.seed, request.backend,
                    request.latency,
                )
                if (
                    key not in self._inflight
                    and self.cache.peek(key) is None
                ):
                    fresh.add(key)
            if fresh and len(self._inflight) + len(fresh) > limit:
                self.stats["shed"] += 1
                raise ServerOverloaded(
                    len(self._inflight), len(fresh), limit,
                    retry_after=max(self.config.batch_window, 0.01),
                )
        loop = asyncio.get_running_loop()
        job = Job(len(request.points), request, loop)
        self.stats["requests"] += 1
        self.stats["points"] += len(request.points)
        self._families_by_fp[fp] = (request.program, request.args)
        shape = (
            request.program,
            request.args,
            request.seed,
            request.backend,
            request.latency,
        )
        for params in request.points:
            raw = point_key(params)
            key = CacheKey(
                fp, raw, request.seed, request.backend, request.latency
            )
            pair = self.cache.get(key)
            if pair is not None:
                fut = loop.create_future()
                fut.set_result(pair)
                job._attach(fut, "cache")
                self.stats["served_cache"] += 1
                continue
            fut = self._inflight.get(key)
            if fut is not None:
                job._attach(fut, "inflight")
                self.stats["served_inflight"] += 1
                continue
            fut = loop.create_future()
            self._inflight[key] = fut
            group = self._pending.get(shape)
            if group is None:
                group = self._pending[shape] = _Group(shape)
            group.entries.append((key, raw))
            job._attach(fut, "computed")
            self.stats["computed"] += 1
        self._register(job, loop)
        if self._pending:
            self._have_pending.set()
        return job

    def _register(self, job: Job, loop: asyncio.AbstractEventLoop) -> None:
        """Track the job until finished: deadline timer + cancel registry."""
        deadline = job.request.deadline
        if deadline is None:
            deadline = self.config.default_deadline
        handle = (
            loop.call_later(deadline, self._expire_job, job, deadline)
            if deadline is not None
            else None
        )
        self._jobs[job.id] = job

        def _finalize() -> None:
            if handle is not None:
                handle.cancel()
            self._jobs.pop(job.id, None)

        if job.finished:
            _finalize()
        else:
            job._on_finished = _finalize

    def _expire_job(self, job: Job, deadline: float) -> None:
        if job.finished:
            return
        self.stats["deadline_expired"] += 1
        job._expire(deadline)

    def cancel_job(
        self, job_id: int, reason: str = "cancelled by client"
    ) -> bool:
        """Cancel a registered job by id; unknown/finished ids return
        False.  Shared in-flight computation is never cancelled."""
        job = self._jobs.get(job_id)
        if job is None or job.finished:
            return False
        if job.cancel(reason):
            self.stats["cancelled"] += 1
            return True
        return False

    async def run_request(self, request: SweepRequest) -> list:
        """Submit and wait: the one-call client path."""
        job = await self.submit(request)
        return await job.wait()

    def stats_snapshot(self) -> dict:
        snap = dict(self.stats)
        snap["cache"] = self.cache.stats.as_dict()
        snap["workers"] = self.workers
        snap["pool_started"] = (
            self._pool.started if self._pool is not None else False
        )
        snap["inflight"] = len(self._inflight)
        limit = self.config.max_pending_points
        if self._closed:
            status = "closed"
        elif limit is not None and len(self._inflight) >= limit:
            status = "overloaded"
        else:
            status = "ok"
        health = {
            "status": status,
            # readiness: started, not closed — the load balancer's bit.
            "ready": self._batcher is not None and not self._closed,
            "inflight_points": len(self._inflight),
            "pending_groups": len(self._pending),
            "active_jobs": len(self._jobs),
            "max_pending_points": limit,
            "default_deadline": self.config.default_deadline,
        }
        pool = self._pool
        health["pool"] = {
            "kind": type(pool).__name__ if pool is not None else None,
            "workers": self.workers,
            "started": pool.started if pool is not None else False,
            "restarts": getattr(pool, "restarts", 0),
            "worker_deaths": getattr(pool, "deaths", 0),
        }
        snap["health"] = health
        if self._persist is not None:
            snap["persistence"] = self._persist.stats_snapshot()
        return snap

    # -- the batcher --------------------------------------------------

    async def _batch_loop(self) -> None:
        window = self.config.batch_window
        while True:
            await self._have_pending.wait()
            self._have_pending.clear()
            if window > 0:
                # The coalescing horizon: let concurrent submitters
                # land in this batch instead of the next one.
                await asyncio.sleep(window)
            pending = self._pending
            self._pending = {}
            for group in pending.values():
                await self._run_group(group)

    async def _run_group(self, group: _Group) -> None:
        program, args, seed, backend, latency = group.request_shape
        keys = [key for key, _raw in group.entries]
        raw_pts = [raw for _key, raw in group.entries]
        self.stats["batches"] += 1
        self.stats["largest_batch"] = max(
            self.stats["largest_batch"], len(raw_pts)
        )
        sharded = (
            self._pool is not None
            and self.config.shard_min_points
            and len(raw_pts) // self.config.shard_min_points > 1
        )
        if sharded:
            self.stats["sharded_batches"] += 1
        try:
            pairs = await asyncio.to_thread(
                _eval_batch,
                program,
                args,
                seed,
                backend,
                latency,
                raw_pts,
                workers=self.workers,
                shard_min_points=self.config.shard_min_points,
                pool=self._pool,
            )
        except Exception as exc:  # noqa: BLE001 - failing the jobs, not us
            self.stats["errors"] += 1
            for key in keys:
                fut = self._inflight.pop(key, None)
                if fut is not None and not fut.done():
                    fut.set_exception(exc)
            return
        for key, pair in zip(keys, pairs):
            self.cache.put(key, pair)
            if self._persist is not None:
                # Write-ahead: journaled before any client observes the
                # value, so a crash cannot have served un-replayable bits.
                self._persist.record(program, args, key, pair)
            fut = self._inflight.pop(key, None)
            if fut is not None and not fut.done():
                fut.set_result(pair)
        if self._persist is not None and self._persist.snapshot_due:
            self._snapshot()

    def _snapshot(self) -> None:
        entries = []
        for key, pair in self.cache.items():
            ident = self._families_by_fp.get(key.fingerprint)
            if ident is not None:
                entries.append((ident[0], ident[1], key, pair))
        self._persist.snapshot(entries)


def serve_sweep(
    requests: "SweepRequest | Sequence[SweepRequest]",
    *,
    config: ServeConfig | None = None,
) -> list:
    """Synchronous convenience: serve request(s) on a throwaway server.

    Returns one result list per request (or a bare list for a single
    request).  Mostly for tests, docs, and quick scripts — a real
    deployment keeps one :class:`SimulationServer` alive.
    """
    single = isinstance(requests, SweepRequest)
    reqs = [requests] if single else list(requests)

    async def _run():
        async with SimulationServer(config) as server:
            jobs = [await server.submit(r) for r in reqs]
            return [await j.wait() for j in jobs]

    out = asyncio.run(_run())
    return out[0] if single else out
