"""Result cache: exact-key LRU over per-point simulation results.

One cache entry is one evaluated grid point — the ``(makespan,
total_stall_time)`` pair :func:`repro.sim.sweep.grid_map` reports for
it.  The key (:class:`CacheKey`) is the full determinism domain of that
value, per the serving contract:

* ``fingerprint`` — the program family identity
  (:func:`repro.serve.registry.fingerprint`: name + canonical args +
  builder source hash), so a code change invalidates rather than
  corrupts;
* ``point`` — the canonicalized parameter point ``(L, o, g, P, G)``;
* ``seed`` — the request seed the family derives randomness from;
* ``latency`` — the canonical shared-latency spec tuple
  (:func:`repro.serve.server.canonical_latency`), so a seeded-jitter
  sweep and the fixed-``L`` sweep of the same family never collide;
* ``backend`` — the *resolved* backend (``machine`` / ``compiled``).
  The two backends are bit-identical by the compiled evaluator's
  contract, so sharing entries across them would be sound — but keying
  them separately keeps a (hypothetical) divergence a visible test
  failure instead of a cache-poisoning bug, and costs only capacity.

Caching is therefore *transparent*: a hit returns the bit-identical
pair a fresh serial run would produce, which ``tests/test_serve.py``
pins cold-vs-warm.

The store is a plain LRU (``OrderedDict`` move-to-end) with hit/miss/
eviction counters surfaced through the server's stats endpoint and the
``serve_cache_hit`` bench workload.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheKey", "CacheStats", "ResultCache", "point_key"]


def point_key(params) -> tuple:
    """Canonicalize a ``LogPParams`` point into a hashable key tuple.

    Floats are kept as-is (the simulator's arithmetic is float-exact,
    so ``L=6`` and ``L=6.0`` hash equal already); the LogGP long-message
    gap ``G`` participates when present so LogP and LogGP points with
    equal ``(L, o, g, P)`` never collide.
    """
    return (
        float(params.L),
        float(params.o),
        float(params.g),
        int(params.P),
        getattr(params, "G", None),
    )


@dataclass(frozen=True, slots=True)
class CacheKey:
    """The determinism domain of one served per-point result."""

    fingerprint: str
    point: tuple
    seed: int | None
    backend: str
    #: Canonical shared-latency spec tuple
    #: (:func:`repro.serve.server.canonical_latency`); None = fixed-L.
    latency: tuple | None = None


@dataclass(slots=True)
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "hit_rate": round(self.hit_rate, 4),
        }


class ResultCache:
    """Bounded LRU from :class:`CacheKey` to ``(makespan, stall)`` pairs."""

    def __init__(self, max_entries: int = 65_536):
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._store: OrderedDict[CacheKey, tuple[float, float]] = (
            OrderedDict()
        )
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: CacheKey) -> tuple[float, float] | None:
        pair = self._store.get(key)
        if pair is None:
            self.stats.misses += 1
            return None
        self._store.move_to_end(key)
        self.stats.hits += 1
        return pair

    def put(self, key: CacheKey, pair: tuple[float, float]) -> None:
        store = self._store
        if key in store:
            store.move_to_end(key)
            store[key] = pair
            return
        store[key] = pair
        if len(store) > self.max_entries:
            store.popitem(last=False)
            self.stats.evictions += 1
        self.stats.entries = len(store)

    def clear(self) -> None:
        self._store.clear()
        self.stats.entries = 0
