"""Result cache: exact-key LRU over per-point simulation results.

One cache entry is one evaluated grid point — the ``(makespan,
total_stall_time)`` pair :func:`repro.sim.sweep.grid_map` reports for
it.  The key (:class:`CacheKey`) is the full determinism domain of that
value, per the serving contract:

* ``fingerprint`` — the program family identity
  (:func:`repro.serve.registry.fingerprint`: name + canonical args +
  builder source hash), so a code change invalidates rather than
  corrupts;
* ``point`` — the canonicalized parameter point ``(L, o, g, P, G)``;
* ``seed`` — the request seed the family derives randomness from;
* ``latency`` — the canonical shared-latency spec tuple
  (:func:`repro.serve.server.canonical_latency`), so a seeded-jitter
  sweep and the fixed-``L`` sweep of the same family never collide;
* ``backend`` — the *resolved* backend (``machine`` / ``compiled``).
  The two backends are bit-identical by the compiled evaluator's
  contract, so sharing entries across them would be sound — but keying
  them separately keeps a (hypothetical) divergence a visible test
  failure instead of a cache-poisoning bug, and costs only capacity.

Caching is therefore *transparent*: a hit returns the bit-identical
pair a fresh serial run would produce, which ``tests/test_serve.py``
pins cold-vs-warm.

The store is a plain LRU (``OrderedDict`` move-to-end) with hit/miss/
eviction counters surfaced through the server's stats endpoint and the
``serve_cache_hit`` bench workload.

Persistence (:class:`CachePersistence`) makes the cache survive server
restarts: every ``put`` is appended to a write-ahead JSONL journal
(``journal.jsonl`` under ``cache_dir``), periodically compacted into a
snapshot (``snapshot.jsonl``, written atomically via a temp file +
``os.replace``, after which the journal restarts empty).  On startup
the snapshot is replayed first, then the journal.  Replay is defensive
in exactly two ways, both loud:

* **Fingerprint validation.**  Each record stores the family name and
  canonical args alongside the fingerprint it was computed under; at
  replay the fingerprint is *recomputed* against the current code and a
  mismatch (the family's builder changed, or the family no longer
  exists) drops the entry with a ``RuntimeWarning`` and a counter —
  stale code must never serve stale bits as a "hit".
* **Torn-tail tolerance.**  A server SIGKILLed mid-append leaves a
  truncated last line; replay keeps every record up to the tear, counts
  it, and truncates the file back to the last good byte so future
  appends cannot concatenate into the torn fragment.  Anything after a
  tear is unreadable by construction (appends are sequential), so
  nothing silently skips.

JSON round-trips Python floats exactly (shortest-repr), so a replayed
``(makespan, stall)`` pair is bit-identical to the pair that was
journaled — restart cannot corrupt served values, it can only forget
the un-journaled tail of the very last write.
"""

from __future__ import annotations

import json
import os
import warnings
from collections import OrderedDict
from dataclasses import dataclass

__all__ = [
    "CacheKey",
    "CachePersistence",
    "CacheStats",
    "ResultCache",
    "point_key",
]


def point_key(params) -> tuple:
    """Canonicalize a ``LogPParams`` point into a hashable key tuple.

    Floats are kept as-is (the simulator's arithmetic is float-exact,
    so ``L=6`` and ``L=6.0`` hash equal already); the LogGP long-message
    gap ``G`` participates when present so LogP and LogGP points with
    equal ``(L, o, g, P)`` never collide.
    """
    return (
        float(params.L),
        float(params.o),
        float(params.g),
        int(params.P),
        getattr(params, "G", None),
    )


@dataclass(frozen=True, slots=True)
class CacheKey:
    """The determinism domain of one served per-point result."""

    fingerprint: str
    point: tuple
    seed: int | None
    backend: str
    #: Canonical shared-latency spec tuple
    #: (:func:`repro.serve.server.canonical_latency`); None = fixed-L.
    latency: tuple | None = None


@dataclass(slots=True)
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "hit_rate": round(self.hit_rate, 4),
        }


class ResultCache:
    """Bounded LRU from :class:`CacheKey` to ``(makespan, stall)`` pairs."""

    def __init__(self, max_entries: int = 65_536):
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._store: OrderedDict[CacheKey, tuple[float, float]] = (
            OrderedDict()
        )
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: CacheKey) -> tuple[float, float] | None:
        pair = self._store.get(key)
        if pair is None:
            self.stats.misses += 1
            return None
        self._store.move_to_end(key)
        self.stats.hits += 1
        return pair

    def peek(self, key: CacheKey) -> tuple[float, float] | None:
        """A side-effect-free lookup: no stats, no LRU reorder.

        Admission control asks "would this point be a miss?" *before*
        deciding to accept a request; that probe must not inflate the
        hit counters or refresh recency for a request that may be shed.
        """
        return self._store.get(key)

    def items(self):
        """Snapshot iteration in LRU order (coldest first).

        For :class:`CachePersistence` snapshots; the caller must not
        mutate the cache while iterating.
        """
        return iter(self._store.items())

    def put(self, key: CacheKey, pair: tuple[float, float]) -> None:
        store = self._store
        if key in store:
            store.move_to_end(key)
            store[key] = pair
            return
        store[key] = pair
        if len(store) > self.max_entries:
            store.popitem(last=False)
            self.stats.evictions += 1
        self.stats.entries = len(store)

    def clear(self) -> None:
        self._store.clear()
        self.stats.entries = 0


# ----------------------------------------------------------------------
# Persistence: write-ahead journal + snapshot (see module docstring)
# ----------------------------------------------------------------------


def _retuple(obj):
    """JSON turns tuples into lists; keys need them back, recursively."""
    if isinstance(obj, list):
        return tuple(_retuple(x) for x in obj)
    return obj


class CachePersistence:
    """Journal/snapshot store under ``cache_dir``; owns no cache.

    The server calls :meth:`record` after every cache ``put`` and
    :meth:`load` once at startup (replaying entries *into* its cache);
    :meth:`snapshot` compacts on the server's cadence
    (``snapshot_every`` records, plus one on graceful close).  Counters
    in :attr:`stats` surface through the ``stats`` endpoint's
    ``persistence`` block so an operator can see replay results without
    reading logs.
    """

    JOURNAL = "journal.jsonl"
    SNAPSHOT = "snapshot.jsonl"

    def __init__(self, cache_dir: str, *, snapshot_every: int = 256):
        if snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self.cache_dir = cache_dir
        self.snapshot_every = snapshot_every
        os.makedirs(cache_dir, exist_ok=True)
        self.journal_path = os.path.join(cache_dir, self.JOURNAL)
        self.snapshot_path = os.path.join(cache_dir, self.SNAPSHOT)
        self._journal_fh = None
        self._since_snapshot = 0
        self.stats = {
            "loaded": 0,
            "dropped_stale": 0,
            "torn_tails": 0,
            "journal_records": 0,
            "snapshots": 0,
        }

    # -- encoding ------------------------------------------------------

    @staticmethod
    def _encode(program: str, args: tuple, key: CacheKey, pair) -> str:
        return json.dumps(
            {
                "p": program,
                "a": [list(kv) for kv in args],
                "fp": key.fingerprint,
                "k": [
                    list(key.point),
                    key.seed,
                    key.backend,
                    None if key.latency is None else list(
                        x if not isinstance(x, tuple) else list(x)
                        for x in key.latency
                    ),
                ],
                "v": list(pair),
            },
            separators=(",", ":"),
        )

    @staticmethod
    def _decode(obj: dict):
        program = obj["p"]
        args = tuple((str(k), v) for k, v in obj["a"])
        raw_pt, seed, backend, latency = obj["k"]
        L, o, g, P, G = raw_pt
        point = (
            float(L), float(o), float(g), int(P),
            None if G is None else float(G),
        )
        key = CacheKey(
            fingerprint=obj["fp"],
            point=point,
            seed=seed,
            backend=backend,
            latency=None if latency is None else _retuple(latency),
        )
        pair = (float(obj["v"][0]), float(obj["v"][1]))
        return program, args, key, pair

    # -- replay --------------------------------------------------------

    def load(self) -> list:
        """Replay snapshot then journal; see the module docstring.

        Returns validated ``(program, args, key, pair)`` tuples in
        write order (so an LRU refilled in order keeps recency), with
        stale-fingerprint entries dropped loudly and torn tails
        truncated in place.
        """
        from .registry import fingerprint

        entries = []
        current_fp: dict[tuple, str | None] = {}
        for path in (self.snapshot_path, self.journal_path):
            for obj in self._read_records(path):
                try:
                    program, args, key, pair = self._decode(obj)
                except (KeyError, TypeError, ValueError, IndexError):
                    self.stats["dropped_stale"] += 1
                    continue
                ident = (program, args)
                if ident not in current_fp:
                    try:
                        current_fp[ident] = fingerprint(program, dict(args))
                    except (KeyError, TypeError, ValueError):
                        current_fp[ident] = None  # family gone
                if current_fp[ident] != key.fingerprint:
                    self.stats["dropped_stale"] += 1
                    continue
                entries.append((program, args, key, pair))
                self.stats["loaded"] += 1
        if self.stats["dropped_stale"]:
            warnings.warn(
                f"cache replay dropped {self.stats['dropped_stale']} "
                f"stale entr(ies) under {self.cache_dir}: the recorded "
                "fingerprint no longer matches the current code (family "
                "changed or removed); those points will recompute",
                RuntimeWarning,
                stacklevel=2,
            )
        return entries

    def _read_records(self, path: str):
        """Yield decoded JSON records; truncate the file at a torn line.

        Appends are sequential, so the first undecodable line means
        everything after it is the debris of an interrupted write —
        truncating back to the last good byte keeps future appends from
        concatenating into the fragment.
        """
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return
        good_end = 0
        for line in data.splitlines(keepends=True):
            stripped = line.strip()
            if stripped:
                try:
                    obj = json.loads(stripped)
                except json.JSONDecodeError:
                    break
                if not line.endswith(b"\n"):
                    # Decodable but unterminated: the flush raced the
                    # kill mid-line; a future append would corrupt it.
                    break
                yield obj
            good_end += len(line)
        if good_end < len(data):
            self.stats["torn_tails"] += 1
            warnings.warn(
                f"cache journal {path} had a torn tail "
                f"({len(data) - good_end} byte(s) after the last complete "
                "record); truncated back to the last good record",
                RuntimeWarning,
                stacklevel=3,
            )
            with open(path, "rb+") as fh:
                fh.truncate(good_end)

    # -- writing -------------------------------------------------------

    def record(self, program: str, args: tuple, key: CacheKey, pair) -> None:
        """Append one write-ahead record and flush it.

        A flush is durability enough for the fault model here (process
        SIGKILL): the bytes live in the OS page cache, which survives
        the process.  Machine-level power loss is out of scope.
        """
        if self._journal_fh is None:
            self._journal_fh = open(
                self.journal_path, "a", encoding="utf-8"
            )
        self._journal_fh.write(self._encode(program, args, key, pair) + "\n")
        self._journal_fh.flush()
        self.stats["journal_records"] += 1
        self._since_snapshot += 1

    @property
    def snapshot_due(self) -> bool:
        return self._since_snapshot >= self.snapshot_every

    def snapshot(self, entries) -> None:
        """Compact: atomically rewrite the snapshot, restart the journal.

        ``entries`` iterates ``(program, args, key, pair)`` — the
        cache's current contents (evicted entries drop out of
        persistence here, by design: persistence mirrors the cache, it
        is not an archive).  The snapshot lands via temp file +
        ``os.replace`` so a kill mid-compaction leaves the old snapshot
        intact; only after the replace is the journal reset.
        """
        tmp = self.snapshot_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            for program, args, key, pair in entries:
                fh.write(self._encode(program, args, key, pair) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.snapshot_path)
        if self._journal_fh is not None:
            self._journal_fh.close()
        self._journal_fh = open(self.journal_path, "w", encoding="utf-8")
        self._journal_fh.flush()
        self.stats["snapshots"] += 1
        self._since_snapshot = 0

    def close(self) -> None:
        if self._journal_fh is not None:
            self._journal_fh.close()
            self._journal_fh = None

    def stats_snapshot(self) -> dict:
        snap = dict(self.stats)
        snap["cache_dir"] = self.cache_dir
        snap["since_snapshot"] = self._since_snapshot
        return snap
