"""Self-checking serve probe: parity, throughput, and hit rate in one run.

``python -m repro.serve --smoke`` (the CI serve job) executes this
end-to-end check against a real TCP server on an ephemeral port:

1. **Parity.**  A mixed sweep — an overhead sweep at two ``P`` (the
   compiled fast path) plus a capacity-stall flood (machine-heavy
   semantics) — is submitted over the wire three ways: cold cache via
   ``backend="compiled"``, the identical request again (warm cache),
   and ``backend="machine"``; two half-sweeps are also submitted
   concurrently so the batcher coalesces them, and a seeded
   jittered-latency request (two coalesced halves, compiled backend)
   must match the machine backend's ground truth bit for bit.  Every
   served pair must be *bit-identical* to ``grid_map`` computed
   directly in this process, and the warm pass must be served entirely
   from cache.
2. **Throughput.**  A burst of small submissions over one connection;
   sustained requests/sec is recorded (informational here — the gated
   numbers live in ``repro.bench``'s ``serve_throughput`` workload).
3. **Artifact.**  A JSON report (parity verdicts, requests/sec, cache
   hit rate, server counters) written for CI to upload.

Any parity failure returns nonzero — this probe is a correctness gate
first and a telemetry source second.
"""

from __future__ import annotations

import asyncio
import json
import time

from ..core import LogPParams
from ..sim.sweep import grid_map
from .protocol import ServeClient, start_tcp_server
from .registry import build
from .server import (
    ServeConfig,
    SimulationServer,
    build_latency,
    canonical_latency,
)

__all__ = ["run_smoke"]


def _mixed_points(n_o: int) -> list[dict]:
    """An o-sweep at P in {4, 8}: wire-format (dict) grid points."""
    return [
        {"L": 6.0, "o": 0.25 + i * 7.75 / (n_o - 1), "g": 4.0, "P": P}
        for P in (4, 8)
        for i in range(n_o)
    ]


def _expected(
    program: str,
    args: dict,
    points: list[dict],
    backend: str,
    latency: dict | None = None,
):
    """The ground truth: grid_map run directly, no server involved."""
    pts = [LogPParams(L=d["L"], o=d["o"], g=d["g"], P=d["P"]) for d in points]
    return grid_map(
        build(program, dict(args), None),
        pts,
        backend=backend,
        latency=build_latency(canonical_latency(latency)),
    )


async def _smoke(n_o: int, burst: int) -> dict:
    server = SimulationServer(ServeConfig(batch_window=0.005))
    tcp = await start_tcp_server(server)
    host, port = tcp.sockets[0].getsockname()[:2]
    report: dict = {"checks": {}, "host": host, "port": port}
    checks = report["checks"]
    ok = True

    def check(name: str, passed: bool, detail: str = "") -> None:
        nonlocal ok
        checks[name] = {"ok": bool(passed), "detail": detail}
        ok = ok and passed

    try:
        client = await ServeClient.connect(host, port)
        assert await client.ping()

        sweep_points = _mixed_points(n_o)
        flood_points = [
            {"L": 8.0, "o": 1.0, "g": 4.0, "P": 8},
            {"L": 16.0, "o": 1.0, "g": 2.0, "P": 8},
        ]
        want_sweep = _expected("bcast_tree", {"k": 8}, sweep_points, "compiled")
        want_flood = _expected("flood", {"k": 6}, flood_points, "machine")

        # 1a. Cold cache, compiled backend, with progress streaming.
        cold = await client.submit(
            "bcast_tree", sweep_points, args={"k": 8},
            backend="compiled", stream=True,
        )
        got = [tuple(p) for p in cold["results"]]
        check(
            "cold_compiled_parity",
            got == want_sweep,
            f"{len(got)} points, sources={cold['sources']}",
        )
        check(
            "progress_streamed",
            bool(cold["progress"])
            and cold["progress"][-1][0] == len(sweep_points),
            f"{len(cold['progress'])} progress frames",
        )

        # 1b. Warm cache: identical request served without simulation.
        warm = await client.submit(
            "bcast_tree", sweep_points, args={"k": 8}, backend="compiled"
        )
        check(
            "warm_cache_parity",
            [tuple(p) for p in warm["results"]] == want_sweep,
        )
        check(
            "warm_served_from_cache",
            warm["sources"]["cache"] == len(sweep_points),
            f"sources={warm['sources']}",
        )

        # 1c. Machine backend on the flood (stall-regime semantics).
        flood = await client.submit(
            "flood", flood_points, args={"k": 6}, backend="machine"
        )
        check(
            "machine_backend_parity",
            [tuple(p) for p in flood["results"]] == want_flood,
        )

        # 1d. Coalescing: two concurrent half-sweeps on separate
        # connections land in one batch and still match point for point.
        half = len(sweep_points) // 2
        parts = [sweep_points[:half], sweep_points[half:]]
        pre_batches = (await client.stats())["batches"]
        c2 = await ServeClient.connect(host, port)
        c3 = await ServeClient.connect(host, port)
        try:
            r2, r3 = await asyncio.gather(
                c2.submit(
                    "bcast_tree", parts[0], args={"k": 9}, backend="auto"
                ),
                c3.submit(
                    "bcast_tree", parts[1], args={"k": 9}, backend="auto"
                ),
            )
        finally:
            await c2.aclose()
            await c3.aclose()
        want9 = _expected("bcast_tree", {"k": 9}, sweep_points, "compiled")
        got9 = [tuple(p) for p in r2["results"] + r3["results"]]
        post_batches = (await client.stats())["batches"]
        check("coalesced_parity", got9 == want9)
        check(
            "coalesced_into_few_batches",
            post_batches - pre_batches <= 2,
            f"{post_batches - pre_batches} batches for 2 concurrent jobs",
        )

        # 1e. Seeded-latency sweep: two concurrent halves of a jittered
        # request coalesce into one batch, the compiled backend serves
        # it, and every pair is bit-identical to the machine backend
        # under the same spec — the seed-axis lowering's wire witness.
        jitter = {"kind": "jittered", "L": 6.0, "scale_frac": 0.1, "seed": 11}
        c4 = await ServeClient.connect(host, port)
        c5 = await ServeClient.connect(host, port)
        try:
            r4, r5 = await asyncio.gather(
                c4.submit(
                    "bcast_tree", parts[0], args={"k": 7},
                    backend="compiled", latency=jitter,
                ),
                c5.submit(
                    "bcast_tree", parts[1], args={"k": 7},
                    backend="compiled", latency=jitter,
                ),
            )
        finally:
            await c4.aclose()
            await c5.aclose()
        want_jit = _expected(
            "bcast_tree", {"k": 7}, sweep_points, "machine", latency=jitter
        )
        got_jit = [tuple(p) for p in r4["results"] + r5["results"]]
        check(
            "seeded_latency_compiled_parity",
            got_jit == want_jit,
            f"{len(got_jit)} jittered points vs machine ground truth",
        )

        # 2. Throughput burst: distinct tiny requests, then re-request.
        burst_pts = [
            [{"L": 6.0, "o": 0.5 + 0.01 * i, "g": 4.0, "P": 4}]
            for i in range(burst)
        ]
        t0 = time.perf_counter()
        for pts in burst_pts:
            await client.submit("stream", pts, args={"k": 4})
        for pts in burst_pts:  # warm pass: pure cache service
            await client.submit("stream", pts, args={"k": 4})
        elapsed = time.perf_counter() - t0
        report["burst_requests"] = 2 * burst
        report["burst_seconds"] = round(elapsed, 4)
        report["requests_per_s"] = round(2 * burst / elapsed, 1)

        stats = await client.stats()
        report["server_stats"] = stats
        check(
            "cache_hits_observed",
            stats["cache"]["hits"] >= len(sweep_points) + burst,
            f"hit_rate={stats['cache']['hit_rate']}",
        )
        health = stats.get("health", {})
        check(
            "health_ready",
            health.get("status") == "ok"
            and health.get("ready") is True
            and health.get("inflight_points") == 0,
            f"status={health.get('status')} "
            f"pool={health.get('pool', {}).get('kind')}",
        )
        await client.aclose()
    finally:
        tcp.close()
        await tcp.wait_closed()
        await server.aclose()
    report["ok"] = ok
    return report


def run_smoke(out: str | None = None, *, n_o: int = 24, burst: int = 50) -> int:
    """Run the probe; write the artifact to ``out``; 0 iff all checks pass."""
    report = asyncio.run(_smoke(n_o, burst))
    for name, res in report["checks"].items():
        flag = "ok " if res["ok"] else "FAIL"
        detail = f"  ({res['detail']})" if res["detail"] else ""
        print(f"  {flag} {name}{detail}")
    print(
        f"  {report['burst_requests']} requests in "
        f"{report['burst_seconds']}s = {report['requests_per_s']} req/s; "
        f"cache hit rate "
        f"{report['server_stats']['cache']['hit_rate']:.2%}"
    )
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  wrote {out}")
    if not report["ok"]:
        print("serve smoke: FAILED")
        return 1
    print("serve smoke: all checks passed")
    return 0
